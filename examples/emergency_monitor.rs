//! Runtime emergency monitoring: deploy the fitted model as an online
//! detector and stream unseen voltage maps through it, comparing against a
//! direct-threshold Eagle-Eye deployment with the same sensor budget.
//! Then a sensor dies mid-trace (stuck at 0.80 V) and the naive and
//! fault-aware monitors part ways.
//!
//! Run with: `cargo run --release --example emergency_monitor`

use voltsense::core::{detection, EmergencyMonitor, FaultPolicy, Methodology, MethodologyConfig};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::grouplasso::{solve_penalized_fista, GlOptions, GlProblem};
use voltsense::faults::{FaultEvent, FaultInjector, FaultKind, FaultSchedule};
use voltsense::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Always-on observability (DESIGN.md §7): a flight recorder runs for
    // the whole process and freezes into incident files when a monitor
    // trips. VOLTSENSE_TELEMETRY additionally exports a full snapshot +
    // Chrome trace on drop; VOLTSENSE_TELEMETRY_ADDR serves live
    // /metrics and /snapshot scrapes (see README).
    let telemetry = voltsense::telemetry::init_always_on("emergency_monitor");
    let scenario = Scenario::small()?;

    // Train on four benchmarks; monitor a *different* one (x264, the most
    // gating-heavy of the suite).
    let train = scenario.collect(&[0, 3, 6, 9])?;
    let monitor = scenario.collect(&[12])?;
    let config = MethodologyConfig {
        lambda: 10.0,
        ..MethodologyConfig::default()
    };
    let fitted = Methodology::fit(&train.x, &train.f, &config)?;
    let q = fitted.sensors().len();

    // Solver introspection: cross-check the BCD-based selection with the
    // independent FISTA solver on the same group-lasso problem. With
    // telemetry enabled, both solvers record per-iteration convergence
    // events (objective, KKT residual, active groups) into the snapshot.
    let problem = GlProblem::from_data(&train.x, &train.f)?;
    let fista =
        solve_penalized_fista(&problem, 0.5 * problem.mu_max(), &GlOptions::default(), None)?;
    println!(
        "fista cross-check: {} iterations, kkt residual {:.2e}, {} active groups",
        fista.sweeps,
        fista.kkt_residual,
        fista.selected(1e-6).len()
    );
    let eagle = EagleEyePlacement::place(&train.x, &train.f, q, &EagleEyeConfig::default())?;
    println!(
        "deployed {} sensors; monitoring benchmark {} ({} samples)",
        q,
        scenario.suite()[12],
        monitor.num_samples()
    );

    // Stream samples one at a time, as a runtime monitor would.
    let threshold = fitted.emergency_threshold();
    let mut events = Vec::new();
    let mut proposed_alarms = Vec::new();
    let mut eagle_alarms = Vec::new();
    for s in 0..monitor.num_samples() {
        let candidates = monitor.x.col(s);
        let truth = (0..monitor.f.rows()).any(|k| monitor.f[(k, s)] < threshold);
        let alarm = fitted.model().detect(&candidates, threshold)?;
        let eagle_alarm = eagle.detect(&candidates);
        if truth || alarm || eagle_alarm {
            events.push((s, truth, alarm, eagle_alarm));
        }
        proposed_alarms.push(alarm);
        eagle_alarms.push(eagle_alarm);
    }

    println!("\nevent log (sample, real emergency, proposed alarm, eagle-eye alarm):");
    for (s, truth, alarm, eagle_alarm) in events.iter().take(15) {
        println!(
            "  #{s:<5} real={} proposed={} eagle={}",
            mark(*truth),
            mark(*alarm),
            mark(*eagle_alarm)
        );
    }
    if events.len() > 15 {
        println!("  … and {} more events", events.len() - 15);
    }

    let truth: Vec<bool> = (0..monitor.num_samples())
        .map(|s| (0..monitor.f.rows()).any(|k| monitor.f[(k, s)] < threshold))
        .collect();
    let ours = detection::evaluate(&truth, &proposed_alarms)?;
    let theirs = detection::evaluate(&truth, &eagle_alarms)?;
    println!("\n            {:>10} {:>10} {:>10}", "ME", "WAE", "TE");
    println!(
        "proposed    {:>10.4} {:>10.4} {:>10.4}",
        ours.miss_rate, ours.wrong_alarm_rate, ours.total_error_rate
    );
    println!(
        "eagle-eye   {:>10.4} {:>10.4} {:>10.4}",
        theirs.miss_rate, theirs.wrong_alarm_rate, theirs.total_error_rate
    );

    // --- A sensor dies mid-trace -------------------------------------
    // A quarter of the way in, the first placed sensor sticks at 0.80 V
    // (below the emergency threshold, so a threshold-style monitor pins
    // its alarm on). Stream the same corrupted readings through a naive
    // and a fault-aware monitor.
    let onset = monitor.num_samples() as u64 / 4;
    let stuck = FaultKind::StuckAt { value: 0.80 };
    let schedule = FaultSchedule::new(vec![FaultEvent::new(0, onset, stuck)])?;
    let mut injector = FaultInjector::new(schedule, q, 7)?;
    println!(
        "\nsensor {} sticks at 0.80 V from sample {onset}:",
        fitted.sensors()[0]
    );

    let ft_model = fitted.fault_tolerant_model(&train.x, &train.f)?;
    let mut aware =
        EmergencyMonitor::fault_tolerant(ft_model, threshold, 1, 0.0, FaultPolicy::default())?;
    let mut naive = EmergencyMonitor::new(fitted.model().clone(), threshold, 1, 0.0)?;
    let mut aware_alarms = Vec::new();
    let mut naive_alarms = Vec::new();
    for s in 0..monitor.num_samples() {
        let readings: Vec<f64> = fitted.sensors().iter().map(|&m| monitor.x[(m, s)]).collect();
        let corrupted = injector.corrupt(&readings)?;
        aware_alarms.push(aware.observe(&corrupted).map(|d| d.alarm).unwrap_or(false));
        naive_alarms.push(naive.observe(&corrupted).map(|d| d.alarm).unwrap_or(false));
    }
    let aware_out = detection::evaluate(&truth, &aware_alarms)?;
    let naive_out = detection::evaluate(&truth, &naive_alarms)?;
    println!("fault-aware {:>10.4} {:>10.4} {:>10.4}   (failed sensor positions: {:?})",
        aware_out.miss_rate,
        aware_out.wrong_alarm_rate,
        aware_out.total_error_rate,
        aware.failed_sensors()
    );
    println!(
        "naive       {:>10.4} {:>10.4} {:>10.4}",
        naive_out.miss_rate, naive_out.wrong_alarm_rate, naive_out.total_error_rate
    );
    println!(
        "\nthe fault-aware monitor flagged the stuck sensor and hot-swapped to \
         the leave-it-out model; the naive monitor trusted it."
    );

    // Hold the endpoint open for external scrapers when CI (or a human)
    // asked for it; a no-op unless VOLTSENSE_TELEMETRY_LINGER is set.
    telemetry.linger_from_env();
    Ok(())
}

fn mark(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        " — "
    }
}
