//! Full-chip voltage-map viewer: renders the true simulated voltage map of
//! the worst sampling instant next to the map *reconstructed from the
//! placed sensors only* — the paper's "full-chip voltage map generation"
//! in ASCII.
//!
//! Run with: `cargo run --release --example voltage_map_viewer`

use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::floorplan::NodeSite;
use voltsense::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small()?;
    let data = scenario.collect(&[6])?; // fluidanimate: strong resonance
    let (train, test) = data.split(3);
    let fitted = Methodology::fit(
        &train.x,
        &train.f,
        &MethodologyConfig {
            lambda: 12.0,
            ..MethodologyConfig::default()
        },
    )?;

    // Find the worst test sample (deepest true droop).
    let worst_sample = (0..test.num_samples())
        .min_by(|&a, &b| {
            let ma = (0..test.f.rows()).map(|k| test.f[(k, a)]).fold(f64::INFINITY, f64::min);
            let mb = (0..test.f.rows()).map(|k| test.f[(k, b)]).fold(f64::INFINITY, f64::min);
            ma.partial_cmp(&mb).expect("finite voltages")
        })
        .expect("test set is non-empty");

    let predicted = fitted.model().predict_matrix(&test.x)?;
    println!(
        "worst test sample: #{worst_sample}; {} sensors drive the reconstruction",
        fitted.sensors().len()
    );

    // Per-block maps: true vs predicted critical voltage, laid out by the
    // block's position on the die.
    let lattice = scenario.chip().lattice();
    let sensors: std::collections::HashSet<usize> = fitted
        .sensors()
        .iter()
        .map(|&s| lattice.candidate_sites()[s].0)
        .collect();

    println!("\nlegend: each cell is one lattice node; FA nodes show the voltage band");
    println!("  '@' placed sensor   '#' < 0.85 V   '+' < 0.88 V   '-' < 0.92 V   '.' >= 0.92 V\n");

    // True map from the raw lattice voltages is not retained in the
    // dataset, so visualize block-level truth and prediction.
    let mut truth_by_node = vec![None; lattice.len()];
    let mut pred_by_node = vec![None; lattice.len()];
    for (k, node) in data.critical_nodes.iter().enumerate() {
        truth_by_node[node.0] = Some(test.f[(k, worst_sample)]);
        pred_by_node[node.0] = Some(predicted[(k, worst_sample)]);
    }

    for (title, values) in [("TRUE voltage map", &truth_by_node), ("RECONSTRUCTED from sensors", &pred_by_node)] {
        println!("{title}:");
        for iy in (0..lattice.ny()).rev() {
            let mut line = String::with_capacity(lattice.nx());
            for ix in 0..lattice.nx() {
                let id = lattice.node_at(ix, iy).expect("in range");
                let ch = if sensors.contains(&id.0) {
                    '@'
                } else {
                    match values[id.0] {
                        Some(v) if v < 0.85 => '#',
                        Some(v) if v < 0.88 => '+',
                        Some(v) if v < 0.92 => '-',
                        Some(_) => '.',
                        None => match lattice.site(id) {
                            NodeSite::FunctionArea(_) => '·',
                            NodeSite::BlankArea => ' ',
                        },
                    }
                };
                line.push(ch);
            }
            println!("  {line}");
        }
        println!();
    }

    // Quantify the reconstruction on this map.
    let mut worst_err: f64 = 0.0;
    for k in 0..test.f.rows() {
        worst_err = worst_err
            .max((predicted[(k, worst_sample)] - test.f[(k, worst_sample)]).abs());
    }
    println!("worst per-block reconstruction error on this map: {:.2} mV", worst_err * 1e3);
    Ok(())
}
