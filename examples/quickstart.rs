//! Quickstart: the whole methodology in ~40 lines.
//!
//! Builds a small two-core chip, simulates three benchmarks on its power
//! grid, places sensors with the group lasso, refits the OLS voltage-map
//! model, and reports held-out accuracy and detection rates.
//!
//! Run with: `cargo run --release --example quickstart`

use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A chip: 2 cores x 30 function blocks, power grid overlaid.
    let scenario = Scenario::small()?;
    println!(
        "chip: {} cores, {} blocks, {} grid nodes, {} sensor candidates",
        scenario.chip().cores().len(),
        scenario.chip().blocks().len(),
        scenario.chip().lattice().len(),
        scenario.candidate_nodes().len(),
    );

    // 2. Training data: full-chip voltage maps from transient simulation.
    let data = scenario.collect(&[0, 6, 12])?;
    println!(
        "collected {} voltage maps ({} candidates x {} critical nodes)",
        data.num_samples(),
        data.num_candidates(),
        data.num_blocks()
    );
    let (train, test) = data.split(3);

    // 3. Fit: group-lasso selection + OLS refit.
    let config = MethodologyConfig {
        lambda: 10.0,
        ..MethodologyConfig::default()
    };
    let fitted = Methodology::fit(&train.x, &train.f, &config)?;
    println!(
        "selected {} sensors (budget λ = {}, consumed {:.3})",
        fitted.sensors().len(),
        config.lambda,
        fitted.selection().budget_used,
    );

    // 4. Evaluate on held-out maps.
    let report = fitted.evaluate(&test.x, &test.f)?;
    println!(
        "held-out relative error: {:.3e}  (rms {:.2} mV, worst {:.2} mV)",
        report.relative_error,
        report.rms_error * 1e3,
        report.max_abs_error * 1e3
    );
    println!(
        "detection @ {:.2} V: ME {:.4}, WAE {:.4}, TE {:.4} ({} emergencies in {} samples)",
        fitted.emergency_threshold(),
        report.detection.miss_rate,
        report.detection.wrong_alarm_rate,
        report.detection.total_error_rate,
        report.detection.emergencies,
        report.detection.samples
    );

    // 5. Runtime use: one prediction from the placed sensors only.
    let sample = test.x.col(0);
    let readings: Vec<f64> = fitted.sensors().iter().map(|&s| sample[s]).collect();
    let predicted = fitted.model().predict_from_sensors(&readings)?;
    let worst = predicted.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "runtime: from {} sensor readings, predicted worst block voltage {:.4} V",
        readings.len(),
        worst
    );
    Ok(())
}
