//! Placement review: after fitting, audit the placed sensors for
//! redundancy and conditioning — the robustness questions a deployment
//! review asks on top of the paper's accuracy numbers.
//!
//! Run with: `cargo run --release --example sensor_diagnostics`

use voltsense::core::diagnostics::analyze_placement;
use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small()?;
    let data = scenario.collect(&[0, 6, 12])?;
    let (train, _) = data.split(3);

    let fitted = Methodology::fit(
        &train.x,
        &train.f,
        &MethodologyConfig {
            lambda: 10.0,
            ..MethodologyConfig::default()
        },
    )?;
    let q = fitted.sensors().len();
    let eagle = EagleEyePlacement::place(&train.x, &train.f, q, &EagleEyeConfig::default())?;

    println!("auditing two placements of {q} sensors each\n");
    for (label, sensors) in [
        ("group-lasso (proposed)", fitted.sensors().to_vec()),
        ("eagle-eye (worst-noise)", eagle.selected().to_vec()),
    ] {
        let report = analyze_placement(&train.x, &sensors)?;
        println!("{label}:");
        println!(
            "  condition number        {:>10.1}",
            report.condition_number
        );
        println!(
            "  effective sensors       {:>10.2}  (of {q})",
            report.effective_sensors
        );
        let redundant = report.redundant_sensors(0.995);
        println!(
            "  sensors correlated > 0.995 with a peer: {} of {q}",
            redundant.len()
        );
        let worst = report
            .max_cross_correlation
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        println!("  worst pairwise correlation {worst:.4}\n");
    }

    println!(
        "interpretation: voltage fields are smooth, so *any* placement has\n\
         highly correlated sensors — but the effective-sensor count shows\n\
         how much independent information each placement really buys, and\n\
         near-1.0 pairs are candidates for dropping in a cost-down respin."
    );
    Ok(())
}
