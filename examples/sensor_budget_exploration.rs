//! Sensor-budget exploration: the designer workflow of the paper's
//! Section 2.4 — sweep λ over a large range and read off the sensor-count
//! versus prediction-accuracy trade-off (the basis of its Table 1).
//!
//! Run with: `cargo run --release --example sensor_budget_exploration`

use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small()?;
    let data = scenario.collect(&[0, 4, 9, 14])?;
    let (train, test) = data.split(3);
    println!(
        "training on {} maps, evaluating on {} (M = {} candidates, K = {} blocks)",
        train.num_samples(),
        test.num_samples(),
        data.num_candidates(),
        data.num_blocks()
    );
    println!();
    println!("{:>8}  {:>9}  {:>12}  {:>10}  {:>8}", "lambda", "sensors", "rel err", "rms (mV)", "TE rate");
    println!("{}", "-".repeat(56));

    for lambda in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let config = MethodologyConfig {
            lambda,
            ..MethodologyConfig::default()
        };
        match Methodology::fit(&train.x, &train.f, &config) {
            Ok(fitted) => {
                let report = fitted.evaluate(&test.x, &test.f)?;
                println!(
                    "{lambda:>8.1}  {:>9}  {:>12.3e}  {:>10.3}  {:>8.4}",
                    fitted.sensors().len(),
                    report.relative_error,
                    report.rms_error * 1e3,
                    report.detection.total_error_rate,
                );
            }
            Err(e) => println!("{lambda:>8.1}  fit failed: {e}"),
        }
    }
    println!();
    println!(
        "pick the smallest λ whose accuracy meets the design target — the\n\
         error budget is the designer's knob, the sensor count the cost."
    );
    Ok(())
}
