#!/usr/bin/env bash
# Tier-1 gate for the voltsense workspace. Runs fully offline: the
# workspace has zero external dependencies (see DESIGN.md §3), so a failure
# here is a real build/test failure, never a registry problem.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (all targets + doctests, VOLTSENSE_THREADS=1)"
VOLTSENSE_THREADS=1 cargo test -q --offline

echo "==> cargo test -q --offline (all targets + doctests, VOLTSENSE_THREADS=4)"
VOLTSENSE_THREADS=4 cargo test -q --offline

echo "==> cargo bench --no-run --offline (bench targets must compile)"
cargo bench --no-run --offline

echo "==> fault-tolerance sweep smoke (small scale, fast bench config)"
VOLTSENSE_SCALE=small TESTKIT_BENCH_FAST=1 \
    cargo run --release --offline -p voltsense-bench --bin fault_tolerance_sweep

echo "==> parallel scaling smoke (bit-identity + machine-aware speedup gate)"
# One rep per point keeps this fast; the binary hard-asserts bit-identity
# across thread counts and applies a lenient speedup floor on small
# runners (override with VOLTSENSE_MIN_SPEEDUP). Results go to a scratch
# dir so the committed results/bench_parallel_scaling.json reference is
# only compared against (gate below), never overwritten.
VOLTSENSE_BENCH_REPS=1 TESTKIT_RESULTS_DIR="$(mktemp -d)" \
    cargo run --release --offline -p voltsense-bench --bin parallel_scaling

echo "==> telemetry smoke (instrumented example + export validation)"
telemetry_prefix="$(mktemp -d)/telemetry_smoke"
VOLTSENSE_TELEMETRY="$telemetry_prefix" \
    cargo run --release --offline -p voltsense --example emergency_monitor
cargo run --release --offline -p voltsense-bench --bin validate_telemetry \
    "$telemetry_prefix.json" "$telemetry_prefix.trace.json"

echo "==> live observability smoke (flight recorder + /metrics scrape + incidents)"
# Run the example with NO export capture: only the always-on flight
# recorder is active. Scrape the live endpoint while it runs, then let it
# finish and validate the incident files the mid-trace sensor fault left
# behind.
obs_dir="$(mktemp -d)"
VOLTSENSE_TELEMETRY_ADDR=127.0.0.1:0 \
VOLTSENSE_TELEMETRY_ADDR_FILE="$obs_dir/addr" \
VOLTSENSE_TELEMETRY_LINGER=120 \
VOLTSENSE_TELEMETRY_STOP="$obs_dir/stop" \
VOLTSENSE_INCIDENT_DIR="$obs_dir/incidents" \
    cargo run --release --offline -p voltsense --example emergency_monitor &
example_pid=$!
trap 'kill "$example_pid" 2>/dev/null || true' EXIT
cargo run --release --offline -p voltsense-bench --bin scrape_endpoint "@$obs_dir/addr"
touch "$obs_dir/stop"   # release the linger
wait "$example_pid"
trap - EXIT
cargo run --release --offline -p voltsense-bench --bin validate_incident -- \
    --expect-kind alarm --expect-kind hot_swap \
    --expect-ring-event monitor.alarm --expect-attribution \
    "$obs_dir"/incidents/*.json

echo "==> profiling smoke (span-stack sampler + /profile scrape + attribution)"
# Run the seeded table2 bench with the 99 Hz sampler on and scrape
# /profile while it lingers. The validator checks both formats
# (voltsense-profile-v1 JSON and collapsed flamegraph text) and pins
# sampler attribution end to end: within the solver subtree
# (methodology.*) the hottest sampled callee must be a group-lasso
# solver span (gl.bcd.* / gl.fista.*).
prof_dir="$(mktemp -d)"
VOLTSENSE_PROFILE=1 \
VOLTSENSE_TELEMETRY_ADDR=127.0.0.1:0 \
VOLTSENSE_TELEMETRY_ADDR_FILE="$prof_dir/addr" \
VOLTSENSE_TELEMETRY_LINGER=120 \
VOLTSENSE_TELEMETRY_STOP="$prof_dir/stop" \
    cargo run --release --offline -p voltsense-bench --bin table2_error_rates &
prof_pid=$!
trap 'kill "$prof_pid" 2>/dev/null || true' EXIT
cargo run --release --offline -p voltsense-bench --bin validate_profile \
    "@$prof_dir/addr" --under methodology. --expect-top gl.bcd --expect-top gl.fista
touch "$prof_dir/stop"   # release the linger
wait "$prof_pid"
trap - EXIT

echo "==> fleet chaos smoke (seeded soak + restart resume + /trace + /slo scrape)"
# Chaos schedule is replayable from the seed; the binary hard-asserts
# zero server panics, latch-through-reconnect, an all-sessions resume
# (zero refits) after abort()+restart, a histogram-vs-exact-trace p99
# agreement, and a deterministic SLO fast-burn page from the laggy
# tenant. The scraper validates /metrics, /snapshot, /trace, /slo, and
# /healthz against the live soak; the incident validator then checks
# the fast-burn page left a voltsense-incident-v1 snapshot behind.
# Results go to a scratch dir: the committed results/bench_fleet.json
# reference is only compared against (gate below), never overwritten.
fleet_dir="$(mktemp -d)"
VOLTSENSE_FLEET_SESSIONS=64 VOLTSENSE_FLEET_FRAMES=10000 \
TESTKIT_RESULTS_DIR="$(mktemp -d)" \
VOLTSENSE_TELEMETRY_ADDR=127.0.0.1:0 \
VOLTSENSE_TELEMETRY_ADDR_FILE="$fleet_dir/addr" \
VOLTSENSE_TELEMETRY_LINGER=120 \
VOLTSENSE_TELEMETRY_STOP="$fleet_dir/stop" \
VOLTSENSE_INCIDENT_DIR="$fleet_dir/incidents" \
    cargo run --release --offline -p voltsense-bench --bin fleet_soak &
fleet_pid=$!
trap 'kill "$fleet_pid" 2>/dev/null || true' EXIT
cargo run --release --offline -p voltsense-bench --bin scrape_endpoint \
    "@$fleet_dir/addr" --fleet
touch "$fleet_dir/stop"   # release the linger
wait "$fleet_pid"
trap - EXIT
cargo run --release --offline -p voltsense-bench --bin validate_incident -- \
    --expect-kind slo_fast_burn \
    "$fleet_dir"/incidents/*.json

if [[ "${VOLTSENSE_BENCH_GATE:-}" == 1 ]]; then
    echo "==> bench regression gate (VOLTSENSE_BENCH_GATE=1)"
    fresh_dir="$(mktemp -d)"
    for ref in results/bench_*.json; do
        name="$(basename "$ref" .json)"
        case "$name" in
        bench_fleet)
            # Bin-generated report: a short soak regenerates it. Only the
            # microbench entries live inside `benchmarks` (soak stats sit
            # outside). The bodies are sub-µs and sampled min-of-k, but on
            # a shared single-core runner sustained CPU steal still
            # spreads back-to-back mins ~2x, so fleet compares at ±150%:
            # wide enough to never flap on neighbor noise, tight enough
            # to catch the step-change regressions (allocation blowups,
            # accidental quadratic scans) a µs gate can honestly detect.
            VOLTSENSE_FLEET_SESSIONS=16 VOLTSENSE_FLEET_FRAMES=2000 \
            TESTKIT_RESULTS_DIR="$fresh_dir" \
                cargo run --release --offline -p voltsense-bench --bin fleet_soak ||
                continue
            [[ -f "$fresh_dir/$name.json" ]] &&
                cargo run --release --offline -p voltsense-bench --bin bench_compare \
                    "$fresh_dir/$name.json" "$ref" --tolerance 1.5
            continue
            ;;
        bench_parallel_scaling)
            # Bin-generated report (not a bench target): regenerate with one
            # rep per point. Extra tN entries on wider machines are noted by
            # bench_compare, never gated; t1/t2/t4 always exist.
            VOLTSENSE_BENCH_REPS=1 TESTKIT_RESULTS_DIR="$fresh_dir" \
                cargo run --release --offline -p voltsense-bench --bin parallel_scaling ||
                continue
            ;;
        *)
            TESTKIT_BENCH_FAST=1 TESTKIT_RESULTS_DIR="$fresh_dir" \
                cargo bench --offline -p voltsense-bench --bench "${name#bench_}" 2>/dev/null ||
                continue
            ;;
        esac
        [[ -f "$fresh_dir/$name.json" ]] &&
            cargo run --release --offline -p voltsense-bench --bin bench_compare \
                "$fresh_dir/$name.json" "$ref"
    done
fi

echo "==> dependency policy: no external crates in any manifest"
if grep -rEn 'rand|proptest|criterion' Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi

echo "CI gate passed."
