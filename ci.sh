#!/usr/bin/env bash
# Tier-1 gate for the voltsense workspace. Runs fully offline: the
# workspace has zero external dependencies (see DESIGN.md §3), so a failure
# here is a real build/test failure, never a registry problem.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (all targets + doctests)"
cargo test -q --offline

echo "==> cargo bench --no-run --offline (bench targets must compile)"
cargo bench --no-run --offline

echo "==> fault-tolerance sweep smoke (small scale, fast bench config)"
VOLTSENSE_SCALE=small TESTKIT_BENCH_FAST=1 \
    cargo run --release --offline -p voltsense-bench --bin fault_tolerance_sweep

echo "==> telemetry smoke (instrumented example + export validation)"
telemetry_prefix="$(mktemp -d)/telemetry_smoke"
VOLTSENSE_TELEMETRY="$telemetry_prefix" \
    cargo run --release --offline -p voltsense --example emergency_monitor
cargo run --release --offline -p voltsense-bench --bin validate_telemetry \
    "$telemetry_prefix.json" "$telemetry_prefix.trace.json"

echo "==> dependency policy: no external crates in any manifest"
if grep -rEn 'rand|proptest|criterion' Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi

echo "CI gate passed."
