//! Eagle-Eye baseline: statistical noise-sensor placement (Wang et al.,
//! ICCAD 2013), reimplemented as the comparison point of the DAC'15 paper.
//!
//! Eagle-Eye's goal is to minimize the **miss-error rate only**: it picks
//! the sensor candidate locations that are most likely to themselves cross
//! the emergency threshold when a real emergency occurs in the function
//! area, and it alarms directly on the placed sensors' readings (no
//! prediction model). As the DAC'15 paper observes, this drives it to
//! "select the sensor candidates with worst voltage noise", clustering
//! sensors around the hottest unit (its Fig. 3).
//!
//! This implementation is a greedy maximum-coverage placement:
//!
//! 1. Label each training sample an *emergency* if any FA critical node is
//!    below the threshold.
//! 2. A candidate *covers* an emergency sample if its own (guardbanded)
//!    reading crosses the threshold in that sample.
//! 3. Greedily pick the candidate covering the most not-yet-covered
//!    emergencies; break ties by worse (lower) observed minimum voltage.
//! 4. When no remaining candidate adds coverage, fall back to
//!    worst-minimum-voltage ordering (Eagle-Eye's "worst noise" character).
//!
//! # Example
//!
//! ```
//! use voltsense_linalg::Matrix;
//! use voltsense_eagleeye::{EagleEyeConfig, EagleEyePlacement};
//!
//! # fn main() -> Result<(), voltsense_eagleeye::EagleEyeError> {
//! // Candidate 0 dips with the (single) FA node; candidate 1 never dips.
//! let x = Matrix::from_rows(&[&[0.99, 0.84, 0.99], &[0.99, 0.98, 0.99]])?;
//! let f = Matrix::from_rows(&[&[0.99, 0.80, 0.99]])?;
//! let placement = EagleEyePlacement::place(&x, &f, 1, &EagleEyeConfig::default())?;
//! assert_eq!(placement.selected(), &[0]);
//! assert!(placement.detect(&[0.84, 0.99]));
//! assert!(!placement.detect(&[0.99, 0.99]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use voltsense_linalg::{LinalgError, Matrix};

/// Error type for Eagle-Eye placement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EagleEyeError {
    /// Training matrices disagreed on the sample count, or were empty.
    ShapeMismatch {
        /// Description of the failing check.
        what: String,
    },
    /// The requested sensor count exceeds the candidate count or is zero.
    InvalidSensorCount {
        /// Requested number of sensors.
        requested: usize,
        /// Available candidates.
        available: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Human-readable description.
        what: String,
    },
    /// Underlying dense algebra failed.
    Linalg(LinalgError),
}

impl fmt::Display for EagleEyeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EagleEyeError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            EagleEyeError::InvalidSensorCount {
                requested,
                available,
            } => write!(
                f,
                "cannot place {requested} sensors with {available} candidates"
            ),
            EagleEyeError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            EagleEyeError::Linalg(e) => write!(f, "linear algebra failed: {e}"),
        }
    }
}

impl Error for EagleEyeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EagleEyeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for EagleEyeError {
    fn from(e: LinalgError) -> Self {
        EagleEyeError::Linalg(e)
    }
}

/// Eagle-Eye configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EagleEyeConfig {
    /// Emergency threshold (V): a node is in emergency when its voltage is
    /// below this. The paper uses 0.85 V at VDD = 1.0 V.
    pub emergency_threshold: f64,
    /// Sensor guardband (V): a placed sensor alarms when its reading falls
    /// below `emergency_threshold + guardband`. Blank-area nodes droop
    /// less than function-area nodes, so a positive guardband trades
    /// wrong-alarm rate for miss rate. Eagle-Eye's published setting is a
    /// plain threshold comparison (guardband 0).
    pub guardband: f64,
}

impl Default for EagleEyeConfig {
    fn default() -> Self {
        EagleEyeConfig {
            emergency_threshold: 0.85,
            guardband: 0.0,
        }
    }
}

impl EagleEyeConfig {
    fn validate(&self) -> Result<(), EagleEyeError> {
        if !self.emergency_threshold.is_finite()
            || self.emergency_threshold <= 0.0
            || !self.guardband.is_finite()
        {
            return Err(EagleEyeError::InvalidConfig {
                what: format!("config out of range: {self:?}"),
            });
        }
        Ok(())
    }

    /// The effective sensor alarm level, `threshold + guardband`.
    pub fn alarm_level(&self) -> f64 {
        self.emergency_threshold + self.guardband
    }
}

/// A fitted Eagle-Eye placement: the selected candidate indices plus the
/// alarm rule.
#[derive(Debug, Clone, PartialEq)]
pub struct EagleEyePlacement {
    selected: Vec<usize>,
    config: EagleEyeConfig,
    num_candidates: usize,
}

impl EagleEyePlacement {
    /// Runs the greedy coverage placement.
    ///
    /// `x` is the `M x N` candidate-voltage training matrix, `f` the
    /// `K x N` critical-node matrix; `q` sensors are placed.
    ///
    /// # Errors
    ///
    /// * [`EagleEyeError::ShapeMismatch`] if `x` and `f` disagree on `N`
    ///   or are empty.
    /// * [`EagleEyeError::InvalidSensorCount`] if `q == 0` or `q > M`.
    /// * [`EagleEyeError::InvalidConfig`] for an out-of-range config.
    pub fn place(
        x: &Matrix,
        f: &Matrix,
        q: usize,
        config: &EagleEyeConfig,
    ) -> Result<Self, EagleEyeError> {
        config.validate()?;
        let (m, n) = x.shape();
        if f.cols() != n || n == 0 {
            return Err(EagleEyeError::ShapeMismatch {
                what: format!(
                    "X is {m}x{n}, F is {}x{} — sample counts must match and be non-zero",
                    f.rows(),
                    f.cols()
                ),
            });
        }
        if q == 0 || q > m {
            return Err(EagleEyeError::InvalidSensorCount {
                requested: q,
                available: m,
            });
        }

        // Emergency samples: any critical node below threshold.
        let thr = config.emergency_threshold;
        let emergencies: Vec<usize> = (0..n)
            .filter(|&s| (0..f.rows()).any(|k| f[(k, s)] < thr))
            .collect();

        // Per-candidate alarm sets over emergency samples, and worst-noise
        // statistic for tie-breaks / fallback.
        let alarm = config.alarm_level();
        let min_voltage: Vec<f64> = (0..m)
            .map(|c| x.row(c).iter().copied().fold(f64::INFINITY, f64::min))
            .collect();
        let covers: Vec<Vec<usize>> = (0..m)
            .map(|c| {
                emergencies
                    .iter()
                    .copied()
                    .filter(|&s| x[(c, s)] < alarm)
                    .collect()
            })
            .collect();

        let mut selected: Vec<usize> = Vec::with_capacity(q);
        let mut covered = vec![false; n];
        let mut used = vec![false; m];
        for _ in 0..q {
            // Greedy: most new coverage, tie-broken by worst noise.
            let best = (0..m)
                .filter(|&c| !used[c])
                .map(|c| {
                    let gain = covers[c].iter().filter(|&&s| !covered[s]).count();
                    (c, gain)
                })
                .max_by(|a, b| {
                    a.1.cmp(&b.1)
                        .then_with(|| {
                            // Lower min voltage = worse noise = preferred.
                            min_voltage[b.0].total_cmp(&min_voltage[a.0])
                        })
                })
                .expect("at least one unused candidate");
            let (c, _) = best;
            used[c] = true;
            selected.push(c);
            for &s in &covers[c] {
                covered[s] = true;
            }
        }
        selected.sort_unstable();
        Ok(EagleEyePlacement {
            selected,
            config: config.clone(),
            num_candidates: m,
        })
    }

    /// Indices (into the candidate set) of the placed sensors, ascending.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// The configuration the placement was fitted with.
    pub fn config(&self) -> &EagleEyeConfig {
        &self.config
    }

    /// Number of candidates the placement was fitted over.
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// Alarm decision for one sample of all candidate voltages: `true` if
    /// any placed sensor reads below the alarm level.
    ///
    /// # Panics
    ///
    /// Panics if `candidate_voltages.len()` differs from the fitted
    /// candidate count.
    pub fn detect(&self, candidate_voltages: &[f64]) -> bool {
        assert_eq!(
            candidate_voltages.len(),
            self.num_candidates,
            "candidate vector length mismatch"
        );
        let alarm = self.config.alarm_level();
        self.selected
            .iter()
            .any(|&c| candidate_voltages[c] < alarm)
    }

    /// Alarm decision from the placed sensors' *own* readings (`Q` values,
    /// ordered like [`EagleEyePlacement::selected`]): `true` if any reads
    /// below the alarm level. This is the deployment-side entry point —
    /// the runtime only ever sees the placed sensors — and the one a
    /// fault-injection harness corrupts.
    ///
    /// Non-finite readings do not alarm: Eagle-Eye has no prediction model
    /// to reject them with, and `NaN < alarm` is `false` — which is
    /// exactly why a dead sensor silently costs it coverage.
    ///
    /// # Errors
    ///
    /// Returns [`EagleEyeError::ShapeMismatch`] if `readings.len()`
    /// differs from the placed sensor count.
    pub fn detect_readings(&self, readings: &[f64]) -> Result<bool, EagleEyeError> {
        if readings.len() != self.selected.len() {
            return Err(EagleEyeError::ShapeMismatch {
                what: format!(
                    "expected {} sensor readings, got {}",
                    self.selected.len(),
                    readings.len()
                ),
            });
        }
        let alarm = self.config.alarm_level();
        Ok(readings.iter().any(|&v| v < alarm))
    }

    /// Alarm decisions for every column of an `M x N` candidate matrix.
    ///
    /// # Errors
    ///
    /// Returns [`EagleEyeError::ShapeMismatch`] if `x.rows()` differs from
    /// the fitted candidate count.
    pub fn detect_matrix(&self, x: &Matrix) -> Result<Vec<bool>, EagleEyeError> {
        if x.rows() != self.num_candidates {
            return Err(EagleEyeError::ShapeMismatch {
                what: format!(
                    "X has {} rows, placement was fitted over {} candidates",
                    x.rows(),
                    self.num_candidates
                ),
            });
        }
        let alarm = self.config.alarm_level();
        Ok((0..x.cols())
            .map(|s| self.selected.iter().any(|&c| x[(c, s)] < alarm))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three candidates, one critical node. Candidate 0 mirrors the
    /// critical node, candidate 1 is quiet, candidate 2 dips sometimes.
    fn training() -> (Matrix, Matrix) {
        let x = Matrix::from_rows(&[
            &[0.99, 0.84, 0.99, 0.83, 0.99, 0.99],
            &[0.99, 0.98, 0.99, 0.98, 0.99, 0.99],
            &[0.99, 0.99, 0.84, 0.99, 0.99, 0.99],
        ])
        .unwrap();
        let f = Matrix::from_rows(&[&[0.99, 0.80, 0.82, 0.81, 0.99, 0.99]]).unwrap();
        (x, f)
    }

    #[test]
    fn picks_best_covering_candidate_first() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 1, &EagleEyeConfig::default()).unwrap();
        // Candidate 0 covers emergencies {1, 3}; candidate 2 covers {2}.
        assert_eq!(p.selected(), &[0]);
    }

    #[test]
    fn second_sensor_adds_coverage() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 2, &EagleEyeConfig::default()).unwrap();
        assert_eq!(p.selected(), &[0, 2]);
    }

    #[test]
    fn fallback_orders_by_worst_noise() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 3, &EagleEyeConfig::default()).unwrap();
        assert_eq!(p.selected(), &[0, 1, 2]);
    }

    #[test]
    fn detect_uses_only_selected_sensors() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 1, &EagleEyeConfig::default()).unwrap();
        // Candidate 2 dips but is not placed: no alarm.
        assert!(!p.detect(&[0.99, 0.99, 0.80]));
        assert!(p.detect(&[0.80, 0.99, 0.99]));
    }

    #[test]
    fn detect_matrix_matches_per_sample() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 2, &EagleEyeConfig::default()).unwrap();
        let alarms = p.detect_matrix(&x).unwrap();
        for s in 0..x.cols() {
            let sample = x.col(s);
            assert_eq!(alarms[s], p.detect(&sample));
        }
    }

    #[test]
    fn guardband_raises_alarm_level() {
        let (x, f) = training();
        let cfg = EagleEyeConfig {
            guardband: 0.10,
            ..EagleEyeConfig::default()
        };
        let p = EagleEyePlacement::place(&x, &f, 1, &cfg).unwrap();
        // With +0.10 guardband the quiet 0.94 reading now alarms.
        assert!(p.detect(&[0.94, 0.99, 0.99]));
    }

    #[test]
    fn errors_on_bad_inputs() {
        let (x, f) = training();
        assert!(EagleEyePlacement::place(&x, &f, 0, &EagleEyeConfig::default()).is_err());
        assert!(EagleEyePlacement::place(&x, &f, 4, &EagleEyeConfig::default()).is_err());
        let f_bad = Matrix::zeros(1, 5);
        assert!(EagleEyePlacement::place(&x, &f_bad, 1, &EagleEyeConfig::default()).is_err());
        let cfg = EagleEyeConfig {
            emergency_threshold: f64::NAN,
            ..EagleEyeConfig::default()
        };
        assert!(EagleEyePlacement::place(&x, &f, 1, &cfg).is_err());
    }

    #[test]
    fn detect_matrix_shape_checked() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 1, &EagleEyeConfig::default()).unwrap();
        assert!(p.detect_matrix(&Matrix::zeros(2, 4)).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn detect_wrong_len_panics() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 1, &EagleEyeConfig::default()).unwrap();
        p.detect(&[1.0]);
    }

    #[test]
    fn no_emergencies_falls_back_to_worst_noise() {
        let x = Matrix::from_rows(&[
            &[0.99, 0.97, 0.99],
            &[0.99, 0.90, 0.99], // worst noise
        ])
        .unwrap();
        let f = Matrix::from_rows(&[&[0.99, 0.95, 0.99]]).unwrap();
        let p = EagleEyePlacement::place(&x, &f, 1, &EagleEyeConfig::default()).unwrap();
        assert_eq!(p.selected(), &[1]);
    }

    #[test]
    fn detect_readings_alarms_on_any_placed_sensor_dip() {
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 2, &EagleEyeConfig::default()).unwrap();
        assert_eq!(p.selected(), &[0, 2]);
        assert!(!p.detect_readings(&[0.99, 0.99]).unwrap());
        assert!(p.detect_readings(&[0.80, 0.99]).unwrap());
        assert!(p.detect_readings(&[0.99, 0.80]).unwrap());
        // Wrong length is a typed error, not a panic.
        assert!(matches!(
            p.detect_readings(&[0.99]),
            Err(EagleEyeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn detect_readings_ignores_non_finite_faults() {
        // Eagle-Eye has no cross-check: a dead (NaN) sensor simply never
        // alarms, silently losing its coverage.
        let (x, f) = training();
        let p = EagleEyePlacement::place(&x, &f, 2, &EagleEyeConfig::default()).unwrap();
        assert!(!p.detect_readings(&[f64::NAN, 0.99]).unwrap());
        // The surviving sensor still works.
        assert!(p.detect_readings(&[f64::NAN, 0.80]).unwrap());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EagleEyeError>();
    }
}
