use voltsense_linalg::lstsq::{self, LinearFit};
use voltsense_linalg::Matrix;

use crate::selection::SelectionResult;
use crate::CoreError;

/// The paper's runtime prediction model (Section 2.3): an OLS refit of
/// the critical-node voltages on the *selected* sensors only, in original
/// volt units (Eq. 17–20).
///
/// The refit matters: the group-lasso coefficients are biased towards zero
/// by the budget constraint (the paper's two-candidate example around
/// Eq. 15–16), so a model read straight off `β` under-predicts droops.
/// Compare with [`GlDirectModel`] in the `ablation_refit` experiment.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct VoltageMapModel {
    sensor_indices: Vec<usize>,
    fit: LinearFit,
    num_candidates: usize,
}

impl VoltageMapModel {
    /// Fits the model: OLS of `f` on the `sensors` rows of `x`
    /// (both in volts).
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] on sample-count mismatch, an empty
    ///   sensor list, or an out-of-range sensor index.
    /// * Propagates least-squares failures.
    pub fn fit(x: &Matrix, f: &Matrix, sensors: &[usize]) -> Result<Self, CoreError> {
        if x.cols() != f.cols() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "X has {} samples, F has {} — they must match",
                    x.cols(),
                    f.cols()
                ),
            });
        }
        if sensors.is_empty() {
            return Err(CoreError::ShapeMismatch {
                what: "sensor list is empty".into(),
            });
        }
        if let Some(&bad) = sensors.iter().find(|&&s| s >= x.rows()) {
            return Err(CoreError::ShapeMismatch {
                what: format!("sensor index {bad} out of range for {} candidates", x.rows()),
            });
        }
        let x_sel = x.select_rows(sensors);
        let fit = lstsq::ols_with_intercept(&x_sel, f)?;
        Ok(VoltageMapModel {
            sensor_indices: sensors.to_vec(),
            fit,
            num_candidates: x.rows(),
        })
    }

    /// Indices of the placed sensors within the candidate set.
    pub fn sensor_indices(&self) -> &[usize] {
        &self.sensor_indices
    }

    /// Number of sensors `Q`.
    pub fn num_sensors(&self) -> usize {
        self.sensor_indices.len()
    }

    /// Number of predicted critical nodes `K`.
    pub fn num_targets(&self) -> usize {
        self.fit.coefficients.rows()
    }

    /// Number of candidates the model was fitted against (for
    /// full-candidate-vector prediction).
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// The fitted coefficients `α^S` (`K x Q`) and intercept `c`.
    pub fn linear_fit(&self) -> &LinearFit {
        &self.fit
    }

    /// Training root-mean-square residual (V).
    pub fn rms_residual(&self) -> f64 {
        self.fit.rms_residual
    }

    /// Predicts all critical-node voltages from the `Q` placed sensors'
    /// readings (Eq. 20) — the cheap runtime operation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `readings.len() != Q`.
    pub fn predict_from_sensors(&self, readings: &[f64]) -> Result<Vec<f64>, CoreError> {
        if readings.len() != self.num_sensors() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "expected {} sensor readings, got {}",
                    self.num_sensors(),
                    readings.len()
                ),
            });
        }
        Ok(self.fit.predict(readings)?)
    }

    /// Predicts from a full candidate-voltage vector (`M` values), picking
    /// out the placed sensors' entries — convenient when evaluating on
    /// simulated maps.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if
    /// `candidates.len() != self.num_candidates()`.
    pub fn predict_from_candidates(&self, candidates: &[f64]) -> Result<Vec<f64>, CoreError> {
        if candidates.len() != self.num_candidates {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "expected {} candidate voltages, got {}",
                    self.num_candidates,
                    candidates.len()
                ),
            });
        }
        let readings: Vec<f64> = self
            .sensor_indices
            .iter()
            .map(|&s| candidates[s])
            .collect();
        self.predict_from_sensors(&readings)
    }

    /// Batch prediction over an `M x N` candidate matrix, returning
    /// `K x N` predicted critical voltages.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `x.rows()` differs from the
    /// fitted candidate count.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Matrix, CoreError> {
        if x.rows() != self.num_candidates {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "X has {} rows, model was fitted over {} candidates",
                    x.rows(),
                    self.num_candidates
                ),
            });
        }
        let x_sel = x.select_rows(&self.sensor_indices);
        Ok(self.fit.predict_matrix(&x_sel)?)
    }

    /// Emergency decision for one candidate-voltage sample: alarm if any
    /// predicted critical voltage is below `threshold`.
    ///
    /// # Errors
    ///
    /// Same as [`VoltageMapModel::predict_from_candidates`].
    pub fn detect(&self, candidates: &[f64], threshold: f64) -> Result<bool, CoreError> {
        Ok(self
            .predict_from_candidates(candidates)?
            .iter()
            .any(|&v| v < threshold))
    }

    /// Emergency decisions for every column of an `M x N` candidate
    /// matrix.
    ///
    /// # Errors
    ///
    /// Same as [`VoltageMapModel::predict_matrix`].
    pub fn detect_matrix(&self, x: &Matrix, threshold: f64) -> Result<Vec<bool>, CoreError> {
        let pred = self.predict_matrix(x)?;
        Ok((0..pred.cols())
            .map(|s| (0..pred.rows()).any(|k| pred[(k, s)] < threshold))
            .collect())
    }
}

/// The paper's Eq. 14 strawman: predict directly from the (normalized,
/// budget-biased) group-lasso coefficients without the OLS refit.
///
/// Exists for the ablation experiment showing why the refit is necessary;
/// production use should go through [`VoltageMapModel`].
#[derive(Debug, Clone)]
pub struct GlDirectModel {
    beta_selected: Matrix,
    selection: SelectionResult,
}

impl GlDirectModel {
    /// Builds the direct model from a selection result.
    pub fn from_selection(selection: SelectionResult) -> Self {
        let beta_selected = selection.beta.select_cols(&selection.selected);
        GlDirectModel {
            beta_selected,
            selection,
        }
    }

    /// Predicts critical-node voltages from a full candidate-voltage
    /// vector using the GL coefficients: normalize the selected readings,
    /// apply `β`, invert the target normalization.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if the vector length differs
    /// from the fitted candidate count.
    pub fn predict_from_candidates(&self, candidates: &[f64]) -> Result<Vec<f64>, CoreError> {
        let z = self.selection.x_normalizer.apply_vec(candidates)?;
        let z_sel: Vec<f64> = self.selection.selected.iter().map(|&m| z[m]).collect();
        let g = self.beta_selected.matvec(&z_sel)?;
        Ok(self.selection.f_normalizer.invert_vec(&g)?)
    }

    /// The selection this model was built from.
    pub fn selection(&self) -> &SelectionResult {
        &self.selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SensorSelector;

    /// f0 = 0.9·x0 + 0.05, f1 = 0.5·x0 + 0.5·x2 (noiseless).
    fn training() -> (Matrix, Matrix) {
        let n = 30;
        let mut x = Matrix::zeros(3, n);
        let mut f = Matrix::zeros(2, n);
        for s in 0..n {
            let t = s as f64;
            let x0 = 0.93 + 0.05 * (t * 0.7).sin();
            let x1 = 0.95 + 0.01 * (t * 2.1).cos();
            let x2 = 0.94 + 0.04 * (t * 1.3).cos();
            x[(0, s)] = x0;
            x[(1, s)] = x1;
            x[(2, s)] = x2;
            f[(0, s)] = 0.9 * x0 + 0.05;
            f[(1, s)] = 0.5 * x0 + 0.5 * x2;
        }
        (x, f)
    }

    #[test]
    fn noiseless_fit_recovers_model() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        assert!(model.rms_residual() < 1e-10);
        let pred = model.predict_from_sensors(&[0.90, 0.95]).unwrap();
        assert!((pred[0] - (0.9 * 0.90 + 0.05)).abs() < 1e-9);
        assert!((pred[1] - (0.5 * 0.90 + 0.5 * 0.95)).abs() < 1e-9);
    }

    #[test]
    fn candidate_and_sensor_paths_agree() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        let full = [0.91, 0.95, 0.93];
        let via_candidates = model.predict_from_candidates(&full).unwrap();
        let via_sensors = model.predict_from_sensors(&[0.91, 0.93]).unwrap();
        assert_eq!(via_candidates, via_sensors);
    }

    #[test]
    fn batch_prediction_matches_single() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        let batch = model.predict_matrix(&x).unwrap();
        for s in [0usize, 7, 19] {
            let single = model.predict_from_candidates(&x.col(s)).unwrap();
            for k in 0..2 {
                assert!((batch[(k, s)] - single[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn detection_thresholds_predictions() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        // Drive candidate 0 low so f0 = 0.9·x0 + 0.05 < 0.85 ⇔ x0 < 0.889.
        assert!(model.detect(&[0.86, 0.95, 0.95], 0.85).unwrap());
        assert!(!model.detect(&[0.95, 0.95, 0.95], 0.85).unwrap());
        let alarms = model.detect_matrix(&x, 0.85).unwrap();
        assert_eq!(alarms.len(), x.cols());
    }

    #[test]
    fn shape_errors() {
        let (x, f) = training();
        assert!(VoltageMapModel::fit(&x, &f, &[]).is_err());
        assert!(VoltageMapModel::fit(&x, &f, &[7]).is_err());
        let f_bad = Matrix::zeros(2, 5);
        assert!(VoltageMapModel::fit(&x, &f_bad, &[0]).is_err());
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        assert!(model.predict_from_sensors(&[1.0]).is_err());
        assert!(model.predict_from_candidates(&[1.0]).is_err());
        assert!(model.predict_matrix(&Matrix::zeros(5, 4)).is_err());
    }

    #[test]
    fn gl_direct_model_is_biased_towards_zero_droop() {
        // The constrained GL shrinks coefficients, so the direct model
        // under-reacts to droops compared with the OLS refit — exactly the
        // argument of the paper's Section 2.3 example.
        let (x, f) = training();
        let selector = SensorSelector::new(0.8, 1e-3).unwrap();
        let selection = selector.select(&x, &f).unwrap();
        let refit = VoltageMapModel::fit(&x, &f, &selection.selected).unwrap();
        let direct = GlDirectModel::from_selection(selection);

        // A deep droop on the informative candidates.
        let sample = [0.80, 0.95, 0.82];
        let refit_pred = refit.predict_from_candidates(&sample).unwrap();
        let direct_pred = direct.predict_from_candidates(&sample).unwrap();
        // The direct model predicts milder droops (higher voltage).
        assert!(
            direct_pred[0] > refit_pred[0],
            "direct {direct_pred:?} vs refit {refit_pred:?}"
        );
    }

    #[test]
    fn gl_direct_prediction_shape_checked() {
        let (x, f) = training();
        let selection = SensorSelector::new(0.8, 1e-3)
            .unwrap()
            .select(&x, &f)
            .unwrap();
        let direct = GlDirectModel::from_selection(selection);
        assert!(direct.predict_from_candidates(&[1.0]).is_err());
    }
}
