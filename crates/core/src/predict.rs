use std::collections::BTreeMap;

use voltsense_linalg::lstsq::{self, LinearFit};
use voltsense_linalg::{vec_ops, Matrix};
use voltsense_parallel as parallel;
use voltsense_telemetry as telemetry;

use crate::selection::SelectionResult;
use crate::CoreError;

/// The paper's runtime prediction model (Section 2.3): an OLS refit of
/// the critical-node voltages on the *selected* sensors only, in original
/// volt units (Eq. 17–20).
///
/// The refit matters: the group-lasso coefficients are biased towards zero
/// by the budget constraint (the paper's two-candidate example around
/// Eq. 15–16), so a model read straight off `β` under-predicts droops.
/// Compare with [`GlDirectModel`] in the `ablation_refit` experiment.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct VoltageMapModel {
    sensor_indices: Vec<usize>,
    fit: LinearFit,
    num_candidates: usize,
}

impl VoltageMapModel {
    /// Fits the model: OLS of `f` on the `sensors` rows of `x`
    /// (both in volts).
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] on sample-count mismatch, an empty
    ///   sensor list, or an out-of-range sensor index.
    /// * Propagates least-squares failures.
    pub fn fit(x: &Matrix, f: &Matrix, sensors: &[usize]) -> Result<Self, CoreError> {
        if x.cols() != f.cols() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "X has {} samples, F has {} — they must match",
                    x.cols(),
                    f.cols()
                ),
            });
        }
        if sensors.is_empty() {
            return Err(CoreError::ShapeMismatch {
                what: "sensor list is empty".into(),
            });
        }
        if let Some(&bad) = sensors.iter().find(|&&s| s >= x.rows()) {
            return Err(CoreError::ShapeMismatch {
                what: format!("sensor index {bad} out of range for {} candidates", x.rows()),
            });
        }
        let _span = telemetry::span("core.ols_refit");
        telemetry::counter("core.ols_refits", 1);
        let x_sel = x.select_rows(sensors);
        let fit = lstsq::ols_with_intercept(&x_sel, f)?;
        Ok(VoltageMapModel {
            sensor_indices: sensors.to_vec(),
            fit,
            num_candidates: x.rows(),
        })
    }

    /// Rebuilds a fitted model from serialized parts — the restore half of
    /// a session checkpoint (see `voltsense-fleet`). No training data is
    /// needed: the coefficients and intercept *are* the model, so a
    /// restarted monitor resumes predicting without a refit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when the parts are not mutually
    /// consistent: empty or out-of-range sensor list, coefficient column
    /// count differing from the sensor count, intercept length differing
    /// from the coefficient row count, or a non-finite parameter.
    pub fn from_parts(
        sensors: Vec<usize>,
        num_candidates: usize,
        coefficients: Matrix,
        intercept: Vec<f64>,
        rms_residual: f64,
    ) -> Result<Self, CoreError> {
        if sensors.is_empty() {
            return Err(CoreError::ShapeMismatch {
                what: "sensor list is empty".into(),
            });
        }
        if let Some(&bad) = sensors.iter().find(|&&s| s >= num_candidates) {
            return Err(CoreError::ShapeMismatch {
                what: format!("sensor index {bad} out of range for {num_candidates} candidates"),
            });
        }
        if coefficients.cols() != sensors.len() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "coefficients have {} columns for {} sensors",
                    coefficients.cols(),
                    sensors.len()
                ),
            });
        }
        if intercept.len() != coefficients.rows() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "intercept has {} entries for {} coefficient rows",
                    intercept.len(),
                    coefficients.rows()
                ),
            });
        }
        let finite = coefficients.as_slice().iter().all(|v| v.is_finite())
            && intercept.iter().all(|v| v.is_finite())
            && rms_residual.is_finite()
            && rms_residual >= 0.0;
        if !finite {
            return Err(CoreError::ShapeMismatch {
                what: "model parts contain a non-finite parameter".into(),
            });
        }
        Ok(VoltageMapModel {
            sensor_indices: sensors,
            fit: LinearFit {
                coefficients,
                intercept,
                rms_residual,
            },
            num_candidates,
        })
    }

    /// Indices of the placed sensors within the candidate set.
    pub fn sensor_indices(&self) -> &[usize] {
        &self.sensor_indices
    }

    /// Number of sensors `Q`.
    pub fn num_sensors(&self) -> usize {
        self.sensor_indices.len()
    }

    /// Number of predicted critical nodes `K`.
    pub fn num_targets(&self) -> usize {
        self.fit.coefficients.rows()
    }

    /// Number of candidates the model was fitted against (for
    /// full-candidate-vector prediction).
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// The fitted coefficients `α^S` (`K x Q`) and intercept `c`.
    pub fn linear_fit(&self) -> &LinearFit {
        &self.fit
    }

    /// Training root-mean-square residual (V).
    pub fn rms_residual(&self) -> f64 {
        self.fit.rms_residual
    }

    /// Predicts all critical-node voltages from the `Q` placed sensors'
    /// readings (Eq. 20) — the cheap runtime operation.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] if `readings.len() != Q`.
    /// * [`CoreError::NonFiniteReading`] for a NaN or infinite reading —
    ///   a single corrupted input would otherwise poison *every* predicted
    ///   node.
    pub fn predict_from_sensors(&self, readings: &[f64]) -> Result<Vec<f64>, CoreError> {
        let mut out = vec![0.0; self.num_targets()];
        self.predict_into(readings, &mut out)?;
        Ok(out)
    }

    /// [`VoltageMapModel::predict_from_sensors`] into a caller-provided
    /// output slice of length `K`, allocating nothing on success — the
    /// steady-state form of the per-reading runtime path, pinned by the
    /// fleet `alloc_gate` test. (The error paths still format messages.)
    ///
    /// # Errors
    ///
    /// As [`VoltageMapModel::predict_from_sensors`], plus
    /// [`CoreError::ShapeMismatch`] when `out.len() != K`.
    pub fn predict_into(&self, readings: &[f64], out: &mut [f64]) -> Result<(), CoreError> {
        if readings.len() != self.num_sensors() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "expected {} sensor readings, got {}",
                    self.num_sensors(),
                    readings.len()
                ),
            });
        }
        if out.len() != self.num_targets() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "expected output of length {}, got {}",
                    self.num_targets(),
                    out.len()
                ),
            });
        }
        if let Some(bad) = readings.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteReading { sensor: bad });
        }
        self.fit.predict_into(readings, out)?;
        Ok(())
    }

    /// Predicts from a full candidate-voltage vector (`M` values), picking
    /// out the placed sensors' entries — convenient when evaluating on
    /// simulated maps.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if
    /// `candidates.len() != self.num_candidates()`.
    pub fn predict_from_candidates(&self, candidates: &[f64]) -> Result<Vec<f64>, CoreError> {
        if candidates.len() != self.num_candidates {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "expected {} candidate voltages, got {}",
                    self.num_candidates,
                    candidates.len()
                ),
            });
        }
        let readings: Vec<f64> = self
            .sensor_indices
            .iter()
            .map(|&s| candidates[s])
            .collect();
        self.predict_from_sensors(&readings)
    }

    /// Batch prediction over an `M x N` candidate matrix, returning
    /// `K x N` predicted critical voltages.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `x.rows()` differs from the
    /// fitted candidate count.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Matrix, CoreError> {
        if x.rows() != self.num_candidates {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "X has {} rows, model was fitted over {} candidates",
                    x.rows(),
                    self.num_candidates
                ),
            });
        }
        let x_sel = x.select_rows(&self.sensor_indices);
        Ok(self.fit.predict_matrix(&x_sel)?)
    }

    /// Emergency decision for one candidate-voltage sample: alarm if any
    /// predicted critical voltage is below `threshold`.
    ///
    /// # Errors
    ///
    /// Same as [`VoltageMapModel::predict_from_candidates`].
    pub fn detect(&self, candidates: &[f64], threshold: f64) -> Result<bool, CoreError> {
        Ok(self
            .predict_from_candidates(candidates)?
            .iter()
            .any(|&v| v < threshold))
    }

    /// Emergency decisions for every column of an `M x N` candidate
    /// matrix.
    ///
    /// # Errors
    ///
    /// Same as [`VoltageMapModel::predict_matrix`].
    pub fn detect_matrix(&self, x: &Matrix, threshold: f64) -> Result<Vec<bool>, CoreError> {
        let pred = self.predict_matrix(x)?;
        Ok((0..pred.cols())
            .map(|s| (0..pred.rows()).any(|k| pred[(k, s)] < threshold))
            .collect())
    }
}

/// A [`VoltageMapModel`] hardened against sensor loss: alongside the
/// primary Q-sensor fit it pre-fits the whole leave-one-sensor-out fallback
/// family (Q extra OLS refits on the same training matrices) plus a
/// cross-prediction model per sensor (each sensor's reading predicted from
/// the other Q−1), so the runtime monitor can score sensor health and
/// hot-swap a fallback the moment a sensor is flagged.
///
/// Multi-failure fallbacks (2+ sensors down at once) are fitted lazily on
/// first use and cached, keyed by the excluded set.
#[derive(Debug, Clone)]
pub struct FaultTolerantModel {
    primary: VoltageMapModel,
    /// `Q x N` training readings of the placed sensors.
    x_sel: Matrix,
    /// `K x N` training targets, kept for lazy multi-failure refits.
    f_train: Matrix,
    /// Per-sensor training-mean reading, used as a neutral stand-in when a
    /// lost sensor's value is needed by a cross-prediction input vector.
    sensor_means: Vec<f64>,
    /// `fallbacks[i]` predicts all targets without sensor `i` (empty when
    /// `Q == 1` — there is nothing to fall back to).
    fallbacks: Vec<LinearFit>,
    /// Cross-prediction families keyed by the excluded sensor set: the
    /// empty key (fitted eagerly) scores all Q sensors against each other;
    /// reduced families are fitted lazily as sensors drop out, so health
    /// scoring among survivors never needs a stand-in value for a dead
    /// sensor's reading.
    cross_families: BTreeMap<Vec<usize>, CrossFamily>,
    /// Lazily fitted fallbacks for multi-sensor exclusions.
    multi_cache: BTreeMap<Vec<usize>, LinearFit>,
}

/// Mutual cross-prediction models over one set of surviving sensors: each
/// sensor predicted from the others, plus per-sensor fault *signatures*
/// for blame attribution.
///
/// When sensor `k` alone reads wrong by `e`, its own cross-residual moves
/// by `e` and every other sensor `i`'s by `−w_ik·e` (`w_ik` = weight of
/// sensor `k` in sensor `i`'s cross-model) — a fixed direction computable
/// at fit time. Matching the observed residual vector against these
/// signatures names the sensor that *caused* the disturbance, which a
/// naive worst-residual rule gets wrong whenever some `|w_ik| > 1`.
#[derive(Debug, Clone)]
pub struct CrossFamily {
    /// Global sensor positions covered, sorted ascending.
    sensors: Vec<usize>,
    /// Reading-vector length these models expect.
    num_sensors_total: usize,
    /// `fits[local]` predicts `sensors[local]` from the rest, with its
    /// training RMS residual.
    fits: Vec<(LinearFit, f64)>,
    /// Unit-norm residual signatures, indexed like `sensors`.
    signatures: Vec<Vec<f64>>,
}

impl CrossFamily {
    fn fit(x_sel: &Matrix, sensors: &[usize]) -> Result<Self, CoreError> {
        debug_assert!(sensors.len() >= 2, "caller guarantees two survivors");
        let n = sensors.len();
        // Each cross-model is an independent OLS problem on the same
        // training matrix, so the per-sensor fits fan out; the ordered
        // collect keeps the first error deterministic.
        let locals: Vec<usize> = (0..n).collect();
        let fits = parallel::par_map(&locals, |&local| -> Result<(LinearFit, f64), CoreError> {
            let others: Vec<usize> = sensors
                .iter()
                .enumerate()
                .filter(|&(l, _)| l != local)
                .map(|(_, &j)| j)
                .collect();
            let x_others = x_sel.select_rows(&others);
            let target = x_sel.select_rows(&[sensors[local]]);
            let fit = lstsq::ols_with_intercept(&x_others, &target)?;
            let rms = fit.rms_residual;
            Ok((fit, rms))
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        let mut signatures = Vec::with_capacity(n);
        for k in 0..n {
            let mut sig = vec![0.0; n];
            sig[k] = 1.0;
            for i in 0..n {
                if i == k {
                    continue;
                }
                // Position of sensor k among sensor i's predictors.
                let pos = (0..n)
                    .filter(|&l| l != i)
                    .position(|l| l == k)
                    .expect("k != i, so k is among i's predictors");
                sig[i] = -fits[i].0.coefficients[(0, pos)];
            }
            let norm = sig.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                sig.iter_mut().for_each(|v| *v /= norm);
            }
            signatures.push(sig);
        }
        Ok(CrossFamily {
            sensors: sensors.to_vec(),
            num_sensors_total: x_sel.rows(),
            fits,
            signatures,
        })
    }

    /// Global sensor positions this family scores, sorted.
    pub fn sensors(&self) -> &[usize] {
        &self.sensors
    }

    /// Training RMS residual of the cross-model for `sensors()[local]`.
    pub fn rms(&self, local: usize) -> f64 {
        self.fits[local].1
    }

    /// Cross-prediction residuals (`reading − predicted-from-peers`) for
    /// every covered sensor, indexed like [`CrossFamily::sensors`].
    /// `readings` is the full Q-vector; entries outside the family are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] on a wrong-length vector.
    pub fn residuals(&self, readings: &[f64]) -> Result<Vec<f64>, CoreError> {
        if readings.len() != self.num_sensors_total {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "expected {} readings, got {}",
                    self.num_sensors_total,
                    readings.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(self.sensors.len());
        for (local, &s) in self.sensors.iter().enumerate() {
            let others: Vec<f64> = self
                .sensors
                .iter()
                .enumerate()
                .filter(|&(l, _)| l != local)
                .map(|(_, &j)| readings[j])
                .collect();
            let pred = self.fits[local].0.predict(&others)?[0];
            out.push(readings[s] - pred);
        }
        Ok(out)
    }

    /// Attributes a residual pattern (as returned by
    /// [`CrossFamily::residuals`]) to the *global* position of the sensor
    /// whose fault signature matches it best, or `None` if nothing
    /// correlates.
    pub fn attribute(&self, residuals: &[f64]) -> Option<usize> {
        if residuals.len() != self.sensors.len() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (k, sig) in self.signatures.iter().enumerate() {
            let dot: f64 = residuals.iter().zip(sig).map(|(r, s)| r * s).sum();
            let score = dot.abs();
            if score.is_finite() && best.is_none_or(|(_, b)| score > b) {
                best = Some((k, score));
            }
        }
        best.map(|(k, _)| self.sensors[k])
    }
}

impl FaultTolerantModel {
    /// Fits the primary model plus the fallback and cross-prediction
    /// families.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VoltageMapModel::fit`]; every auxiliary fit
    /// uses the same training matrices, so it can only add least-squares
    /// failures on degenerate data.
    pub fn fit(x: &Matrix, f: &Matrix, sensors: &[usize]) -> Result<Self, CoreError> {
        let _span = telemetry::span("core.fault_tolerant_fit");
        let primary = VoltageMapModel::fit(x, f, sensors)?;
        let x_sel = x.select_rows(sensors);
        let q = sensors.len();
        let sensor_means: Vec<f64> = (0..q).map(|i| vec_ops::mean(x_sel.row(i))).collect();
        let mut fallbacks = Vec::new();
        let mut cross_families = BTreeMap::new();
        if q > 1 {
            // The Q leave-one-out fallback fits are independent OLS solves
            // on row subsets of the same training data — fan them out and
            // stitch the results back in exclusion order.
            let exclusions: Vec<usize> = (0..q).collect();
            fallbacks = parallel::par_map(&exclusions, |&i| -> Result<LinearFit, CoreError> {
                let others: Vec<usize> = (0..q).filter(|&j| j != i).collect();
                let x_others = x_sel.select_rows(&others);
                Ok(lstsq::ols_with_intercept(&x_others, f)?)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            telemetry::counter("core.fallback_fits", q as u64);
            let all: Vec<usize> = (0..q).collect();
            cross_families.insert(Vec::new(), CrossFamily::fit(&x_sel, &all)?);
        }
        Ok(FaultTolerantModel {
            primary,
            x_sel,
            f_train: f.clone(),
            sensor_means,
            fallbacks,
            cross_families,
            multi_cache: BTreeMap::new(),
        })
    }

    /// The primary (all-sensors) model.
    pub fn primary(&self) -> &VoltageMapModel {
        &self.primary
    }

    /// Number of placed sensors `Q`.
    pub fn num_sensors(&self) -> usize {
        self.primary.num_sensors()
    }

    /// Per-sensor training-mean readings.
    pub fn sensor_means(&self) -> &[f64] {
        &self.sensor_means
    }

    /// The pre-fitted leave-`i`-out fallback, or `None` when `Q == 1`.
    pub fn leave_one_out(&self, i: usize) -> Option<&LinearFit> {
        self.fallbacks.get(i)
    }

    /// Predicts sensor `i`'s reading from the other sensors' entries of
    /// `readings` (the full Q-vector; entry `i` itself is ignored). `None`
    /// when `Q == 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] on a wrong-length vector or an
    /// out-of-range sensor index.
    pub fn cross_predict(&self, i: usize, readings: &[f64]) -> Result<Option<f64>, CoreError> {
        let q = self.num_sensors();
        if readings.len() != q {
            return Err(CoreError::ShapeMismatch {
                what: format!("expected {q} readings, got {}", readings.len()),
            });
        }
        if i >= q {
            return Err(CoreError::ShapeMismatch {
                what: format!("sensor position {i} out of range for {q} sensors"),
            });
        }
        let Some(family) = self.cross_families.get(&Vec::new()) else {
            return Ok(None);
        };
        let residuals = family.residuals(readings)?;
        Ok(Some(readings[i] - residuals[i]))
    }

    /// Training RMS residual of sensor `i`'s cross-prediction model, or
    /// `None` when `Q == 1`.
    pub fn cross_rms(&self, i: usize) -> Option<f64> {
        self.cross_families
            .get(&Vec::new())
            .map(|family| family.rms(i))
    }

    /// The cross-prediction family over the sensors *not* in `excluded`,
    /// fitting and caching it on first use. Returns `None` when fewer than
    /// two sensors survive (mutual prediction needs a peer).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] for an out-of-range excluded
    /// position; propagates least-squares failures on degenerate data.
    pub fn cross_family(&mut self, excluded: &[usize]) -> Result<Option<&CrossFamily>, CoreError> {
        let q = self.num_sensors();
        let mut key: Vec<usize> = excluded.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(&bad) = key.iter().find(|&&i| i >= q) {
            return Err(CoreError::ShapeMismatch {
                what: format!("excluded position {bad} out of range for {q} sensors"),
            });
        }
        if q - key.len() < 2 {
            return Ok(None);
        }
        if !self.cross_families.contains_key(&key) {
            telemetry::counter("core.cross_family_fits", 1);
            let survivors: Vec<usize> = (0..q).filter(|i| !key.contains(i)).collect();
            let family = CrossFamily::fit(&self.x_sel, &survivors)?;
            self.cross_families.insert(key.clone(), family);
        }
        Ok(self.cross_families.get(&key))
    }

    /// Predicts all critical-node voltages from the placed sensors'
    /// readings, ignoring the sensors in `excluded` (positions into the
    /// sensor list, i.e. `0..Q`).
    ///
    /// With an empty exclusion this is exactly the primary model; with one
    /// exclusion it is the pre-fitted leave-one-out fallback; with more it
    /// fits (once) and caches an OLS refit on the surviving sensors.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] on a wrong-length reading vector or
    ///   an out-of-range excluded position.
    /// * [`CoreError::DegradedBeyondRecovery`] when the exclusion leaves no
    ///   surviving sensor.
    pub fn predict_excluding(
        &mut self,
        readings: &[f64],
        excluded: &[usize],
    ) -> Result<Vec<f64>, CoreError> {
        let q = self.num_sensors();
        if readings.len() != q {
            return Err(CoreError::ShapeMismatch {
                what: format!("expected {q} readings, got {}", readings.len()),
            });
        }
        let mut key: Vec<usize> = excluded.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(&bad) = key.iter().find(|&&i| i >= q) {
            return Err(CoreError::ShapeMismatch {
                what: format!("excluded position {bad} out of range for {q} sensors"),
            });
        }
        if key.is_empty() {
            return self.primary.predict_from_sensors(readings);
        }
        if key.len() >= q {
            return Err(CoreError::DegradedBeyondRecovery {
                failed: key.len(),
                allowed: q - 1,
            });
        }
        let survivors: Vec<usize> = (0..q).filter(|i| !key.contains(i)).collect();
        // Excluded entries may legitimately be NaN (a dead sensor); only
        // the surviving readings must be finite.
        if let Some(&bad) = survivors.iter().find(|&&i| !readings[i].is_finite()) {
            return Err(CoreError::NonFiniteReading { sensor: bad });
        }
        let surviving_readings: Vec<f64> = survivors.iter().map(|&i| readings[i]).collect();
        if key.len() == 1 {
            return Ok(self.fallbacks[key[0]].predict(&surviving_readings)?);
        }
        if !self.multi_cache.contains_key(&key) {
            telemetry::counter("core.multi_exclusion_refits", 1);
            let x_surv = self.x_sel.select_rows(&survivors);
            let fit = lstsq::ols_with_intercept(&x_surv, &self.f_train)?;
            self.multi_cache.insert(key.clone(), fit);
        }
        let fit = self.multi_cache.get(&key).expect("inserted above");
        Ok(fit.predict(&surviving_readings)?)
    }
}

/// The paper's Eq. 14 strawman: predict directly from the (normalized,
/// budget-biased) group-lasso coefficients without the OLS refit.
///
/// Exists for the ablation experiment showing why the refit is necessary;
/// production use should go through [`VoltageMapModel`].
#[derive(Debug, Clone)]
pub struct GlDirectModel {
    beta_selected: Matrix,
    selection: SelectionResult,
}

impl GlDirectModel {
    /// Builds the direct model from a selection result.
    pub fn from_selection(selection: SelectionResult) -> Self {
        let beta_selected = selection.beta.select_cols(&selection.selected);
        GlDirectModel {
            beta_selected,
            selection,
        }
    }

    /// Predicts critical-node voltages from a full candidate-voltage
    /// vector using the GL coefficients: normalize the selected readings,
    /// apply `β`, invert the target normalization.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if the vector length differs
    /// from the fitted candidate count.
    pub fn predict_from_candidates(&self, candidates: &[f64]) -> Result<Vec<f64>, CoreError> {
        let z = self.selection.x_normalizer.apply_vec(candidates)?;
        let z_sel: Vec<f64> = self.selection.selected.iter().map(|&m| z[m]).collect();
        let g = self.beta_selected.matvec(&z_sel)?;
        Ok(self.selection.f_normalizer.invert_vec(&g)?)
    }

    /// The selection this model was built from.
    pub fn selection(&self) -> &SelectionResult {
        &self.selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SensorSelector;

    /// f0 = 0.9·x0 + 0.05, f1 = 0.5·x0 + 0.5·x2 (noiseless).
    fn training() -> (Matrix, Matrix) {
        let n = 30;
        let mut x = Matrix::zeros(3, n);
        let mut f = Matrix::zeros(2, n);
        for s in 0..n {
            let t = s as f64;
            let x0 = 0.93 + 0.05 * (t * 0.7).sin();
            let x1 = 0.95 + 0.01 * (t * 2.1).cos();
            let x2 = 0.94 + 0.04 * (t * 1.3).cos();
            x[(0, s)] = x0;
            x[(1, s)] = x1;
            x[(2, s)] = x2;
            f[(0, s)] = 0.9 * x0 + 0.05;
            f[(1, s)] = 0.5 * x0 + 0.5 * x2;
        }
        (x, f)
    }

    #[test]
    fn noiseless_fit_recovers_model() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        assert!(model.rms_residual() < 1e-10);
        let pred = model.predict_from_sensors(&[0.90, 0.95]).unwrap();
        assert!((pred[0] - (0.9 * 0.90 + 0.05)).abs() < 1e-9);
        assert!((pred[1] - (0.5 * 0.90 + 0.5 * 0.95)).abs() < 1e-9);
    }

    #[test]
    fn candidate_and_sensor_paths_agree() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        let full = [0.91, 0.95, 0.93];
        let via_candidates = model.predict_from_candidates(&full).unwrap();
        let via_sensors = model.predict_from_sensors(&[0.91, 0.93]).unwrap();
        assert_eq!(via_candidates, via_sensors);
    }

    #[test]
    fn batch_prediction_matches_single() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        let batch = model.predict_matrix(&x).unwrap();
        for s in [0usize, 7, 19] {
            let single = model.predict_from_candidates(&x.col(s)).unwrap();
            for k in 0..2 {
                assert!((batch[(k, s)] - single[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn detection_thresholds_predictions() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        // Drive candidate 0 low so f0 = 0.9·x0 + 0.05 < 0.85 ⇔ x0 < 0.889.
        assert!(model.detect(&[0.86, 0.95, 0.95], 0.85).unwrap());
        assert!(!model.detect(&[0.95, 0.95, 0.95], 0.85).unwrap());
        let alarms = model.detect_matrix(&x, 0.85).unwrap();
        assert_eq!(alarms.len(), x.cols());
    }

    #[test]
    fn shape_errors() {
        let (x, f) = training();
        assert!(VoltageMapModel::fit(&x, &f, &[]).is_err());
        assert!(VoltageMapModel::fit(&x, &f, &[7]).is_err());
        let f_bad = Matrix::zeros(2, 5);
        assert!(VoltageMapModel::fit(&x, &f_bad, &[0]).is_err());
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        assert!(model.predict_from_sensors(&[1.0]).is_err());
        assert!(model.predict_from_candidates(&[1.0]).is_err());
        assert!(model.predict_matrix(&Matrix::zeros(5, 4)).is_err());
    }

    #[test]
    fn non_finite_readings_rejected_with_typed_error() {
        let (x, f) = training();
        let model = VoltageMapModel::fit(&x, &f, &[0, 2]).unwrap();
        assert!(matches!(
            model.predict_from_sensors(&[0.9, f64::NAN]),
            Err(CoreError::NonFiniteReading { sensor: 1 })
        ));
        assert!(matches!(
            model.predict_from_candidates(&[f64::INFINITY, 0.9, 0.9]),
            Err(CoreError::NonFiniteReading { sensor: 0 })
        ));
        // A surviving NaN is rejected even on the fallback path.
        let mut ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        assert!(matches!(
            ft.predict_excluding(&[0.9, f64::NAN, 0.9], &[2]),
            Err(CoreError::NonFiniteReading { sensor: 1 })
        ));
    }

    #[test]
    fn fault_tolerant_with_no_exclusions_matches_primary() {
        let (x, f) = training();
        let mut ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        let readings = [0.91, 0.95, 0.93];
        let primary = ft.primary().predict_from_sensors(&readings).unwrap();
        let via_ft = ft.predict_excluding(&readings, &[]).unwrap();
        assert_eq!(primary, via_ft);
    }

    #[test]
    fn excluding_sensor_i_is_exactly_the_leave_i_out_model() {
        let (x, f) = training();
        let mut ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        let readings = [0.91, 0.95, 0.93];
        for i in 0..3 {
            let survivors: Vec<f64> = (0..3).filter(|&j| j != i).map(|j| readings[j]).collect();
            let direct = ft.leave_one_out(i).unwrap().predict(&survivors).unwrap();
            let via_excl = ft.predict_excluding(&readings, &[i]).unwrap();
            assert_eq!(direct, via_excl, "sensor {i}");
        }
    }

    #[test]
    fn fallback_recovers_targets_the_survivors_can_express() {
        // f0 depends only on x0; losing sensor 2 must not hurt f0 at all.
        let (x, f) = training();
        let mut ft = FaultTolerantModel::fit(&x, &f, &[0, 2]).unwrap();
        let truth = 0.9 * 0.90 + 0.05;
        let degraded = ft.predict_excluding(&[0.90, f64::NAN], &[1]).unwrap();
        assert!((degraded[0] - truth).abs() < 1e-9, "got {}", degraded[0]);
    }

    #[test]
    fn multi_failure_refit_is_cached_and_consistent() {
        let (x, f) = training();
        let mut ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        let readings = [0.91, 0.95, 0.93];
        let a = ft.predict_excluding(&readings, &[1, 2]).unwrap();
        let b = ft.predict_excluding(&readings, &[2, 1]).unwrap();
        assert_eq!(a, b);
        // The cached refit equals a from-scratch OLS on the survivor row.
        let x_surv = x.select_rows(&[0]);
        let direct = lstsq::ols_with_intercept(&x_surv, &f)
            .unwrap()
            .predict(&[readings[0]])
            .unwrap();
        for (got, want) in a.iter().zip(&direct) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_prediction_tracks_healthy_sensors() {
        // Sensors 0 and 2 are driven by smooth signals; the cross fit on
        // noiseless training data predicts each from the others closely.
        let (x, f) = training();
        let ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        for s in [0usize, 7, 19] {
            let readings: Vec<f64> = (0..3).map(|i| x[(i, s)]).collect();
            for i in 0..3 {
                let pred = ft.cross_predict(i, &readings).unwrap().unwrap();
                let rms = ft.cross_rms(i).unwrap();
                assert!(
                    (pred - readings[i]).abs() <= 6.0 * rms + 1e-6,
                    "sensor {i} sample {s}: pred {pred} vs {}",
                    readings[i]
                );
            }
        }
    }

    #[test]
    fn single_sensor_model_has_no_fallbacks() {
        let (x, f) = training();
        let mut ft = FaultTolerantModel::fit(&x, &f, &[0]).unwrap();
        assert!(ft.leave_one_out(0).is_none());
        assert!(ft.cross_predict(0, &[0.9]).unwrap().is_none());
        assert!(ft.cross_rms(0).is_none());
        assert!(matches!(
            ft.predict_excluding(&[0.9], &[0]),
            Err(CoreError::DegradedBeyondRecovery { .. })
        ));
    }

    #[test]
    fn fault_tolerant_shape_errors() {
        let (x, f) = training();
        let mut ft = FaultTolerantModel::fit(&x, &f, &[0, 2]).unwrap();
        assert!(ft.predict_excluding(&[0.9], &[]).is_err());
        assert!(ft.predict_excluding(&[0.9, 0.9], &[5]).is_err());
        assert!(ft.cross_predict(0, &[0.9]).is_err());
        assert!(ft.cross_predict(9, &[0.9, 0.9]).is_err());
    }

    #[test]
    fn gl_direct_model_is_biased_towards_zero_droop() {
        // The constrained GL shrinks coefficients, so the direct model
        // under-reacts to droops compared with the OLS refit — exactly the
        // argument of the paper's Section 2.3 example.
        let (x, f) = training();
        let selector = SensorSelector::new(0.8, 1e-3).unwrap();
        let selection = selector.select(&x, &f).unwrap();
        let refit = VoltageMapModel::fit(&x, &f, &selection.selected).unwrap();
        let direct = GlDirectModel::from_selection(selection);

        // A deep droop on the informative candidates.
        let sample = [0.80, 0.95, 0.82];
        let refit_pred = refit.predict_from_candidates(&sample).unwrap();
        let direct_pred = direct.predict_from_candidates(&sample).unwrap();
        // The direct model predicts milder droops (higher voltage).
        assert!(
            direct_pred[0] > refit_pred[0],
            "direct {direct_pred:?} vs refit {refit_pred:?}"
        );
    }

    #[test]
    fn gl_direct_prediction_shape_checked() {
        let (x, f) = training();
        let selection = SensorSelector::new(0.8, 1e-3)
            .unwrap()
            .select(&x, &f)
            .unwrap();
        let direct = GlDirectModel::from_selection(selection);
        assert!(direct.predict_from_candidates(&[1.0]).is_err());
    }
}
