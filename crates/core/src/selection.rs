use voltsense_grouplasso::{GlOptions, GlProblem, HomotopySolver};
use voltsense_linalg::stats::Normalizer;
use voltsense_linalg::Matrix;

use crate::CoreError;

/// Result of the group-lasso sensor-selection step (paper Steps 3–5).
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Indices of the selected sensors (ascending, into the candidate
    /// rows of `X`).
    pub selected: Vec<usize>,
    /// Group norms `‖β_m‖₂` of every candidate — the quantities plotted in
    /// the paper's Fig. 1.
    pub group_norms: Vec<f64>,
    /// The normalized GL coefficient matrix `β` (`K x M`).
    pub beta: Matrix,
    /// The penalty `μ(λ)` the constrained solve landed on.
    pub mu: f64,
    /// Budget `Σ‖β_m‖₂` actually consumed (≤ λ).
    pub budget_used: f64,
    /// The candidate normalizer (needed to evaluate β on new data).
    pub x_normalizer: Normalizer,
    /// The target normalizer.
    pub f_normalizer: Normalizer,
}

impl SelectionResult {
    /// Number of selected sensors `Q`.
    pub fn num_selected(&self) -> usize {
        self.selected.len()
    }
}

/// Sensor selection via the constrained multi-task group lasso
/// (paper Section 2.2).
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::SensorSelector;
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// let x = Matrix::from_rows(&[
///     &[0.99, 0.84, 0.93, 0.88, 0.97, 0.86],
///     &[0.96, 0.95, 0.97, 0.96, 0.95, 0.96],
/// ])?;
/// let f = Matrix::from_rows(&[&[0.98, 0.82, 0.91, 0.86, 0.96, 0.84]])?;
/// let selector = SensorSelector::new(1.0, 1e-3)?;
/// let result = selector.select(&x, &f)?;
/// assert!(result.selected.contains(&0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SensorSelector {
    lambda: f64,
    threshold: f64,
    options: GlOptions,
}

impl SensorSelector {
    /// Creates a selector with budget `lambda` (the paper's λ) and
    /// selection threshold `threshold` (the paper's T, `1e-3` in its
    /// experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for non-positive λ or negative
    /// T.
    pub fn new(lambda: f64, threshold: f64) -> Result<Self, CoreError> {
        Self::with_options(lambda, threshold, GlOptions::default())
    }

    /// As [`SensorSelector::new`] with custom solver options.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-range parameters.
    pub fn with_options(
        lambda: f64,
        threshold: f64,
        options: GlOptions,
    ) -> Result<Self, CoreError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!("lambda must be finite and > 0, got {lambda}"),
            });
        }
        if !(threshold >= 0.0) || !threshold.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!("threshold must be finite and >= 0, got {threshold}"),
            });
        }
        Ok(SensorSelector {
            lambda,
            threshold,
            options,
        })
    }

    /// Budget λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Selection threshold T.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Runs Steps 3–5: normalize, solve the constrained GL, threshold the
    /// group norms.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] if `x` and `f` disagree on samples.
    /// * [`CoreError::NoSensorsSelected`] if no group norm exceeds T.
    /// * Propagates solver failures.
    pub fn select(&self, x: &Matrix, f: &Matrix) -> Result<SelectionResult, CoreError> {
        let prepared = SelectionProblem::new(x, f)?;
        prepared.select_constrained(self.lambda, self.threshold, &self.options)
    }
}

/// A prepared selection problem: the normalized covariance form of
/// `(X, F)`, built once and reusable across many budgets.
///
/// The covariance reduction (`O(M²N + KMN)`) dominates a single selection,
/// so sweeps over λ or sensor counts should go through this type rather
/// than calling [`SensorSelector::select`] repeatedly.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::SelectionProblem;
/// use voltsense_grouplasso::GlOptions;
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// let x = Matrix::from_rows(&[
///     &[0.99, 0.84, 0.93, 0.88, 0.97, 0.86],
///     &[0.96, 0.95, 0.97, 0.96, 0.95, 0.96],
/// ])?;
/// let f = Matrix::from_rows(&[&[0.98, 0.82, 0.91, 0.86, 0.96, 0.84]])?;
/// let prepared = SelectionProblem::new(&x, &f)?;
/// let one = prepared.select_with_count(1, 1e-3, &GlOptions::default())?;
/// assert_eq!(one.num_selected(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SelectionProblem {
    problem: GlProblem,
    x_normalizer: Normalizer,
    f_normalizer: Normalizer,
}

impl SelectionProblem {
    /// Normalizes the data and reduces it to covariance form (Steps 3 and
    /// the expensive half of Step 4).
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] if `x` and `f` disagree on samples.
    /// * Propagates problem-construction failures (non-finite data, …).
    pub fn new(x: &Matrix, f: &Matrix) -> Result<Self, CoreError> {
        if x.cols() != f.cols() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "X has {} samples, F has {} — they must match",
                    x.cols(),
                    f.cols()
                ),
            });
        }
        let x_normalizer = Normalizer::fit(x);
        let f_normalizer = Normalizer::fit(f);
        let z = x_normalizer.apply(x)?;
        let g = f_normalizer.apply(f)?;
        let problem = GlProblem::from_data(&z, &g)?;
        Ok(SelectionProblem {
            problem,
            x_normalizer,
            f_normalizer,
        })
    }

    /// Number of candidates `M`.
    pub fn num_candidates(&self) -> usize {
        self.problem.num_candidates()
    }

    /// Starts a warm-started sweep over this problem: the returned
    /// [`SelectionHomotopy`] chains β, the active set and the
    /// budget-bisection probe history across every selection it performs,
    /// which is how λ sweeps and per-core Q bisections should run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid solver options.
    pub fn homotopy(&self, options: GlOptions) -> Result<SelectionHomotopy<'_>, CoreError> {
        let solver = HomotopySolver::new(&self.problem, options)
            .map_err(|e| CoreError::InvalidConfig {
                what: format!("bad solver options: {e}"),
            })?;
        Ok(SelectionHomotopy {
            prepared: self,
            solver,
        })
    }

    /// Selects sensors under a budget λ (Steps 4–5).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoSensorsSelected`] if nothing passes the threshold;
    /// propagates solver failures.
    pub fn select_constrained(
        &self,
        lambda: f64,
        threshold: f64,
        options: &GlOptions,
    ) -> Result<SelectionResult, CoreError> {
        self.homotopy(options.clone())?
            .select_constrained(lambda, threshold)
    }

    /// Selects (approximately) `q` sensors by bisecting the penalty μ —
    /// the count `Q(μ)` is monotone non-increasing, so this needs one
    /// warm-started bisection rather than nested budget searches.
    ///
    /// Returns the closest achievable count if the selection path jumps
    /// over `q`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for `q` out of `1..=M`;
    /// [`CoreError::NoSensorsSelected`] if even the loosest penalty
    /// selects nothing; propagates solver failures.
    pub fn select_with_count(
        &self,
        q: usize,
        threshold: f64,
        options: &GlOptions,
    ) -> Result<SelectionResult, CoreError> {
        self.homotopy(options.clone())?.select_with_count(q, threshold)
    }

    pub(crate) fn finish(
        &self,
        beta: Matrix,
        mu: f64,
        budget_used: f64,
        lambda: f64,
        threshold: f64,
    ) -> Result<SelectionResult, CoreError> {
        let group_norms: Vec<f64> = (0..beta.cols())
            .map(|m| {
                (0..beta.rows())
                    .map(|k| beta[(k, m)] * beta[(k, m)])
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        let selected: Vec<usize> = group_norms
            .iter()
            .enumerate()
            .filter(|&(_, n)| *n > threshold)
            .map(|(m, _)| m)
            .collect();
        if selected.is_empty() {
            return Err(CoreError::NoSensorsSelected { lambda, threshold });
        }
        Ok(SelectionResult {
            selected,
            group_norms,
            beta,
            mu,
            budget_used,
            x_normalizer: self.x_normalizer.clone(),
            f_normalizer: self.f_normalizer.clone(),
        })
    }
}

/// A warm-started selection sweep over one prepared problem.
///
/// Every selection this handle performs — whether budget-constrained or
/// count-targeted — shares the underlying [`HomotopySolver`]'s coefficient
/// warm start, active set and `(μ, budget)` probe history, so a λ sweep or
/// a Q bisection costs a fraction of independent cold selections.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::SelectionProblem;
/// use voltsense_grouplasso::GlOptions;
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// let x = Matrix::from_rows(&[
///     &[0.99, 0.84, 0.93, 0.88, 0.97, 0.86],
///     &[0.96, 0.95, 0.97, 0.96, 0.95, 0.96],
/// ])?;
/// let f = Matrix::from_rows(&[&[0.98, 0.82, 0.91, 0.86, 0.96, 0.84]])?;
/// let prepared = SelectionProblem::new(&x, &f)?;
/// let mut sweep = prepared.homotopy(GlOptions::default())?;
/// for lambda in [0.5, 1.0, 2.0] {
///     let result = sweep.select_constrained(lambda, 1e-3)?;
///     assert!(result.budget_used <= lambda + 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SelectionHomotopy<'a> {
    prepared: &'a SelectionProblem,
    solver: HomotopySolver<'a>,
}

impl SelectionHomotopy<'_> {
    /// Number of penalized GL solves performed so far across all
    /// selections on this handle.
    pub fn num_solves(&self) -> usize {
        self.solver.num_solves()
    }

    /// Selects sensors under a budget λ, warm-started from everything this
    /// handle solved before.
    ///
    /// # Errors
    ///
    /// Same as [`SelectionProblem::select_constrained`].
    pub fn select_constrained(
        &mut self,
        lambda: f64,
        threshold: f64,
    ) -> Result<SelectionResult, CoreError> {
        let solution = self.solver.solve_constrained(lambda)?;
        self.prepared.finish(
            solution.solution.beta,
            solution.mu,
            solution.budget_used,
            lambda,
            threshold,
        )
    }

    /// Selects (approximately) `q` sensors by bisecting the penalty μ,
    /// sharing the warm chain with every other selection on this handle.
    ///
    /// # Errors
    ///
    /// Same as [`SelectionProblem::select_with_count`].
    pub fn select_with_count(
        &mut self,
        q: usize,
        threshold: f64,
    ) -> Result<SelectionResult, CoreError> {
        let m_count = self.prepared.num_candidates();
        if q == 0 || q > m_count {
            return Err(CoreError::InvalidConfig {
                what: format!("target sensor count {q} out of range (1..={m_count})"),
            });
        }
        let mu_max = self.prepared.problem.mu_max();
        if mu_max == 0.0 {
            return Err(CoreError::NoSensorsSelected {
                lambda: 0.0,
                threshold,
            });
        }
        let mut lo = 0.0_f64; // count(lo) >= q by convention (never solved)
        let mut hi = mu_max; // count(mu_max) = 0
        let mut best: Option<voltsense_grouplasso::GlSolution> = None;
        let count_of = |sol: &voltsense_grouplasso::GlSolution| sol.selected(threshold).len();
        for _ in 0..self.solver.options().max_bisections {
            let mid = 0.5 * (lo + hi);
            let sol = self.solver.solve(mid)?;
            let n = count_of(&sol);
            let better = n > 0
                && match &best {
                    Some(b) => {
                        let cur = count_of(b);
                        (n as i64 - q as i64).abs() < (cur as i64 - q as i64).abs()
                            || ((n as i64 - q as i64).abs() == (cur as i64 - q as i64).abs()
                                && n <= q
                                && cur > q)
                    }
                    None => true,
                };
            if better {
                best = Some(sol.clone());
            }
            match n.cmp(&q) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Greater => lo = mid,
                std::cmp::Ordering::Less => hi = mid,
            }
            if hi - lo <= 1e-9 * mu_max {
                break;
            }
        }
        let solution = best.ok_or(CoreError::NoSensorsSelected {
            lambda: f64::INFINITY,
            threshold,
        })?;
        let budget = solution.budget();
        let mu = solution.mu;
        self.prepared.finish(solution.beta, mu, budget, budget, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 candidates / 2 targets: target 0 follows candidate 0, target 1
    /// follows candidate 2; candidates 1, 3 are weakly-informative noise.
    fn training() -> (Matrix, Matrix) {
        let n = 40;
        let mut x = Matrix::zeros(4, n);
        let mut f = Matrix::zeros(2, n);
        for s in 0..n {
            let t = s as f64;
            let sig0 = 0.93 + 0.05 * (t * 0.7).sin();
            let sig1 = 0.94 + 0.04 * (t * 1.3).cos();
            x[(0, s)] = sig0 + 0.001 * (t * 3.1).sin();
            x[(1, s)] = 0.96 + 0.002 * (t * 2.3).sin();
            x[(2, s)] = sig1 + 0.001 * (t * 4.7).cos();
            x[(3, s)] = 0.95 + 0.002 * (t * 1.9).cos();
            f[(0, s)] = sig0 - 0.02;
            f[(1, s)] = sig1 - 0.02;
        }
        (x, f)
    }

    #[test]
    fn selects_the_informative_candidates() {
        let (x, f) = training();
        let sel = SensorSelector::new(1.5, 1e-3).unwrap();
        let result = sel.select(&x, &f).unwrap();
        assert!(result.selected.contains(&0));
        assert!(result.selected.contains(&2));
    }

    #[test]
    fn group_norms_separate_selected_from_rest() {
        let (x, f) = training();
        let sel = SensorSelector::new(1.5, 1e-3).unwrap();
        let result = sel.select(&x, &f).unwrap();
        let min_selected = result
            .selected
            .iter()
            .map(|&m| result.group_norms[m])
            .fold(f64::INFINITY, f64::min);
        for (m, &n) in result.group_norms.iter().enumerate() {
            if !result.selected.contains(&m) {
                assert!(n <= 1e-3);
                assert!(min_selected > n);
            }
        }
    }

    #[test]
    fn smaller_lambda_selects_fewer() {
        let (x, f) = training();
        let small = SensorSelector::new(0.4, 1e-3)
            .unwrap()
            .select(&x, &f)
            .unwrap();
        let large = SensorSelector::new(3.0, 1e-3)
            .unwrap()
            .select(&x, &f)
            .unwrap();
        assert!(small.num_selected() <= large.num_selected());
    }

    #[test]
    fn budget_respected() {
        let (x, f) = training();
        let sel = SensorSelector::new(1.0, 1e-3).unwrap();
        let result = sel.select(&x, &f).unwrap();
        assert!(result.budget_used <= 1.0 + 1e-6);
        assert!(result.mu > 0.0);
    }

    #[test]
    fn tiny_threshold_tolerated_huge_threshold_errors() {
        let (x, f) = training();
        let ok = SensorSelector::new(1.0, 0.0).unwrap().select(&x, &f);
        assert!(ok.is_ok());
        let none = SensorSelector::new(1.0, 1e9).unwrap().select(&x, &f);
        assert!(matches!(none, Err(CoreError::NoSensorsSelected { .. })));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SensorSelector::new(0.0, 1e-3).is_err());
        assert!(SensorSelector::new(-1.0, 1e-3).is_err());
        assert!(SensorSelector::new(1.0, -1e-3).is_err());
        assert!(SensorSelector::new(f64::NAN, 1e-3).is_err());
    }

    #[test]
    fn sample_mismatch_rejected() {
        let (x, _) = training();
        let f_bad = Matrix::zeros(2, 3);
        let sel = SensorSelector::new(1.0, 1e-3).unwrap();
        assert!(matches!(
            sel.select(&x, &f_bad),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }
}
