//! Stateful runtime monitoring: the deployment wrapper around the fitted
//! prediction model.
//!
//! The paper evaluates per-sample detection; a real noise-management loop
//! (throttling, clock stretching — its references [6, 10–12]) adds two
//! operational details this module provides:
//!
//! * **persistence (debounce)** — require `persistence` consecutive
//!   threshold crossings before asserting, filtering single-sample blips
//!   that a hardware actuator could never react to anyway;
//! * **hysteresis** — once asserted, release only after the predicted
//!   worst voltage recovers above `threshold + release_margin`, avoiding
//!   alarm chatter around the margin.
//!
//! A monitor built with [`EmergencyMonitor::fault_tolerant`] additionally
//! defends the prediction against sensor faults (see DESIGN.md, "Fault
//! model & degradation policy"):
//!
//! * **plausibility gating** — a reading that is non-finite or outside the
//!   configured rail bounds is excluded from this sample's prediction
//!   immediately (the matching fallback model takes over) and counts one
//!   strike against the sensor;
//! * **cross-prediction health scoring** — each sensor is predicted from
//!   the other `Q − 1`; per sample, the single worst violator of its
//!   residual threshold gains a strike, every other plausible sensor's
//!   strike counter resets;
//! * **graceful degradation** — a sensor whose strikes reach
//!   `health_persistence` is permanently failed and the pre-fitted
//!   leave-one-out (or lazily fitted multi-failure) fallback model is
//!   hot-swapped in; once more than `max_failed_sensors` are lost,
//!   [`CoreError::DegradedBeyondRecovery`] is returned.

use voltsense_telemetry as telemetry;

use crate::predict::{FaultTolerantModel, VoltageMapModel};
use crate::CoreError;

/// Per-sample view of sensor health from a fault-tolerant monitor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SensorHealth {
    /// Positions (into the sensor list) permanently failed so far, sorted.
    pub failed: Vec<usize>,
    /// Positions gated out of *this* sample by plausibility checks
    /// (excludes already-failed sensors), sorted.
    pub gated: Vec<usize>,
}

impl SensorHealth {
    /// `true` when this sample's prediction used a fallback model.
    pub fn degraded(&self) -> bool {
        !self.failed.is_empty() || !self.gated.is_empty()
    }
}

/// One monitoring decision.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorDecision {
    /// Predicted worst critical-node voltage this sample (V).
    pub predicted_min: f64,
    /// Index of the block (row of `F`) predicted worst.
    pub worst_block: usize,
    /// Whether the alarm output is asserted after debounce/hysteresis.
    pub alarm: bool,
    /// `true` on the sample where the alarm transitions 0 → 1.
    pub rising_edge: bool,
    /// Sensor health this sample; `None` for a naive (non-fault-tolerant)
    /// monitor.
    pub health: Option<SensorHealth>,
}

/// Counters accumulated over a monitoring session.
///
/// Every counter is also exported as a `monitor.*` telemetry gauge on
/// **every** `observe()` call (when a recorder is active), so a live
/// `/metrics` scrape mid-run reflects current state rather than only the
/// episode-end totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorStats {
    /// Samples observed.
    pub samples: u64,
    /// Samples with the alarm asserted.
    pub alarmed_samples: u64,
    /// Number of distinct alarm events (rising edges).
    pub alarm_events: u64,
    /// Readings excluded by plausibility gating (fault-tolerant monitors).
    pub gated_readings: u64,
    /// Sensors permanently failed so far (fault-tolerant monitors).
    pub sensors_failed: u64,
    /// Health strikes issued (gate strikes + attributed-culprit strikes).
    pub health_strikes: u64,
    /// Fallback-model hot swaps performed (one per newly failed sensor).
    pub hot_swaps: u64,
}

impl MonitorStats {
    /// Publish every counter as a `monitor.*` gauge.
    fn export_gauges(&self) {
        telemetry::gauge("monitor.samples", self.samples as f64);
        telemetry::gauge("monitor.alarmed_samples", self.alarmed_samples as f64);
        telemetry::gauge("monitor.alarm_events", self.alarm_events as f64);
        telemetry::gauge("monitor.gated_readings", self.gated_readings as f64);
        telemetry::gauge("monitor.sensors_failed", self.sensors_failed as f64);
        telemetry::gauge("monitor.health_strikes", self.health_strikes as f64);
        telemetry::gauge("monitor.hot_swaps", self.hot_swaps as f64);
    }
}

/// Serializable snapshot of an [`EmergencyMonitor`]'s alarm state machine.
///
/// Captures everything `observe()` mutates — debounce depth, hysteresis
/// latch, and session counters — but *not* the model (serialize that
/// separately via [`VoltageMapModel::linear_fit`] /
/// [`VoltageMapModel::from_parts`]) and not the fault-tolerance layer
/// (cross-prediction health state is rebuilt from fresh observations after
/// a restart). Produced by [`EmergencyMonitor::checkpoint`], consumed by
/// [`EmergencyMonitor::restore`]; the `voltsense-fleet` crate persists it
/// as JSON so a restarted server resumes alarms without a refit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorCheckpoint {
    /// Alarm threshold (V).
    pub threshold: f64,
    /// Debounce depth in samples.
    pub persistence: usize,
    /// Hysteresis release margin (V).
    pub release_margin: f64,
    /// Consecutive sub-threshold samples seen so far.
    pub consecutive: usize,
    /// Whether the alarm output is currently asserted (latched).
    pub asserted: bool,
    /// Accumulated session counters.
    pub stats: MonitorStats,
}

/// Configuration of the fault-tolerance layer.
///
/// The residual threshold for sensor `i` is
/// `max(residual_sigmas × cross_rms(i), min_residual)`: proportional to how
/// well the training data says sensor `i` is predictable from the others,
/// floored because noiseless training can drive `cross_rms` to ~0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Lowest plausible reading (V); anything below is gated.
    pub rail_min: f64,
    /// Highest plausible reading (V); anything above is gated.
    pub rail_max: f64,
    /// Residual threshold in multiples of the cross-prediction training
    /// RMS.
    pub residual_sigmas: f64,
    /// Absolute floor on the residual threshold (V).
    pub min_residual: f64,
    /// Consecutive strikes before a sensor is permanently failed.
    pub health_persistence: usize,
    /// Most sensors the monitor may lose before
    /// [`CoreError::DegradedBeyondRecovery`]; clamped to `Q − 1`.
    pub max_failed_sensors: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            rail_min: 0.0,
            rail_max: 1.5,
            residual_sigmas: 6.0,
            min_residual: 0.005,
            health_persistence: 3,
            max_failed_sensors: usize::MAX,
        }
    }
}

impl FaultPolicy {
    fn validate(&self) -> Result<(), CoreError> {
        if !(self.rail_min.is_finite() && self.rail_max.is_finite() && self.rail_min < self.rail_max)
        {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "rail bounds must be finite with min < max, got [{}, {}]",
                    self.rail_min, self.rail_max
                ),
            });
        }
        if !(self.residual_sigmas > 0.0) || !self.residual_sigmas.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "residual_sigmas must be finite and > 0, got {}",
                    self.residual_sigmas
                ),
            });
        }
        if !(self.min_residual >= 0.0) || !self.min_residual.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "min_residual must be finite and >= 0, got {}",
                    self.min_residual
                ),
            });
        }
        if self.health_persistence == 0 {
            return Err(CoreError::InvalidConfig {
                what: "health_persistence must be at least 1 sample".into(),
            });
        }
        Ok(())
    }
}

/// State of the fault-tolerance layer inside a monitor.
#[derive(Debug, Clone)]
struct FaultState {
    model: FaultTolerantModel,
    policy: FaultPolicy,
    /// Per-sensor consecutive strike counters.
    strikes: Vec<usize>,
    /// Per-sensor permanent failure flags.
    failed: Vec<bool>,
}

/// A stateful emergency monitor around a fitted [`VoltageMapModel`].
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::{VoltageMapModel, monitor::EmergencyMonitor};
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// let x = Matrix::from_rows(&[&[0.99, 0.84, 0.93, 0.88]])?;
/// let f = Matrix::from_rows(&[&[0.98, 0.82, 0.91, 0.86]])?;
/// let model = VoltageMapModel::fit(&x, &f, &[0])?;
/// // Alarm immediately (persistence 1), release 10 mV above threshold.
/// let mut monitor = EmergencyMonitor::new(model, 0.85, 1, 0.010)?;
/// let decision = monitor.observe(&[0.83])?;
/// assert!(decision.alarm && decision.rising_edge);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EmergencyMonitor {
    model: VoltageMapModel,
    threshold: f64,
    persistence: usize,
    release_margin: f64,
    consecutive: usize,
    asserted: bool,
    stats: MonitorStats,
    fault: Option<FaultState>,
    /// Prediction scratch (length `K`) so the naive per-reading path stays
    /// allocation-free at steady state (pinned by the fleet `alloc_gate`).
    scratch: Vec<f64>,
}

impl EmergencyMonitor {
    /// Creates a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `threshold` is not positive
    /// and finite, `persistence` is zero, or `release_margin` is negative.
    pub fn new(
        model: VoltageMapModel,
        threshold: f64,
        persistence: usize,
        release_margin: f64,
    ) -> Result<Self, CoreError> {
        if !(threshold > 0.0) || !threshold.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!("threshold must be finite and > 0, got {threshold}"),
            });
        }
        if persistence == 0 {
            return Err(CoreError::InvalidConfig {
                what: "persistence must be at least 1 sample".into(),
            });
        }
        if !(release_margin >= 0.0) || !release_margin.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!("release margin must be finite and >= 0, got {release_margin}"),
            });
        }
        let scratch = vec![0.0; model.num_targets()];
        Ok(EmergencyMonitor {
            model,
            threshold,
            persistence,
            release_margin,
            consecutive: 0,
            asserted: false,
            stats: MonitorStats::default(),
            fault: None,
            scratch,
        })
    }

    /// Creates a fault-tolerant monitor: readings are plausibility-gated,
    /// sensor health is scored by cross-prediction, and predictions
    /// hot-swap to the matching fallback model as sensors fail.
    ///
    /// # Errors
    ///
    /// Same configuration conditions as [`EmergencyMonitor::new`], plus
    /// [`CoreError::InvalidConfig`] for an out-of-range [`FaultPolicy`].
    pub fn fault_tolerant(
        model: FaultTolerantModel,
        threshold: f64,
        persistence: usize,
        release_margin: f64,
        policy: FaultPolicy,
    ) -> Result<Self, CoreError> {
        policy.validate()?;
        let q = model.num_sensors();
        let mut monitor =
            EmergencyMonitor::new(model.primary().clone(), threshold, persistence, release_margin)?;
        monitor.fault = Some(FaultState {
            model,
            policy,
            strikes: vec![0; q],
            failed: vec![false; q],
        });
        Ok(monitor)
    }

    /// Restores a monitor from a checkpointed state machine and a
    /// reconstructed model: the monitor picks up exactly where
    /// [`EmergencyMonitor::checkpoint`] froze it — a latched alarm stays
    /// latched, debounce progress is preserved, counters continue.
    ///
    /// # Errors
    ///
    /// Same configuration conditions as [`EmergencyMonitor::new`] (the
    /// checkpointed configuration is re-validated, so a hand-edited
    /// checkpoint cannot smuggle in an invalid monitor). `consecutive` is
    /// clamped to `persistence` — larger values cannot occur in a monitor
    /// that produced the checkpoint.
    pub fn restore(
        model: VoltageMapModel,
        checkpoint: &MonitorCheckpoint,
    ) -> Result<Self, CoreError> {
        let mut monitor = EmergencyMonitor::new(
            model,
            checkpoint.threshold,
            checkpoint.persistence,
            checkpoint.release_margin,
        )?;
        monitor.consecutive = checkpoint.consecutive.min(checkpoint.persistence);
        monitor.asserted = checkpoint.asserted;
        monitor.stats = checkpoint.stats;
        Ok(monitor)
    }

    /// Snapshots the alarm state machine for crash-safe persistence. See
    /// [`MonitorCheckpoint`] for what is (and is not) captured.
    pub fn checkpoint(&self) -> MonitorCheckpoint {
        MonitorCheckpoint {
            threshold: self.threshold,
            persistence: self.persistence,
            release_margin: self.release_margin,
            consecutive: self.consecutive,
            asserted: self.asserted,
            stats: self.stats,
        }
    }

    /// The wrapped prediction model.
    pub fn model(&self) -> &VoltageMapModel {
        &self.model
    }

    /// `true` when the monitor carries the fault-tolerance layer.
    pub fn is_fault_tolerant(&self) -> bool {
        self.fault.is_some()
    }

    /// Positions of permanently failed sensors (empty for naive monitors).
    pub fn failed_sensors(&self) -> Vec<usize> {
        self.fault
            .as_ref()
            .map(|s| {
                s.failed
                    .iter()
                    .enumerate()
                    .filter(|&(_, &f)| f)
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Accumulated session counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// `true` while the alarm output is asserted.
    pub fn is_alarmed(&self) -> bool {
        self.asserted
    }

    /// Resets the debounce/hysteresis state, counters, and any sensor
    /// health state.
    pub fn reset(&mut self) {
        self.consecutive = 0;
        self.asserted = false;
        self.stats = MonitorStats::default();
        if let Some(state) = self.fault.as_mut() {
            state.strikes.iter_mut().for_each(|s| *s = 0);
            state.failed.iter_mut().for_each(|f| *f = false);
        }
    }

    /// Feeds one sample of placed-sensor readings (`Q` values) and returns
    /// the monitoring decision.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] if the reading count differs from the
    ///   model's sensor count.
    /// * [`CoreError::NonFiniteReading`] (naive monitors only) for a NaN or
    ///   infinite reading — rejected *before* any state change, so a
    ///   corrupted sample cannot assert or de-assert the alarm. A
    ///   fault-tolerant monitor gates such readings instead.
    /// * [`CoreError::DegradedBeyondRecovery`] (fault-tolerant monitors)
    ///   once more sensors are unusable than the policy tolerates.
    pub fn observe(&mut self, sensor_readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        if self.fault.is_some() {
            self.observe_fault_aware(sensor_readings)
        } else {
            self.observe_naive(sensor_readings)
        }
    }

    fn observe_naive(&mut self, sensor_readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        if let Some(bad) = sensor_readings.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteReading { sensor: bad });
        }
        // Grows only if the model was hot-swapped to a larger `K`; a no-op
        // (and allocation-free) at steady state.
        self.scratch.resize(self.model.num_targets(), 0.0);
        self.model.predict_into(sensor_readings, &mut self.scratch)?;
        let (worst_block, predicted_min) = worst_prediction(&self.scratch);
        Ok(self.resolve_alarm(predicted_min, worst_block, None))
    }

    fn observe_fault_aware(
        &mut self,
        sensor_readings: &[f64],
    ) -> Result<MonitorDecision, CoreError> {
        let state = self.fault.as_mut().expect("caller checked fault layer");
        let q = state.model.num_sensors();
        if sensor_readings.len() != q {
            return Err(CoreError::ShapeMismatch {
                what: format!("expected {q} sensor readings, got {}", sensor_readings.len()),
            });
        }

        // 1. Plausibility gate: non-finite or out-of-rail readings are
        //    excluded from this sample and strike their sensor.
        let mut gated: Vec<usize> = Vec::new();
        for (i, &v) in sensor_readings.iter().enumerate() {
            if state.failed[i] {
                continue;
            }
            if !v.is_finite() || v < state.policy.rail_min || v > state.policy.rail_max {
                gated.push(i);
            }
        }

        // 2. Cross-prediction residual scoring among the remaining
        //    sensors, using a family fitted over exactly the survivors so
        //    a dead sensor's reading never enters anyone's cross-model. A
        //    faulty sensor inflates its healthy peers' residuals too (by
        //    their cross-model weight on it, which can exceed 1), so blame
        //    is assigned by matching the residual *pattern* against each
        //    sensor's fault signature rather than by largest residual.
        let unusable_now: Vec<usize> = (0..q)
            .filter(|&i| state.failed[i] || gated.contains(&i))
            .collect();
        let mut scored: Vec<usize> = Vec::new();
        let mut culprit = None;
        if let Some(family) = state.model.cross_family(&unusable_now)? {
            let residuals = family.residuals(sensor_readings)?;
            scored = family.sensors().to_vec();
            let any_violation = residuals.iter().enumerate().any(|(local, r)| {
                let threshold_local = (state.policy.residual_sigmas * family.rms(local))
                    .max(state.policy.min_residual);
                r.abs() > threshold_local
            });
            if any_violation {
                culprit = family.attribute(&residuals);
                if culprit.is_some() {
                    telemetry::counter("monitor.fault_attributions", 1);
                }
            }
        }

        // 3. Update strikes and promote persistent offenders to failed.
        //    A gate *trip* (first strike of a streak) is an incident: the
        //    flight recorder freezes the window around it.
        let mut tripped: Vec<usize> = Vec::new();
        for &i in &gated {
            if state.strikes[i] == 0 {
                tripped.push(i);
            }
            state.strikes[i] += 1;
        }
        let mut strikes_issued = gated.len() as u64;
        for &i in &scored {
            if culprit == Some(i) {
                state.strikes[i] += 1;
                strikes_issued += 1;
            } else {
                state.strikes[i] = 0;
            }
        }
        self.stats.health_strikes += strikes_issued;
        let mut newly_failed = 0u64;
        for i in 0..q {
            if !state.failed[i] && state.strikes[i] >= state.policy.health_persistence {
                state.failed[i] = true;
                newly_failed += 1;
            }
        }
        self.stats.hot_swaps += newly_failed;
        if telemetry::enabled() {
            let striking = state.strikes.iter().filter(|&&s| s > 0).count();
            if striking > 0 {
                telemetry::counter("monitor.health_strikes", striking as u64);
            }
            if newly_failed > 0 {
                // Promoting a sensor to failed is what triggers the hot
                // swap onto a leave-it-out fallback model.
                telemetry::counter("monitor.fallback_swaps", newly_failed);
            }
        }
        if !tripped.is_empty() {
            let sample = self.stats.samples as f64;
            telemetry::event(
                "monitor.gate_trip",
                &[("sample", sample), ("sensors", tripped.len() as f64)],
            );
            let failed_now: Vec<usize> = (0..q).filter(|&i| state.failed[i]).collect();
            telemetry::incident::report(&telemetry::incident::Incident {
                kind: "plausibility_gate",
                fields: &[("sample", sample), ("tripped", tripped.len() as f64)],
                failed_sensors: &failed_now,
                gated_sensors: &tripped,
            });
        }
        if newly_failed > 0 {
            let sample = self.stats.samples as f64;
            let failed_now: Vec<usize> = (0..q).filter(|&i| state.failed[i]).collect();
            telemetry::event(
                "monitor.hot_swap",
                &[("sample", sample), ("failed_sensors", failed_now.len() as f64)],
            );
            telemetry::incident::report(&telemetry::incident::Incident {
                kind: "hot_swap",
                fields: &[("sample", sample), ("newly_failed", newly_failed as f64)],
                failed_sensors: &failed_now,
                gated_sensors: &gated,
            });
        }

        // 4. Degradation budget, then predict with the surviving sensors.
        let failed: Vec<usize> = (0..q).filter(|&i| state.failed[i]).collect();
        let allowed = state.policy.max_failed_sensors.min(q.saturating_sub(1));
        gated.retain(|i| !state.failed[*i]);
        let unusable = failed.len() + gated.len();
        if failed.len() > allowed || unusable >= q {
            self.stats.sensors_failed += newly_failed;
            telemetry::counter("monitor.degraded_beyond_recovery", 1);
            if telemetry::enabled() {
                self.stats.export_gauges();
            }
            telemetry::incident::report(&telemetry::incident::Incident {
                kind: "degraded_beyond_recovery",
                fields: &[
                    ("sample", self.stats.samples as f64),
                    ("unusable", unusable as f64),
                    ("allowed", allowed as f64),
                ],
                failed_sensors: &failed,
                gated_sensors: &gated,
            });
            return Err(CoreError::DegradedBeyondRecovery {
                failed: unusable,
                allowed,
            });
        }
        let mut excluded = failed.clone();
        excluded.extend(gated.iter().copied());
        let predicted = state.model.predict_excluding(sensor_readings, &excluded)?;
        let (worst_block, predicted_min) = worst_prediction(&predicted);

        let health = SensorHealth { failed, gated };
        self.stats.gated_readings += health.gated.len() as u64;
        self.stats.sensors_failed += newly_failed;
        if !health.gated.is_empty() {
            telemetry::counter("monitor.gated_readings", health.gated.len() as u64);
        }
        telemetry::gauge("monitor.failed_sensors", health.failed.len() as f64);
        Ok(self.resolve_alarm(predicted_min, worst_block, Some(health)))
    }

    /// Debounce/hysteresis state machine shared by both observe paths.
    fn resolve_alarm(
        &mut self,
        predicted_min: f64,
        worst_block: usize,
        health: Option<SensorHealth>,
    ) -> MonitorDecision {
        let was_asserted = self.asserted;
        if self.asserted {
            // Hysteresis: release only above threshold + margin.
            if predicted_min >= self.threshold + self.release_margin {
                self.asserted = false;
                self.consecutive = 0;
            }
        } else if predicted_min < self.threshold {
            self.consecutive += 1;
            if self.consecutive >= self.persistence {
                self.asserted = true;
            }
        } else {
            self.consecutive = 0;
        }

        let rising_edge = self.asserted && !was_asserted;
        self.stats.samples += 1;
        if self.asserted {
            self.stats.alarmed_samples += 1;
        }
        if rising_edge {
            self.stats.alarm_events += 1;
            // Latency from the first sub-threshold sample to assertion:
            // exactly the debounce depth consumed by this alarm.
            telemetry::counter("monitor.alarm_events", 1);
            telemetry::histogram("monitor.alarm_latency_steps", self.consecutive as f64, "steps");
        }
        if telemetry::enabled() {
            self.stats.export_gauges();
            telemetry::gauge("monitor.alarm_active", self.asserted as u64 as f64);
            telemetry::gauge("monitor.predicted_min_v", predicted_min);
            // One ring event per observe(); the flight recorder decimates
            // this stream so it cannot crowd out rarer events.
            telemetry::event(
                "monitor.observe",
                &[
                    ("sample", (self.stats.samples - 1) as f64),
                    ("predicted_min", predicted_min),
                    ("alarm", self.asserted as u64 as f64),
                ],
            );
        }
        if rising_edge {
            let sample = (self.stats.samples - 1) as f64;
            telemetry::event(
                "monitor.alarm",
                &[
                    ("sample", sample),
                    ("predicted_min", predicted_min),
                    ("worst_block", worst_block as f64),
                    ("latency_steps", self.consecutive as f64),
                ],
            );
            // Freeze the flight recorder around the assertion so the
            // emergency is explainable even with no capture pre-enabled.
            let (failed, gated): (&[usize], &[usize]) = match &health {
                Some(h) => (&h.failed, &h.gated),
                None => (&[], &[]),
            };
            telemetry::incident::report(&telemetry::incident::Incident {
                kind: "alarm",
                fields: &[
                    ("sample", sample),
                    ("predicted_min", predicted_min),
                    ("threshold", self.threshold),
                    ("worst_block", worst_block as f64),
                ],
                failed_sensors: failed,
                gated_sensors: gated,
            });
        }
        MonitorDecision {
            predicted_min,
            worst_block,
            alarm: self.asserted,
            rising_edge,
            health,
        }
    }
}

/// Worst (lowest) predicted voltage and its block. `total_cmp` keeps this
/// panic-free even if a degenerate fit ever produced a NaN prediction.
fn worst_prediction(predicted: &[f64]) -> (usize, f64) {
    predicted
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, &v)| (k, v))
        .expect("model predicts at least one block")
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltsense_linalg::Matrix;

    /// Identity-ish model: one sensor, one block, f ≈ x.
    fn model() -> VoltageMapModel {
        let x = Matrix::from_rows(&[&[0.95, 0.90, 0.85, 0.80, 0.99]]).unwrap();
        let f = x.clone();
        VoltageMapModel::fit(&x, &f, &[0]).unwrap()
    }

    #[test]
    fn persistence_filters_single_sample_blips() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 3, 0.0).unwrap();
        // Two crossings then recovery: never alarms.
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        assert!(!m.observe(&[0.95]).unwrap().alarm);
        // Three consecutive crossings: alarms on the third.
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        let d = m.observe(&[0.84]).unwrap();
        assert!(d.alarm && d.rising_edge);
        assert_eq!(m.stats().alarm_events, 1);
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.02).unwrap();
        assert!(m.observe(&[0.84]).unwrap().alarm);
        // Recovers above threshold but inside the release band: stays on.
        assert!(m.observe(&[0.86]).unwrap().alarm);
        // Clears the band: releases.
        assert!(!m.observe(&[0.88]).unwrap().alarm);
        assert_eq!(m.stats().alarm_events, 1);
    }

    #[test]
    fn edges_and_counters_are_consistent() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        let seq = [0.9, 0.84, 0.84, 0.9, 0.83, 0.9];
        let mut edges = 0;
        for v in seq {
            if m.observe(&[v]).unwrap().rising_edge {
                edges += 1;
            }
        }
        assert_eq!(edges, 2);
        let s = m.stats();
        assert_eq!(s.samples, 6);
        assert_eq!(s.alarm_events, 2);
        assert_eq!(s.alarmed_samples, 3);
    }

    #[test]
    fn worst_block_is_reported() {
        // Two blocks: block 1 sits 20 mV below block 0.
        let x = Matrix::from_rows(&[&[0.95, 0.90, 0.85, 0.80]]).unwrap();
        let f = Matrix::from_rows(&[
            &[0.95, 0.90, 0.85, 0.80],
            &[0.93, 0.88, 0.83, 0.78],
        ])
        .unwrap();
        let model = VoltageMapModel::fit(&x, &f, &[0]).unwrap();
        let mut m = EmergencyMonitor::new(model, 0.85, 1, 0.0).unwrap();
        let d = m.observe(&[0.9]).unwrap();
        assert_eq!(d.worst_block, 1);
        assert!((d.predicted_min - 0.88).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        m.observe(&[0.80]).unwrap();
        assert!(m.is_alarmed());
        m.reset();
        assert!(!m.is_alarmed());
        assert_eq!(m.stats(), MonitorStats::default());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(EmergencyMonitor::new(model(), 0.0, 1, 0.0).is_err());
        assert!(EmergencyMonitor::new(model(), 0.85, 0, 0.0).is_err());
        assert!(EmergencyMonitor::new(model(), 0.85, 1, -0.1).is_err());
        assert!(EmergencyMonitor::new(model(), f64::NAN, 1, 0.0).is_err());
    }

    #[test]
    fn wrong_reading_count_rejected() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        assert!(m.observe(&[0.9, 0.9]).is_err());
    }

    #[test]
    fn naive_monitor_rejects_non_finite_readings() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        assert!(matches!(
            m.observe(&[f64::NAN]),
            Err(CoreError::NonFiniteReading { sensor: 0 })
        ));
        assert!(matches!(
            m.observe(&[f64::INFINITY]),
            Err(CoreError::NonFiniteReading { sensor: 0 })
        ));
        // The rejected samples left no trace in the counters.
        assert_eq!(m.stats(), MonitorStats::default());
    }

    #[test]
    fn nan_reading_cannot_deassert_an_active_alarm() {
        // Regression: a NaN used to flow through the OLS model, turn the
        // prediction NaN, and (NaN >= threshold + margin being false at
        // every comparison) could corrupt the alarm state machine.
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        assert!(m.observe(&[0.80]).unwrap().alarm);
        assert!(m.observe(&[f64::NAN]).is_err());
        assert!(m.is_alarmed(), "NaN de-asserted the alarm");
        let s = m.stats();
        assert_eq!((s.samples, s.alarm_events), (1, 1));
    }

    #[test]
    fn checkpoint_restore_resumes_the_state_machine_exactly() {
        // Drive an original monitor halfway into a debounce streak plus a
        // latched alarm; the restored copy must continue bit-identically.
        let mut original = EmergencyMonitor::new(model(), 0.85, 2, 0.02).unwrap();
        for v in [0.9, 0.84, 0.84, 0.86] {
            original.observe(&[v]).unwrap();
        }
        assert!(original.is_alarmed(), "hysteresis holds the latch at 0.86");

        let ckpt = original.checkpoint();
        let fit = original.model().linear_fit().clone();
        let model = VoltageMapModel::from_parts(
            original.model().sensor_indices().to_vec(),
            original.model().num_candidates(),
            fit.coefficients,
            fit.intercept,
            fit.rms_residual,
        )
        .unwrap();
        let mut restored = EmergencyMonitor::restore(model, &ckpt).unwrap();
        assert!(restored.is_alarmed(), "latched alarm survives restore");
        assert_eq!(restored.stats(), original.stats());

        for v in [0.86, 0.88, 0.84, 0.84, 0.9] {
            let a = original.observe(&[v]).unwrap();
            let b = restored.observe(&[v]).unwrap();
            assert_eq!(a, b, "divergence at reading {v}");
        }
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn restore_revalidates_configuration() {
        let good = EmergencyMonitor::new(model(), 0.85, 2, 0.0).unwrap().checkpoint();
        let bad = MonitorCheckpoint {
            threshold: f64::NAN,
            ..good
        };
        assert!(EmergencyMonitor::restore(model(), &bad).is_err());
        let bad = MonitorCheckpoint {
            persistence: 0,
            ..good
        };
        assert!(EmergencyMonitor::restore(model(), &bad).is_err());
        // An out-of-range debounce count is clamped, not trusted.
        let odd = MonitorCheckpoint {
            consecutive: 99,
            ..good
        };
        let m = EmergencyMonitor::restore(model(), &odd).unwrap();
        assert_eq!(m.checkpoint().consecutive, 2);
    }

    #[test]
    fn from_parts_rejects_inconsistent_models() {
        let fit = model().linear_fit().clone();
        // Coefficients are 1x1 here; mismatched sensor counts must fail.
        assert!(VoltageMapModel::from_parts(
            vec![0, 1],
            5,
            fit.coefficients.clone(),
            fit.intercept.clone(),
            0.0
        )
        .is_err());
        assert!(VoltageMapModel::from_parts(
            vec![9],
            5,
            fit.coefficients.clone(),
            fit.intercept.clone(),
            0.0
        )
        .is_err());
        assert!(VoltageMapModel::from_parts(
            vec![0],
            5,
            fit.coefficients.clone(),
            vec![f64::NAN],
            0.0
        )
        .is_err());
        assert!(
            VoltageMapModel::from_parts(vec![0], 5, fit.coefficients, fit.intercept, 0.0).is_ok()
        );
    }

    /// Three sensors driven by two shared droop signals (so each sensor is
    /// predictable from the other two) plus tiny independent wiggles that
    /// keep the fits non-degenerate; two blocks.
    fn ft_training() -> (Matrix, Matrix) {
        let n = 40;
        let mut x = Matrix::zeros(3, n);
        let mut f = Matrix::zeros(2, n);
        for s in 0..n {
            let t = s as f64;
            let s1 = 0.05 * (t * 0.7).sin();
            let s2 = 0.04 * (t * 1.3).cos();
            let a = 0.93 + s1 + 0.002 * (t * 3.1).sin();
            let b = 0.95 + 0.5 * s1 + 0.5 * s2 + 0.002 * (t * 2.3).cos();
            let c = 0.94 + s2 + 0.002 * (t * 4.7).sin();
            x[(0, s)] = a;
            x[(1, s)] = b;
            x[(2, s)] = c;
            f[(0, s)] = 0.6 * a + 0.4 * b;
            f[(1, s)] = 0.5 * b + 0.5 * c;
        }
        (x, f)
    }

    fn ft_monitor(policy: FaultPolicy) -> EmergencyMonitor {
        let (x, f) = ft_training();
        let ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        EmergencyMonitor::fault_tolerant(ft, 0.85, 1, 0.0, policy).unwrap()
    }

    #[test]
    fn fault_tolerant_matches_naive_on_healthy_readings() {
        let (x, f) = ft_training();
        let ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        let mut naive =
            EmergencyMonitor::new(ft.primary().clone(), 0.85, 1, 0.0).unwrap();
        let mut aware = ft_monitor(FaultPolicy::default());
        for s in 0..20 {
            let readings: Vec<f64> = (0..3).map(|i| x[(i, s)]).collect();
            let dn = naive.observe(&readings).unwrap();
            let da = aware.observe(&readings).unwrap();
            assert_eq!(dn.predicted_min, da.predicted_min, "sample {s}");
            assert_eq!(dn.alarm, da.alarm);
            let health = da.health.expect("fault-tolerant decision carries health");
            assert!(!health.degraded());
        }
        assert!(aware.failed_sensors().is_empty());
    }

    #[test]
    fn implausible_reading_is_gated_and_fallback_used_immediately() {
        let (x, f) = ft_training();
        let ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        let mut aware = EmergencyMonitor::fault_tolerant(
            ft.clone(),
            0.85,
            1,
            0.0,
            FaultPolicy::default(),
        )
        .unwrap();
        let readings = [x[(0, 5)], f64::NAN, x[(2, 5)]];
        let d = aware.observe(&readings).unwrap();
        let health = d.health.unwrap();
        assert_eq!(health.gated, vec![1]);
        // The very first gated sample already predicts with leave-1-out.
        let survivors = [readings[0], readings[2]];
        let expect = ft.leave_one_out(1).unwrap().predict(&survivors).unwrap();
        let (_, want_min) = super::worst_prediction(&expect);
        assert_eq!(d.predicted_min, want_min);
        assert_eq!(aware.stats().gated_readings, 1);
    }

    #[test]
    fn persistent_implausible_sensor_is_permanently_failed() {
        let mut aware = ft_monitor(FaultPolicy {
            health_persistence: 3,
            ..FaultPolicy::default()
        });
        let (x, _) = ft_training();
        for s in 0..3 {
            let readings = [x[(0, s)], f64::NAN, x[(2, s)]];
            aware.observe(&readings).unwrap();
        }
        assert_eq!(aware.failed_sensors(), vec![1]);
        assert_eq!(aware.stats().sensors_failed, 1);
        // Once failed, the sensor's reading is ignored even when plausible
        // again: predictions equal the leave-1-out fallback's.
        let (x, f) = ft_training();
        let ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        let readings = [x[(0, 9)], x[(1, 9)], x[(2, 9)]];
        let d = aware.observe(&readings).unwrap();
        let expect = ft
            .leave_one_out(1)
            .unwrap()
            .predict(&[readings[0], readings[2]])
            .unwrap();
        let (_, want_min) = super::worst_prediction(&expect);
        assert_eq!(d.predicted_min, want_min);
        assert_eq!(d.health.unwrap().failed, vec![1]);
    }

    #[test]
    fn cross_prediction_flags_a_stuck_sensor() {
        // Stuck-at 0.80 V: within rail bounds, so only the residual
        // scoring (not the plausibility gate) can see it.
        let mut aware = ft_monitor(FaultPolicy {
            health_persistence: 4,
            ..FaultPolicy::default()
        });
        let (x, _) = ft_training();
        for s in 0..12 {
            let readings = [x[(0, s)], 0.80, x[(2, s)]];
            match aware.observe(&readings) {
                Ok(_) => {}
                Err(e) => panic!("sample {s}: {e}"),
            }
            if aware.failed_sensors() == vec![1] {
                return;
            }
        }
        panic!(
            "stuck sensor never flagged; failed = {:?}",
            aware.failed_sensors()
        );
    }

    #[test]
    fn healthy_sensors_are_not_blamed_for_a_peer_fault() {
        // Sensor 0's cross-model weight on sensor 1 can exceed 1 in this
        // geometry, so a worst-residual rule would blame sensor 0; the
        // signature match must still pin sensor 1.
        let mut aware = ft_monitor(FaultPolicy {
            health_persistence: 2,
            ..FaultPolicy::default()
        });
        let (x, _) = ft_training();
        for s in 0..10 {
            let readings = [x[(0, s)], 0.80, x[(2, s)]];
            if aware.observe(&readings).is_err() {
                break;
            }
            if !aware.failed_sensors().is_empty() {
                break;
            }
        }
        assert_eq!(aware.failed_sensors(), vec![1]);
    }

    #[test]
    fn too_many_failures_is_a_typed_error() {
        let mut aware = ft_monitor(FaultPolicy {
            health_persistence: 1,
            max_failed_sensors: 1,
            ..FaultPolicy::default()
        });
        let (x, _) = ft_training();
        // Sample 1: sensor 1 dies (allowed).
        aware
            .observe(&[x[(0, 0)], f64::NAN, x[(2, 0)]])
            .unwrap();
        // Sample 2: sensor 2 dies too — over budget.
        let err = aware
            .observe(&[x[(0, 1)], f64::NAN, f64::NAN])
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::DegradedBeyondRecovery { failed: 2, allowed: 1 }
        ));
    }

    #[test]
    fn reset_clears_fault_state() {
        let mut aware = ft_monitor(FaultPolicy {
            health_persistence: 1,
            ..FaultPolicy::default()
        });
        let (x, _) = ft_training();
        aware.observe(&[x[(0, 0)], f64::NAN, x[(2, 0)]]).unwrap();
        assert_eq!(aware.failed_sensors(), vec![1]);
        aware.reset();
        assert!(aware.failed_sensors().is_empty());
        assert_eq!(aware.stats(), MonitorStats::default());
    }

    #[test]
    fn bad_fault_policies_rejected() {
        let (x, f) = ft_training();
        let ft = FaultTolerantModel::fit(&x, &f, &[0, 1, 2]).unwrap();
        let mk = |policy| {
            EmergencyMonitor::fault_tolerant(ft.clone(), 0.85, 1, 0.0, policy).is_err()
        };
        assert!(mk(FaultPolicy {
            rail_min: 1.0,
            rail_max: 0.5,
            ..FaultPolicy::default()
        }));
        assert!(mk(FaultPolicy {
            residual_sigmas: 0.0,
            ..FaultPolicy::default()
        }));
        assert!(mk(FaultPolicy {
            min_residual: -1.0,
            ..FaultPolicy::default()
        }));
        assert!(mk(FaultPolicy {
            health_persistence: 0,
            ..FaultPolicy::default()
        }));
    }
}
