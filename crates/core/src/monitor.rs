//! Stateful runtime monitoring: the deployment wrapper around the fitted
//! prediction model.
//!
//! The paper evaluates per-sample detection; a real noise-management loop
//! (throttling, clock stretching — its references [6, 10–12]) adds two
//! operational details this module provides:
//!
//! * **persistence (debounce)** — require `persistence` consecutive
//!   threshold crossings before asserting, filtering single-sample blips
//!   that a hardware actuator could never react to anyway;
//! * **hysteresis** — once asserted, release only after the predicted
//!   worst voltage recovers above `threshold + release_margin`, avoiding
//!   alarm chatter around the margin.

use crate::predict::VoltageMapModel;
use crate::CoreError;

/// One monitoring decision.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorDecision {
    /// Predicted worst critical-node voltage this sample (V).
    pub predicted_min: f64,
    /// Index of the block (row of `F`) predicted worst.
    pub worst_block: usize,
    /// Whether the alarm output is asserted after debounce/hysteresis.
    pub alarm: bool,
    /// `true` on the sample where the alarm transitions 0 → 1.
    pub rising_edge: bool,
}

/// Counters accumulated over a monitoring session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorStats {
    /// Samples observed.
    pub samples: u64,
    /// Samples with the alarm asserted.
    pub alarmed_samples: u64,
    /// Number of distinct alarm events (rising edges).
    pub alarm_events: u64,
}

/// A stateful emergency monitor around a fitted [`VoltageMapModel`].
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::{VoltageMapModel, monitor::EmergencyMonitor};
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// let x = Matrix::from_rows(&[&[0.99, 0.84, 0.93, 0.88]])?;
/// let f = Matrix::from_rows(&[&[0.98, 0.82, 0.91, 0.86]])?;
/// let model = VoltageMapModel::fit(&x, &f, &[0])?;
/// // Alarm immediately (persistence 1), release 10 mV above threshold.
/// let mut monitor = EmergencyMonitor::new(model, 0.85, 1, 0.010)?;
/// let decision = monitor.observe(&[0.83])?;
/// assert!(decision.alarm && decision.rising_edge);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EmergencyMonitor {
    model: VoltageMapModel,
    threshold: f64,
    persistence: usize,
    release_margin: f64,
    consecutive: usize,
    asserted: bool,
    stats: MonitorStats,
}

impl EmergencyMonitor {
    /// Creates a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `threshold` is not positive
    /// and finite, `persistence` is zero, or `release_margin` is negative.
    pub fn new(
        model: VoltageMapModel,
        threshold: f64,
        persistence: usize,
        release_margin: f64,
    ) -> Result<Self, CoreError> {
        if !(threshold > 0.0) || !threshold.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!("threshold must be finite and > 0, got {threshold}"),
            });
        }
        if persistence == 0 {
            return Err(CoreError::InvalidConfig {
                what: "persistence must be at least 1 sample".into(),
            });
        }
        if !(release_margin >= 0.0) || !release_margin.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!("release margin must be finite and >= 0, got {release_margin}"),
            });
        }
        Ok(EmergencyMonitor {
            model,
            threshold,
            persistence,
            release_margin,
            consecutive: 0,
            asserted: false,
            stats: MonitorStats::default(),
        })
    }

    /// The wrapped prediction model.
    pub fn model(&self) -> &VoltageMapModel {
        &self.model
    }

    /// Accumulated session counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// `true` while the alarm output is asserted.
    pub fn is_alarmed(&self) -> bool {
        self.asserted
    }

    /// Resets the debounce/hysteresis state and counters.
    pub fn reset(&mut self) {
        self.consecutive = 0;
        self.asserted = false;
        self.stats = MonitorStats::default();
    }

    /// Feeds one sample of placed-sensor readings (`Q` values) and returns
    /// the monitoring decision.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if the reading count differs
    /// from the model's sensor count.
    pub fn observe(&mut self, sensor_readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        let predicted = self.model.predict_from_sensors(sensor_readings)?;
        let (worst_block, predicted_min) = predicted
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite prediction"))
            .map(|(k, &v)| (k, v))
            .expect("model predicts at least one block");

        let was_asserted = self.asserted;
        if self.asserted {
            // Hysteresis: release only above threshold + margin.
            if predicted_min >= self.threshold + self.release_margin {
                self.asserted = false;
                self.consecutive = 0;
            }
        } else if predicted_min < self.threshold {
            self.consecutive += 1;
            if self.consecutive >= self.persistence {
                self.asserted = true;
            }
        } else {
            self.consecutive = 0;
        }

        let rising_edge = self.asserted && !was_asserted;
        self.stats.samples += 1;
        if self.asserted {
            self.stats.alarmed_samples += 1;
        }
        if rising_edge {
            self.stats.alarm_events += 1;
        }
        Ok(MonitorDecision {
            predicted_min,
            worst_block,
            alarm: self.asserted,
            rising_edge,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltsense_linalg::Matrix;

    /// Identity-ish model: one sensor, one block, f ≈ x.
    fn model() -> VoltageMapModel {
        let x = Matrix::from_rows(&[&[0.95, 0.90, 0.85, 0.80, 0.99]]).unwrap();
        let f = x.clone();
        VoltageMapModel::fit(&x, &f, &[0]).unwrap()
    }

    #[test]
    fn persistence_filters_single_sample_blips() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 3, 0.0).unwrap();
        // Two crossings then recovery: never alarms.
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        assert!(!m.observe(&[0.95]).unwrap().alarm);
        // Three consecutive crossings: alarms on the third.
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        assert!(!m.observe(&[0.84]).unwrap().alarm);
        let d = m.observe(&[0.84]).unwrap();
        assert!(d.alarm && d.rising_edge);
        assert_eq!(m.stats().alarm_events, 1);
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.02).unwrap();
        assert!(m.observe(&[0.84]).unwrap().alarm);
        // Recovers above threshold but inside the release band: stays on.
        assert!(m.observe(&[0.86]).unwrap().alarm);
        // Clears the band: releases.
        assert!(!m.observe(&[0.88]).unwrap().alarm);
        assert_eq!(m.stats().alarm_events, 1);
    }

    #[test]
    fn edges_and_counters_are_consistent() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        let seq = [0.9, 0.84, 0.84, 0.9, 0.83, 0.9];
        let mut edges = 0;
        for v in seq {
            if m.observe(&[v]).unwrap().rising_edge {
                edges += 1;
            }
        }
        assert_eq!(edges, 2);
        let s = m.stats();
        assert_eq!(s.samples, 6);
        assert_eq!(s.alarm_events, 2);
        assert_eq!(s.alarmed_samples, 3);
    }

    #[test]
    fn worst_block_is_reported() {
        // Two blocks: block 1 sits 20 mV below block 0.
        let x = Matrix::from_rows(&[&[0.95, 0.90, 0.85, 0.80]]).unwrap();
        let f = Matrix::from_rows(&[
            &[0.95, 0.90, 0.85, 0.80],
            &[0.93, 0.88, 0.83, 0.78],
        ])
        .unwrap();
        let model = VoltageMapModel::fit(&x, &f, &[0]).unwrap();
        let mut m = EmergencyMonitor::new(model, 0.85, 1, 0.0).unwrap();
        let d = m.observe(&[0.9]).unwrap();
        assert_eq!(d.worst_block, 1);
        assert!((d.predicted_min - 0.88).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        m.observe(&[0.80]).unwrap();
        assert!(m.is_alarmed());
        m.reset();
        assert!(!m.is_alarmed());
        assert_eq!(m.stats(), MonitorStats::default());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(EmergencyMonitor::new(model(), 0.0, 1, 0.0).is_err());
        assert!(EmergencyMonitor::new(model(), 0.85, 0, 0.0).is_err());
        assert!(EmergencyMonitor::new(model(), 0.85, 1, -0.1).is_err());
        assert!(EmergencyMonitor::new(model(), f64::NAN, 1, 0.0).is_err());
    }

    #[test]
    fn wrong_reading_count_rejected() {
        let mut m = EmergencyMonitor::new(model(), 0.85, 1, 0.0).unwrap();
        assert!(m.observe(&[0.9, 0.9]).is_err());
    }
}
