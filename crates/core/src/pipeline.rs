use voltsense_grouplasso::GlOptions;
use voltsense_linalg::Matrix;
use voltsense_telemetry as telemetry;

use crate::detection::{self, DetectionOutcome};
use crate::metrics;
use crate::predict::{FaultTolerantModel, VoltageMapModel};
use crate::selection::{SelectionResult, SensorSelector};
use crate::CoreError;

/// Configuration of the full methodology (the paper's Step 0).
#[derive(Debug, Clone)]
pub struct MethodologyConfig {
    /// Group-lasso budget λ (the paper sweeps 10–60).
    pub lambda: f64,
    /// Selection threshold T on `‖β_m‖₂` (the paper uses `1e-3`).
    pub threshold: f64,
    /// Emergency threshold in volts (the paper uses 0.85 V at VDD 1.0 V).
    pub emergency_threshold: f64,
    /// Group-lasso solver options.
    pub gl_options: GlOptions,
}

impl Default for MethodologyConfig {
    fn default() -> Self {
        MethodologyConfig {
            lambda: 10.0,
            threshold: 1e-3,
            emergency_threshold: 0.85,
            gl_options: GlOptions::default(),
        }
    }
}

/// The end-to-end methodology (Steps 0–8): selection + OLS refit.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Methodology;

impl Methodology {
    /// Runs Steps 1–8 on training data `x` (`M x N` candidate voltages)
    /// and `f` (`K x N` critical-node voltages).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] for out-of-range configuration.
    /// * [`CoreError::ShapeMismatch`] for inconsistent training data.
    /// * [`CoreError::NoSensorsSelected`] if λ/T leave nothing selected.
    /// * Propagates solver failures.
    pub fn fit(
        x: &Matrix,
        f: &Matrix,
        config: &MethodologyConfig,
    ) -> Result<FittedMethodology, CoreError> {
        if !(config.emergency_threshold > 0.0) || !config.emergency_threshold.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "emergency threshold must be finite and > 0, got {}",
                    config.emergency_threshold
                ),
            });
        }
        let _span = telemetry::span("methodology.fit");
        // Steps 1–5: normalize + group lasso + threshold.
        let selector = SensorSelector::with_options(
            config.lambda,
            config.threshold,
            config.gl_options.clone(),
        )?;
        let selection = selector.select(x, f)?;
        telemetry::gauge("methodology.sensors", selection.selected.len() as f64);
        // Steps 6–8: OLS refit on the selected sensors, in volts.
        let model = VoltageMapModel::fit(x, f, &selection.selected)?;
        Ok(FittedMethodology {
            selection,
            model,
            emergency_threshold: config.emergency_threshold,
        })
    }

    /// Fits the pipeline with a *target sensor count* instead of a budget:
    /// bisects λ until exactly `q` sensors are selected (or the closest
    /// achievable count if `q` falls inside a jump of the selection path).
    ///
    /// This is how the paper's comparisons are set up ("2 sensors per
    /// core", "7 sensors available"): the budget λ is the knob, the sensor
    /// count the requirement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Methodology::fit`]; additionally
    /// [`CoreError::InvalidConfig`] if `q` is zero or exceeds the
    /// candidate count.
    pub fn fit_with_sensor_count(
        x: &Matrix,
        f: &Matrix,
        q: usize,
        config: &MethodologyConfig,
    ) -> Result<FittedMethodology, CoreError> {
        if !(config.emergency_threshold > 0.0) || !config.emergency_threshold.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "emergency threshold must be finite and > 0, got {}",
                    config.emergency_threshold
                ),
            });
        }
        let _span = telemetry::span("methodology.fit_with_sensor_count");
        // Build the (expensive) covariance form once and bisect the
        // penalty directly for the target count.
        let prepared = crate::selection::SelectionProblem::new(x, f)?;
        let selection = prepared.select_with_count(q, config.threshold, &config.gl_options)?;
        telemetry::gauge("methodology.sensors", selection.selected.len() as f64);
        let model = VoltageMapModel::fit(x, f, &selection.selected)?;
        Ok(FittedMethodology {
            selection,
            model,
            emergency_threshold: config.emergency_threshold,
        })
    }

    /// Fits the pipeline at every budget in `lambdas` (the paper's Table 1
    /// sweep, λ = 10…60) through **one** warm-started homotopy: the
    /// covariance form is reduced once and every budget bisection reuses
    /// β, the active set and the probe history of its predecessors.
    ///
    /// Returns one fitted pipeline per budget, in the caller's order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Methodology::fit`] (per budget); additionally
    /// [`CoreError::InvalidConfig`] if `lambdas` is empty.
    pub fn fit_sweep(
        x: &Matrix,
        f: &Matrix,
        lambdas: &[f64],
        config: &MethodologyConfig,
    ) -> Result<Vec<FittedMethodology>, CoreError> {
        if !(config.emergency_threshold > 0.0) || !config.emergency_threshold.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "emergency threshold must be finite and > 0, got {}",
                    config.emergency_threshold
                ),
            });
        }
        if lambdas.is_empty() {
            return Err(CoreError::InvalidConfig {
                what: "fit_sweep needs at least one lambda".into(),
            });
        }
        let _span = telemetry::span("methodology.fit_sweep");
        let prepared = crate::selection::SelectionProblem::new(x, f)?;
        let mut sweep = prepared.homotopy(config.gl_options.clone())?;
        let mut fitted = Vec::with_capacity(lambdas.len());
        for &lambda in lambdas {
            let selection = sweep.select_constrained(lambda, config.threshold)?;
            telemetry::gauge("methodology.sensors", selection.selected.len() as f64);
            let model = VoltageMapModel::fit(x, f, &selection.selected)?;
            fitted.push(FittedMethodology {
                selection,
                model,
                emergency_threshold: config.emergency_threshold,
            });
        }
        Ok(fitted)
    }

    /// Fits the pipeline at every target sensor count in `qs` through one
    /// warm-started homotopy — the Q-matched comparisons ("2 sensors per
    /// core", "7 sensors available") without per-target cold refits.
    ///
    /// Returns one fitted pipeline per count, in the caller's order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Methodology::fit_with_sensor_count`] (per
    /// count); additionally [`CoreError::InvalidConfig`] if `qs` is empty.
    pub fn fit_with_sensor_count_sweep(
        x: &Matrix,
        f: &Matrix,
        qs: &[usize],
        config: &MethodologyConfig,
    ) -> Result<Vec<FittedMethodology>, CoreError> {
        if !(config.emergency_threshold > 0.0) || !config.emergency_threshold.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "emergency threshold must be finite and > 0, got {}",
                    config.emergency_threshold
                ),
            });
        }
        if qs.is_empty() {
            return Err(CoreError::InvalidConfig {
                what: "fit_with_sensor_count_sweep needs at least one target count".into(),
            });
        }
        let _span = telemetry::span("methodology.fit_with_sensor_count_sweep");
        let prepared = crate::selection::SelectionProblem::new(x, f)?;
        let mut sweep = prepared.homotopy(config.gl_options.clone())?;
        let mut fitted = Vec::with_capacity(qs.len());
        for &q in qs {
            let selection = sweep.select_with_count(q, config.threshold)?;
            telemetry::gauge("methodology.sensors", selection.selected.len() as f64);
            let model = VoltageMapModel::fit(x, f, &selection.selected)?;
            fitted.push(FittedMethodology {
                selection,
                model,
                emergency_threshold: config.emergency_threshold,
            });
        }
        Ok(fitted)
    }
}

/// A fitted pipeline: the sensor placement plus the runtime prediction
/// model.
#[derive(Debug, Clone)]
pub struct FittedMethodology {
    selection: SelectionResult,
    model: VoltageMapModel,
    emergency_threshold: f64,
}

impl FittedMethodology {
    /// Indices of the placed sensors.
    pub fn sensors(&self) -> &[usize] {
        &self.selection.selected
    }

    /// The group-lasso selection diagnostics (group norms, μ, budget).
    pub fn selection(&self) -> &SelectionResult {
        &self.selection
    }

    /// The runtime voltage-map model.
    pub fn model(&self) -> &VoltageMapModel {
        &self.model
    }

    /// The emergency threshold the pipeline detects against.
    pub fn emergency_threshold(&self) -> f64 {
        self.emergency_threshold
    }

    /// Refits the placed sensor set into a [`FaultTolerantModel`] (primary
    /// model + leave-one-out fallback family + cross-prediction health
    /// models) from the same training data the pipeline was fitted on.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaultTolerantModel::fit`]; in particular
    /// [`CoreError::ShapeMismatch`] if `x`/`f` disagree with the fitted
    /// candidate count.
    pub fn fault_tolerant_model(
        &self,
        x: &Matrix,
        f: &Matrix,
    ) -> Result<FaultTolerantModel, CoreError> {
        FaultTolerantModel::fit(x, f, &self.selection.selected)
    }

    /// Evaluates prediction accuracy and detection error rates on held-out
    /// data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] on inconsistent test data.
    pub fn evaluate(&self, x_test: &Matrix, f_test: &Matrix) -> Result<EvaluationReport, CoreError> {
        let predicted = self.model.predict_matrix(x_test)?;
        let relative_error = metrics::relative_error(&predicted, f_test)?;
        let rms_error = metrics::rms_error(&predicted, f_test)?;
        let max_abs_error = metrics::max_abs_error(&predicted, f_test)?;

        let truth = detection::ground_truth(f_test, self.emergency_threshold);
        let alarms = self
            .model
            .detect_matrix(x_test, self.emergency_threshold)?;
        let detection = detection::evaluate(&truth, &alarms)?;

        Ok(EvaluationReport {
            relative_error,
            rms_error,
            max_abs_error,
            detection,
        })
    }
}

/// Held-out evaluation of a fitted pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationReport {
    /// `‖F* − F‖_F / ‖F‖_F` (the paper's Table 1 metric).
    pub relative_error: f64,
    /// RMS prediction error (V).
    pub rms_error: f64,
    /// Worst-case prediction error (V).
    pub max_abs_error: f64,
    /// Detection error rates at the configured emergency threshold.
    pub detection: DetectionOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic chip-like data: two "critical nodes" driven by two
    /// informative candidates among five; droops cross 0.85 sometimes.
    fn training(n: usize, phase: f64) -> (Matrix, Matrix) {
        let mut x = Matrix::zeros(5, n);
        let mut f = Matrix::zeros(2, n);
        for s in 0..n {
            let t = s as f64 + phase;
            let droop0 = 0.08 * (0.5 + 0.5 * (t * 0.9).sin());
            let droop1 = 0.10 * (0.5 + 0.5 * (t * 1.7).cos());
            x[(0, s)] = 0.97 - droop0 * 0.9;
            x[(1, s)] = 0.97 - 0.002 * (t * 2.2).sin();
            x[(2, s)] = 0.98 - droop1 * 0.8;
            x[(3, s)] = 0.96 + 0.003 * (t * 3.1).cos();
            x[(4, s)] = 0.97 - 0.3 * droop0 - 0.2 * droop1;
            f[(0, s)] = 0.95 - droop0 * 1.3;
            f[(1, s)] = 0.96 - droop1 * 1.2;
        }
        (x, f)
    }

    #[test]
    fn end_to_end_fit_and_evaluate() {
        let (x, f) = training(120, 0.0);
        let (x_test, f_test) = training(80, 1000.0);
        let fitted = Methodology::fit(&x, &f, &MethodologyConfig::default()).unwrap();
        assert!(!fitted.sensors().is_empty());
        let report = fitted.evaluate(&x_test, &f_test).unwrap();
        // Noiseless linear ground truth → tiny relative error.
        assert!(report.relative_error < 1e-6, "rel err {}", report.relative_error);
        assert_eq!(report.detection.miss_rate, 0.0);
        assert_eq!(report.detection.wrong_alarm_rate, 0.0);
        assert!(report.detection.emergencies > 0, "test data has no emergencies");
    }

    #[test]
    fn larger_lambda_never_selects_fewer() {
        let (x, f) = training(150, 0.0);
        let small = Methodology::fit(
            &x,
            &f,
            &MethodologyConfig {
                lambda: 0.7,
                ..MethodologyConfig::default()
            },
        )
        .unwrap();
        let large = Methodology::fit(&x, &f, &MethodologyConfig::default()).unwrap();
        assert!(small.sensors().len() <= large.sensors().len());
    }

    #[test]
    fn accuracy_improves_with_lambda() {
        let (x, f) = training(150, 0.0);
        let (x_test, f_test) = training(90, 555.0);
        // Corrupt the extra candidates' usefulness by evaluating a small-λ
        // fit (likely 1 sensor) vs a large-λ fit (more sensors).
        let small = Methodology::fit(
            &x,
            &f,
            &MethodologyConfig {
                lambda: 0.5,
                ..MethodologyConfig::default()
            },
        )
        .unwrap();
        let large = Methodology::fit(&x, &f, &MethodologyConfig::default()).unwrap();
        let es = small.evaluate(&x_test, &f_test).unwrap();
        let el = large.evaluate(&x_test, &f_test).unwrap();
        assert!(el.relative_error <= es.relative_error + 1e-12);
    }

    #[test]
    fn fit_with_sensor_count_hits_target() {
        let (x, f) = training(150, 0.0);
        for q in 1..=2 {
            let fitted =
                Methodology::fit_with_sensor_count(&x, &f, q, &MethodologyConfig::default())
                    .unwrap();
            // The selection path may jump over some counts; allow ±1.
            let got = fitted.sensors().len();
            assert!(
                (got as i64 - q as i64).abs() <= 1,
                "asked for {q} sensors, got {got}"
            );
        }
        // q = 4 exceeds what this (two-signal) data can support: the
        // helper returns the closest achievable count instead of failing.
        let fitted =
            Methodology::fit_with_sensor_count(&x, &f, 4, &MethodologyConfig::default())
                .unwrap();
        assert!(fitted.sensors().len() >= 2);
    }

    #[test]
    fn fit_with_sensor_count_rejects_bad_targets() {
        let (x, f) = training(60, 0.0);
        let cfg = MethodologyConfig::default();
        assert!(Methodology::fit_with_sensor_count(&x, &f, 0, &cfg).is_err());
        assert!(Methodology::fit_with_sensor_count(&x, &f, 99, &cfg).is_err());
    }

    #[test]
    fn fit_sweep_matches_individual_fits() {
        let (x, f) = training(150, 0.0);
        let lambdas = [0.7, 1.5, 10.0];
        let sweep = Methodology::fit_sweep(&x, &f, &lambdas, &MethodologyConfig::default()).unwrap();
        assert_eq!(sweep.len(), lambdas.len());
        for (fitted, &lambda) in sweep.iter().zip(&lambdas) {
            let solo = Methodology::fit(
                &x,
                &f,
                &MethodologyConfig {
                    lambda,
                    ..MethodologyConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                fitted.sensors(),
                solo.sensors(),
                "λ={lambda}: sweep and solo fits disagree on the placement"
            );
            assert!(fitted.selection().budget_used <= lambda + 1e-9);
        }
    }

    #[test]
    fn fit_with_sensor_count_sweep_hits_targets() {
        let (x, f) = training(150, 0.0);
        let qs = [1, 2];
        let sweep =
            Methodology::fit_with_sensor_count_sweep(&x, &f, &qs, &MethodologyConfig::default())
                .unwrap();
        for (fitted, &q) in sweep.iter().zip(&qs) {
            let got = fitted.sensors().len();
            assert!(
                (got as i64 - q as i64).abs() <= 1,
                "asked for {q} sensors, got {got}"
            );
        }
    }

    #[test]
    fn empty_sweeps_rejected() {
        let (x, f) = training(60, 0.0);
        let cfg = MethodologyConfig::default();
        assert!(Methodology::fit_sweep(&x, &f, &[], &cfg).is_err());
        assert!(Methodology::fit_with_sensor_count_sweep(&x, &f, &[], &cfg).is_err());
    }

    #[test]
    fn fault_tolerant_model_reuses_the_placed_sensors() {
        let (x, f) = training(120, 0.0);
        let fitted = Methodology::fit(&x, &f, &MethodologyConfig::default()).unwrap();
        let mut ft = fitted.fault_tolerant_model(&x, &f).unwrap();
        assert_eq!(ft.primary().sensor_indices(), fitted.sensors());
        // Healthy-path predictions agree with the pipeline's own model.
        let sample = x.col(3);
        let via_pipeline = fitted.model().predict_from_candidates(&sample).unwrap();
        let readings: Vec<f64> = fitted.sensors().iter().map(|&s| sample[s]).collect();
        let via_ft = ft.predict_excluding(&readings, &[]).unwrap();
        assert_eq!(via_pipeline, via_ft);
    }

    #[test]
    fn invalid_config_rejected() {
        let (x, f) = training(50, 0.0);
        let mut cfg = MethodologyConfig::default();
        cfg.emergency_threshold = -1.0;
        assert!(Methodology::fit(&x, &f, &cfg).is_err());
        let mut cfg = MethodologyConfig::default();
        cfg.lambda = 0.0;
        assert!(Methodology::fit(&x, &f, &cfg).is_err());
    }

    #[test]
    fn evaluate_shape_checked() {
        let (x, f) = training(50, 0.0);
        let fitted = Methodology::fit(&x, &f, &MethodologyConfig::default()).unwrap();
        assert!(fitted.evaluate(&Matrix::zeros(3, 10), &f).is_err());
    }
}
