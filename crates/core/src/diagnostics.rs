//! Placement diagnostics: is a selected sensor set well-conditioned, and
//! which sensors are redundant?
//!
//! The paper picks sensors for prediction accuracy; a deployment review
//! also asks *robustness* questions: if two placed sensors are nearly
//! collinear, one of them adds little information and the OLS coefficients
//! are poorly determined (sensitive to calibration error). This module
//! quantifies that with the spectrum of the selected sensors' correlation
//! matrix.

use voltsense_linalg::decomp::SymmetricEigen;
use voltsense_linalg::{lstsq, stats};
use voltsense_linalg::Matrix;

use crate::CoreError;

/// Conditioning report for a placed sensor set.
#[derive(Debug, Clone)]
pub struct PlacementDiagnostics {
    /// Spectral condition number of the sensors' correlation matrix
    /// (1 = perfectly independent readings; large = near-collinear set).
    pub condition_number: f64,
    /// Eigenvalues of the correlation matrix, ascending. Near-zero values
    /// count directions of redundancy.
    pub spectrum: Vec<f64>,
    /// Effective number of independent sensors
    /// (`(Σλ)² / Σλ²`, the participation ratio): between 1 and Q.
    pub effective_sensors: f64,
    /// For each sensor: the largest absolute correlation with any *other*
    /// placed sensor. Values near 1 flag redundant pairs.
    pub max_cross_correlation: Vec<f64>,
}

impl PlacementDiagnostics {
    /// Indices (into the sensor list) whose reading correlates above
    /// `threshold` with another placed sensor.
    pub fn redundant_sensors(&self, threshold: f64) -> Vec<usize> {
        self.max_cross_correlation
            .iter()
            .enumerate()
            .filter(|&(_, c)| *c > threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Analyses the conditioning of a sensor placement on training data.
///
/// `x` is the full `M x N` candidate matrix; `sensors` the placed rows.
///
/// # Errors
///
/// * [`CoreError::ShapeMismatch`] for an empty sensor list or an
///   out-of-range index.
/// * Propagates eigensolver failures.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::diagnostics::analyze_placement;
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// // Sensor 1 duplicates sensor 0; sensor 2 is independent.
/// let x = Matrix::from_rows(&[
///     &[1.0, 2.0, 3.0, 4.0],
///     &[1.1, 2.1, 3.1, 4.1],
///     &[4.0, 1.0, 3.0, 2.0],
/// ])?;
/// let report = analyze_placement(&x, &[0, 1, 2])?;
/// assert_eq!(report.redundant_sensors(0.95), vec![0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn analyze_placement(
    x: &Matrix,
    sensors: &[usize],
) -> Result<PlacementDiagnostics, CoreError> {
    if sensors.is_empty() {
        return Err(CoreError::ShapeMismatch {
            what: "sensor list is empty".into(),
        });
    }
    if let Some(&bad) = sensors.iter().find(|&&s| s >= x.rows()) {
        return Err(CoreError::ShapeMismatch {
            what: format!("sensor index {bad} out of range for {} candidates", x.rows()),
        });
    }
    let q = sensors.len();
    // Correlation matrix of the placed sensors' readings.
    let mut corr = Matrix::identity(q);
    for i in 0..q {
        for j in (i + 1)..q {
            let c = stats::pearson(x.row(sensors[i]), x.row(sensors[j]));
            corr[(i, j)] = c;
            corr[(j, i)] = c;
        }
    }
    let eig = SymmetricEigen::new(&corr)?;
    let spectrum = eig.eigenvalues.clone();
    let sum: f64 = spectrum.iter().sum();
    let sum_sq: f64 = spectrum.iter().map(|l| l * l).sum();
    let effective_sensors = if sum_sq > 0.0 { sum * sum / sum_sq } else { 0.0 };
    let condition_number = eig.condition_number();
    let max_cross_correlation = (0..q)
        .map(|i| {
            (0..q)
                .filter(|&j| j != i)
                .map(|j| corr[(i, j)].abs())
                .fold(0.0_f64, f64::max)
        })
        .collect();
    Ok(PlacementDiagnostics {
        condition_number,
        spectrum,
        effective_sensors,
        max_cross_correlation,
    })
}

/// Training RMS residual of predicting each placed sensor from the other
/// `Q − 1` — the *cross-predictability* that fault-tolerant monitoring
/// relies on. A sensor with a large value here is poorly covered by its
/// peers: its faults are hard to detect by cross-prediction and its loss
/// costs the most accuracy. Returns one value per entry of `sensors`.
///
/// # Errors
///
/// * [`CoreError::ShapeMismatch`] for fewer than two sensors or an
///   out-of-range index.
/// * Propagates least-squares failures on degenerate data.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::diagnostics::cross_predictability;
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// // Sensor 1 = sensor 0 shifted; sensor 2 unrelated.
/// let x = Matrix::from_rows(&[
///     &[1.0, 2.0, 3.0, 4.0, 5.0],
///     &[1.5, 2.5, 3.5, 4.5, 5.5],
///     &[2.0, -1.0, 4.0, 0.0, 3.0],
/// ])?;
/// let rms = cross_predictability(&x, &[0, 1, 2])?;
/// assert!(rms[0] < 1e-6 && rms[1] < 1e-6);
/// assert!(rms[2] > 0.1);
/// # Ok(())
/// # }
/// ```
pub fn cross_predictability(x: &Matrix, sensors: &[usize]) -> Result<Vec<f64>, CoreError> {
    if sensors.len() < 2 {
        return Err(CoreError::ShapeMismatch {
            what: format!(
                "cross-predictability needs at least 2 sensors, got {}",
                sensors.len()
            ),
        });
    }
    if let Some(&bad) = sensors.iter().find(|&&s| s >= x.rows()) {
        return Err(CoreError::ShapeMismatch {
            what: format!("sensor index {bad} out of range for {} candidates", x.rows()),
        });
    }
    let x_sel = x.select_rows(sensors);
    let q = sensors.len();
    let mut out = Vec::with_capacity(q);
    for i in 0..q {
        let others: Vec<usize> = (0..q).filter(|&j| j != i).collect();
        let fit = lstsq::ols_with_intercept(&x_sel.select_rows(&others), &x_sel.select_rows(&[i]))?;
        out.push(fit.rms_residual);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn independent_sensors() -> Matrix {
        // Three nearly-orthogonal readings.
        Matrix::from_rows(&[
            &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0],
            &[1.0, 1.0, -1.0, -1.0, 1.0, 1.0],
            &[1.0, 1.0, 1.0, -1.0, -1.0, -1.0],
        ])
        .unwrap()
    }

    #[test]
    fn independent_set_is_well_conditioned() {
        let x = independent_sensors();
        let report = analyze_placement(&x, &[0, 1, 2]).unwrap();
        assert!(report.condition_number < 3.0, "cond {}", report.condition_number);
        assert!(report.effective_sensors > 2.5);
        assert!(report.redundant_sensors(0.9).is_empty());
    }

    #[test]
    fn duplicated_sensor_is_flagged() {
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &[5.0, 3.0, 4.0, 1.0, 2.0],
        ])
        .unwrap();
        let report = analyze_placement(&x, &[0, 1, 2]).unwrap();
        assert!(report.condition_number > 1e6, "cond {}", report.condition_number);
        assert_eq!(report.redundant_sensors(0.99), vec![0, 1]);
        assert!(report.effective_sensors < 2.5);
    }

    #[test]
    fn single_sensor_is_trivially_perfect() {
        let x = independent_sensors();
        let report = analyze_placement(&x, &[1]).unwrap();
        assert!((report.condition_number - 1.0).abs() < 1e-12);
        assert!((report.effective_sensors - 1.0).abs() < 1e-12);
        assert_eq!(report.max_cross_correlation, vec![0.0]);
    }

    #[test]
    fn spectrum_sums_to_sensor_count() {
        // The correlation matrix has unit diagonal, so trace = Q = Σλ.
        let x = independent_sensors();
        let report = analyze_placement(&x, &[0, 1, 2]).unwrap();
        let sum: f64 = report.spectrum.iter().sum();
        assert!((sum - 3.0).abs() < 1e-10);
    }

    #[test]
    fn bad_inputs_rejected() {
        let x = independent_sensors();
        assert!(analyze_placement(&x, &[]).is_err());
        assert!(analyze_placement(&x, &[7]).is_err());
    }

    #[test]
    fn cross_predictability_separates_covered_from_lonely_sensors() {
        // Sensors 0 and 1 share their signal; sensor 2 is orthogonal.
        let x = Matrix::from_rows(&[
            &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0],
            &[2.0, -2.0, 2.0, -2.0, 2.0, -2.0],
            &[1.0, 1.0, -1.0, -1.0, 1.0, 1.0],
        ])
        .unwrap();
        let rms = cross_predictability(&x, &[0, 1, 2]).unwrap();
        assert!(rms[0] < 1e-9 && rms[1] < 1e-9, "covered: {rms:?}");
        assert!(rms[2] > 0.5, "lonely: {rms:?}");
    }

    #[test]
    fn cross_predictability_input_validation() {
        let x = independent_sensors();
        assert!(cross_predictability(&x, &[0]).is_err());
        assert!(cross_predictability(&x, &[0, 9]).is_err());
    }
}
