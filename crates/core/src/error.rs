use std::error::Error;
use std::fmt;

use voltsense_grouplasso::GroupLassoError;
use voltsense_linalg::LinalgError;

/// Error type for the methodology pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Input matrices disagreed on a dimension or were empty.
    ShapeMismatch {
        /// Description of the failing check.
        what: String,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Human-readable description.
        what: String,
    },
    /// The group-lasso step selected no sensors (λ or T out of useful
    /// range).
    NoSensorsSelected {
        /// The budget used.
        lambda: f64,
        /// The threshold used.
        threshold: f64,
    },
    /// A sensor reading was NaN or infinite. Readings are rejected before
    /// any monitor state changes, so a corrupted sample can never assert
    /// *or* de-assert an alarm.
    NonFiniteReading {
        /// Index of the offending sensor within the reading vector.
        sensor: usize,
    },
    /// Too many sensors have been lost for the fault-tolerant monitor to
    /// keep predicting; the system needs recalibration or repair.
    DegradedBeyondRecovery {
        /// Number of sensors currently unusable.
        failed: usize,
        /// Maximum failures the configuration tolerates.
        allowed: usize,
    },
    /// Underlying dense algebra failed.
    Linalg(LinalgError),
    /// The group-lasso solver failed.
    GroupLasso(GroupLassoError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            CoreError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            CoreError::NoSensorsSelected { lambda, threshold } => write!(
                f,
                "no sensors selected at lambda {lambda}, threshold {threshold}; \
                 increase the budget or lower the threshold"
            ),
            CoreError::NonFiniteReading { sensor } => write!(
                f,
                "sensor {sensor} produced a NaN or infinite reading; \
                 rejected before it could reach the model"
            ),
            CoreError::DegradedBeyondRecovery { failed, allowed } => write!(
                f,
                "{failed} sensors unusable but only {allowed} failures are \
                 tolerated; monitoring can no longer degrade gracefully"
            ),
            CoreError::Linalg(e) => write!(f, "linear algebra failed: {e}"),
            CoreError::GroupLasso(e) => write!(f, "group lasso failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::GroupLasso(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<GroupLassoError> for CoreError {
    fn from(e: GroupLassoError) -> Self {
        CoreError::GroupLasso(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        let err = CoreError::from(LinalgError::Singular { index: 0 });
        assert!(err.source().is_some());
        let err = CoreError::from(GroupLassoError::NonFinite { what: "Z" });
        assert!(err.source().is_some());
    }

    #[test]
    fn no_sensors_message_is_actionable() {
        let err = CoreError::NoSensorsSelected {
            lambda: 10.0,
            threshold: 1e-3,
        };
        assert!(err.to_string().contains("increase the budget"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
