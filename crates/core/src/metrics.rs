//! Prediction-accuracy metrics (the paper's "aggregated relative
//! prediction error", Table 1).

use voltsense_linalg::Matrix;

use crate::CoreError;

/// Aggregated relative prediction error over all blocks and samples:
/// `‖F* − F‖_F / ‖F‖_F`.
///
/// This is the metric the paper sweeps against λ in its Table 1 (reported
/// there in percent; values like 0.51% → 0.04%).
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if the matrices differ in shape or
/// `actual` is all-zero.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::metrics::relative_error;
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// let truth = Matrix::from_rows(&[&[1.0, 1.0]])?;
/// let pred = Matrix::from_rows(&[&[1.01, 0.99]])?;
/// let err = relative_error(&pred, &truth)?;
/// assert!((err - 0.01).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn relative_error(predicted: &Matrix, actual: &Matrix) -> Result<f64, CoreError> {
    if predicted.shape() != actual.shape() {
        return Err(CoreError::ShapeMismatch {
            what: format!(
                "predicted is {}x{}, actual is {}x{}",
                predicted.rows(),
                predicted.cols(),
                actual.rows(),
                actual.cols()
            ),
        });
    }
    let denom = actual.frobenius_norm();
    if denom == 0.0 {
        return Err(CoreError::ShapeMismatch {
            what: "actual matrix is identically zero".into(),
        });
    }
    let diff = predicted - actual;
    Ok(diff.frobenius_norm() / denom)
}

/// Maximum absolute prediction error over all blocks and samples (V) —
/// the worst-case miss the runtime monitor could make.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] on shape disagreement.
pub fn max_abs_error(predicted: &Matrix, actual: &Matrix) -> Result<f64, CoreError> {
    if predicted.shape() != actual.shape() {
        return Err(CoreError::ShapeMismatch {
            what: format!(
                "predicted is {}x{}, actual is {}x{}",
                predicted.rows(),
                predicted.cols(),
                actual.rows(),
                actual.cols()
            ),
        });
    }
    let diff = predicted - actual;
    Ok(diff.max_abs())
}

/// Root-mean-square prediction error (V).
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] on shape disagreement or empty
/// input.
pub fn rms_error(predicted: &Matrix, actual: &Matrix) -> Result<f64, CoreError> {
    if predicted.shape() != actual.shape() || predicted.is_empty() {
        return Err(CoreError::ShapeMismatch {
            what: format!(
                "predicted is {}x{}, actual is {}x{} (must match, non-empty)",
                predicted.rows(),
                predicted.cols(),
                actual.rows(),
                actual.cols()
            ),
        });
    }
    let diff = predicted - actual;
    let n = (diff.rows() * diff.cols()) as f64;
    Ok(diff.frobenius_norm() / n.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical_matrices() {
        let a = Matrix::from_rows(&[&[0.9, 0.95], &[0.85, 0.99]]).unwrap();
        assert_eq!(relative_error(&a, &a).unwrap(), 0.0);
        assert_eq!(max_abs_error(&a, &a).unwrap(), 0.0);
        assert_eq!(rms_error(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn known_values() {
        let truth = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap(); // ‖F‖ = 5
        let pred = Matrix::from_rows(&[&[3.3, 4.4]]).unwrap(); // diff = (0.3, 0.4), ‖·‖ = 0.5
        assert!((relative_error(&pred, &truth).unwrap() - 0.1).abs() < 1e-12);
        assert!((max_abs_error(&pred, &truth).unwrap() - 0.4).abs() < 1e-12);
        assert!((rms_error(&pred, &truth).unwrap() - 0.5 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(relative_error(&a, &b).is_err());
        assert!(max_abs_error(&a, &b).is_err());
        assert!(rms_error(&a, &b).is_err());
    }

    #[test]
    fn zero_actual_rejected() {
        let a = Matrix::zeros(2, 2);
        assert!(relative_error(&a, &a).is_err());
    }
}
