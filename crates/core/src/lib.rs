//! The DAC'15 methodology: group-lasso noise-sensor placement and OLS
//! full-chip voltage-map prediction.
//!
//! Given training data — candidate-location voltages `X` (`M x N`) and
//! critical-node voltages `F` (`K x N`), both collected from power-grid
//! simulation — this crate implements the paper's Steps 0–8:
//!
//! 1. **Normalize** `X`, `F` to zero-mean/unit-variance `Z`, `G`
//!    ([`voltsense_linalg::stats::Normalizer`]).
//! 2. **Select sensors** by solving the constrained multi-task group lasso
//!    `min ‖G − βZ‖_F s.t. Σ‖β_m‖₂ ≤ λ` and keeping candidates with
//!    `‖β_m‖₂ > T` ([`SensorSelector`]).
//! 3. **Refit by OLS** on the selected sensors only, in the original volt
//!    units, because the GL coefficients are biased by the budget
//!    constraint ([`VoltageMapModel`]).
//! 4. **Monitor at runtime**: predict every critical-node voltage from the
//!    placed sensors' readings and alarm when any prediction crosses the
//!    emergency threshold ([`VoltageMapModel::detect`],
//!    [`detection`]).
//!
//! [`Methodology`] packages the whole flow; [`GlDirectModel`] implements
//! the paper's Eq. 14 strawman (predicting straight from the biased GL
//! coefficients) for the ablation study that motivates the OLS refit.
//!
//! # Example
//!
//! ```
//! use voltsense_linalg::Matrix;
//! use voltsense_core::{Methodology, MethodologyConfig};
//!
//! # fn main() -> Result<(), voltsense_core::CoreError> {
//! // Tiny synthetic problem: one critical node tracks candidate 0.
//! let x = Matrix::from_rows(&[
//!     &[0.99, 0.84, 0.93, 0.88, 0.97, 0.86, 0.95, 0.90],
//!     &[0.96, 0.95, 0.97, 0.96, 0.95, 0.96, 0.97, 0.95],
//! ])?;
//! let f = Matrix::from_rows(&[&[0.98, 0.82, 0.91, 0.86, 0.96, 0.84, 0.94, 0.88]])?;
//! let fitted = Methodology::fit(&x, &f, &MethodologyConfig::default())?;
//! assert!(fitted.sensors().contains(&0));
//! let prediction = fitted.model().predict_from_candidates(&[0.85, 0.96])?;
//! assert!(prediction[0] < 0.90);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detection;
pub mod diagnostics;
mod error;
pub mod metrics;
pub mod monitor;
mod pipeline;
mod predict;
mod selection;

pub use error::CoreError;
pub use monitor::{
    EmergencyMonitor, FaultPolicy, MonitorCheckpoint, MonitorDecision, MonitorStats, SensorHealth,
};
pub use pipeline::{EvaluationReport, FittedMethodology, Methodology, MethodologyConfig};
pub use predict::{CrossFamily, FaultTolerantModel, GlDirectModel, VoltageMapModel};
pub use selection::{SelectionHomotopy, SelectionProblem, SelectionResult, SensorSelector};
