//! Emergency-detection error accounting (the paper's Section 3.2 metrics).

use voltsense_linalg::Matrix;

use crate::CoreError;

/// Detection error rates over a sample set.
///
/// * **Miss error (ME) rate** — fraction of *emergency* samples with no
///   alarm.
/// * **Wrong-alarm error (WAE) rate** — fraction of *non-emergency*
///   samples with an alarm.
/// * **Total error (TE) rate** — fraction of *all* samples with a wrong
///   state (miss or wrong alarm), the paper's "dividing the number of
///   samples in which wrong states reported by the number of total
///   samples".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionOutcome {
    /// ME rate (0 when there are no emergencies).
    pub miss_rate: f64,
    /// WAE rate (0 when every sample is an emergency).
    pub wrong_alarm_rate: f64,
    /// TE rate.
    pub total_error_rate: f64,
    /// Number of emergency samples.
    pub emergencies: usize,
    /// Number of missed emergencies.
    pub misses: usize,
    /// Number of wrong alarms.
    pub wrong_alarms: usize,
    /// Total samples evaluated.
    pub samples: usize,
}

/// Labels each sample (column) of a critical-voltage matrix as an
/// emergency when any node is below `threshold`.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_core::detection::ground_truth;
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// let f = Matrix::from_rows(&[&[0.95, 0.80], &[0.99, 0.99]])?;
/// assert_eq!(ground_truth(&f, 0.85), vec![false, true]);
/// # Ok(())
/// # }
/// ```
pub fn ground_truth(f: &Matrix, threshold: f64) -> Vec<bool> {
    (0..f.cols())
        .map(|s| (0..f.rows()).any(|k| f[(k, s)] < threshold))
        .collect()
}

/// Scores a detector's alarms against ground-truth emergency labels.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if the slices have different
/// lengths or are empty.
///
/// # Example
///
/// ```
/// use voltsense_core::detection::evaluate;
///
/// # fn main() -> Result<(), voltsense_core::CoreError> {
/// let truth =  [true,  true,  false, false];
/// let alarms = [true,  false, true,  false];
/// let outcome = evaluate(&truth, &alarms)?;
/// assert_eq!(outcome.miss_rate, 0.5);        // 1 of 2 emergencies missed
/// assert_eq!(outcome.wrong_alarm_rate, 0.5); // 1 of 2 quiet samples alarmed
/// assert_eq!(outcome.total_error_rate, 0.5); // 2 of 4 samples wrong
/// # Ok(())
/// # }
/// ```
pub fn evaluate(truth: &[bool], alarms: &[bool]) -> Result<DetectionOutcome, CoreError> {
    if truth.len() != alarms.len() || truth.is_empty() {
        return Err(CoreError::ShapeMismatch {
            what: format!(
                "truth has {} samples, alarms has {} (both must be equal and non-zero)",
                truth.len(),
                alarms.len()
            ),
        });
    }
    let mut emergencies = 0usize;
    let mut misses = 0usize;
    let mut wrong_alarms = 0usize;
    for (&t, &a) in truth.iter().zip(alarms) {
        if t {
            emergencies += 1;
            if !a {
                misses += 1;
            }
        } else if a {
            wrong_alarms += 1;
        }
    }
    let samples = truth.len();
    let non_emergencies = samples - emergencies;
    Ok(DetectionOutcome {
        miss_rate: if emergencies == 0 {
            0.0
        } else {
            misses as f64 / emergencies as f64
        },
        wrong_alarm_rate: if non_emergencies == 0 {
            0.0
        } else {
            wrong_alarms as f64 / non_emergencies as f64
        },
        total_error_rate: (misses + wrong_alarms) as f64 / samples as f64,
        emergencies,
        misses,
        wrong_alarms,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detector_has_zero_errors() {
        let truth = [true, false, true, false];
        let outcome = evaluate(&truth, &truth).unwrap();
        assert_eq!(outcome.miss_rate, 0.0);
        assert_eq!(outcome.wrong_alarm_rate, 0.0);
        assert_eq!(outcome.total_error_rate, 0.0);
        assert_eq!(outcome.emergencies, 2);
    }

    #[test]
    fn always_alarming_has_full_wae_zero_me() {
        let truth = [true, false, false, false];
        let alarms = [true, true, true, true];
        let outcome = evaluate(&truth, &alarms).unwrap();
        assert_eq!(outcome.miss_rate, 0.0);
        assert_eq!(outcome.wrong_alarm_rate, 1.0);
        assert_eq!(outcome.total_error_rate, 0.75);
    }

    #[test]
    fn never_alarming_has_full_me_zero_wae() {
        let truth = [true, true, false, false];
        let alarms = [false, false, false, false];
        let outcome = evaluate(&truth, &alarms).unwrap();
        assert_eq!(outcome.miss_rate, 1.0);
        assert_eq!(outcome.wrong_alarm_rate, 0.0);
        assert_eq!(outcome.total_error_rate, 0.5);
    }

    #[test]
    fn no_emergencies_me_defined_as_zero() {
        let truth = [false, false];
        let alarms = [false, true];
        let outcome = evaluate(&truth, &alarms).unwrap();
        assert_eq!(outcome.miss_rate, 0.0);
        assert_eq!(outcome.wrong_alarm_rate, 0.5);
    }

    #[test]
    fn counts_are_consistent_with_rates() {
        let truth = [true, true, true, false, false, false, false, false];
        let alarms = [true, false, false, true, false, false, false, false];
        let o = evaluate(&truth, &alarms).unwrap();
        assert_eq!(o.misses, 2);
        assert_eq!(o.wrong_alarms, 1);
        assert!((o.miss_rate - 2.0 / 3.0).abs() < 1e-15);
        assert!((o.wrong_alarm_rate - 0.2).abs() < 1e-15);
        assert!((o.total_error_rate - 3.0 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn ground_truth_thresholds_any_row() {
        let f = Matrix::from_rows(&[
            &[0.90, 0.86, 0.84],
            &[0.84, 0.99, 0.99],
        ])
        .unwrap();
        assert_eq!(ground_truth(&f, 0.85), vec![true, false, true]);
    }

    #[test]
    fn mismatched_or_empty_inputs_rejected() {
        assert!(evaluate(&[true], &[true, false]).is_err());
        assert!(evaluate(&[], &[]).is_err());
    }
}
