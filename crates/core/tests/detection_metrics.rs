//! Hand-computed checks of the paper's Section 3.2 detection metrics at
//! the 0.85 V emergency threshold, driven through the public pipeline:
//! critical-voltage matrices → `ground_truth` → `evaluate`.
//!
//! Every expected rate below is derived from an explicit confusion matrix
//! written out in the comments, so a regression in either the labelling
//! or the rate arithmetic fails with an exact count.

use voltsense_core::detection::{evaluate, ground_truth};
use voltsense_core::metrics::{max_abs_error, relative_error, rms_error};
use voltsense_linalg::Matrix;

const THRESHOLD: f64 = 0.85;

/// 2 critical nodes × 6 samples. A sample is an emergency when *any* node
/// dips below 0.85 V.
///
/// sample:   0      1      2      3      4      5
/// node 0:   0.95   0.84   0.95   0.86   0.80   0.95
/// node 1:   0.95   0.95   0.83   0.95   0.79   0.85
/// truth:    no     YES    YES    no     YES    no    (0.85 itself is safe)
fn actual_voltages() -> Matrix {
    Matrix::from_rows(&[
        &[0.95, 0.84, 0.95, 0.86, 0.80, 0.95],
        &[0.95, 0.95, 0.83, 0.95, 0.79, 0.85],
    ])
    .unwrap()
}

#[test]
fn ground_truth_labels_any_node_dip_and_treats_threshold_as_safe() {
    let truth = ground_truth(&actual_voltages(), THRESHOLD);
    assert_eq!(truth, vec![false, true, true, false, true, false]);
}

#[test]
fn imperfect_predictor_confusion_matrix() {
    // Predicted map: misses the shallow sample-2 dip (predicts 0.86 where
    // the grid really sat at 0.83) and falsely alarms on sample 3
    // (predicts 0.84 where the grid sat at 0.86).
    //
    // sample:    0      1      2      3      4      5
    // node 0:    0.95   0.84   0.95   0.84   0.81   0.95
    // node 1:    0.95   0.95   0.86   0.95   0.80   0.86
    // alarm:     no     YES    no     YES    YES    no
    //
    // Against truth [no, YES, YES, no, YES, no]:
    //   emergencies = 3 (samples 1, 2, 4), misses    = 1 (sample 2)
    //   quiet       = 3 (samples 0, 3, 5), wrong alarms = 1 (sample 3)
    //   ME  = 1/3, WAE = 1/3, TE = 2/6 = 1/3
    let predicted = Matrix::from_rows(&[
        &[0.95, 0.84, 0.95, 0.84, 0.81, 0.95],
        &[0.95, 0.95, 0.86, 0.95, 0.80, 0.86],
    ])
    .unwrap();

    let truth = ground_truth(&actual_voltages(), THRESHOLD);
    let alarms = ground_truth(&predicted, THRESHOLD);
    assert_eq!(alarms, vec![false, true, false, true, true, false]);

    let o = evaluate(&truth, &alarms).unwrap();
    assert_eq!(o.samples, 6);
    assert_eq!(o.emergencies, 3);
    assert_eq!(o.misses, 1);
    assert_eq!(o.wrong_alarms, 1);
    assert!((o.miss_rate - 1.0 / 3.0).abs() < 1e-15);
    assert!((o.wrong_alarm_rate - 1.0 / 3.0).abs() < 1e-15);
    assert!((o.total_error_rate - 1.0 / 3.0).abs() < 1e-15);
}

#[test]
fn all_emergency_workload_defines_wae_as_zero() {
    // Every sample dips below 0.85 V somewhere → no quiet samples, so the
    // WAE denominator is empty and the rate is defined as 0.
    //
    // The detector catches 3 of 4: ME = 1/4, TE = 1/4.
    let f = Matrix::from_rows(&[
        &[0.84, 0.95, 0.80, 0.95],
        &[0.95, 0.82, 0.95, 0.849],
    ])
    .unwrap();
    let truth = ground_truth(&f, THRESHOLD);
    assert_eq!(truth, vec![true; 4]);

    let alarms = [true, true, false, true];
    let o = evaluate(&truth, &alarms).unwrap();
    assert_eq!(o.emergencies, 4);
    assert_eq!(o.misses, 1);
    assert_eq!(o.wrong_alarms, 0);
    assert_eq!(o.wrong_alarm_rate, 0.0);
    assert_eq!(o.miss_rate, 0.25);
    assert_eq!(o.total_error_rate, 0.25);
}

#[test]
fn no_emergency_workload_defines_me_as_zero() {
    // Quiet grid: nothing below 0.85 V → no emergencies, ME denominator
    // empty, rate defined as 0. A jumpy detector alarming on 2 of 5 quiet
    // samples gets WAE = 2/5 = TE.
    let f = Matrix::from_rows(&[
        &[0.95, 0.90, 0.88, 0.86, 0.85],
        &[0.99, 0.97, 0.92, 0.91, 0.90],
    ])
    .unwrap();
    let truth = ground_truth(&f, THRESHOLD);
    assert_eq!(truth, vec![false; 5]);

    let alarms = [false, true, false, true, false];
    let o = evaluate(&truth, &alarms).unwrap();
    assert_eq!(o.emergencies, 0);
    assert_eq!(o.miss_rate, 0.0);
    assert_eq!(o.wrong_alarms, 2);
    assert!((o.wrong_alarm_rate - 0.4).abs() < 1e-15);
    assert!((o.total_error_rate - 0.4).abs() < 1e-15);
}

#[test]
fn prediction_metrics_match_hand_computed_values() {
    // actual:    [0.90  0.80]     predicted:  [0.91  0.78]
    //            [0.85  0.95]                 [0.85  0.99]
    // diff:      [0.01 -0.02]
    //            [0.00  0.04]
    // ‖diff‖_F = sqrt(1e-4 + 4e-4 + 0 + 16e-4) = sqrt(21e-4)
    // ‖actual‖_F = sqrt(0.81 + 0.64 + 0.7225 + 0.9025) = sqrt(3.075)
    let actual = Matrix::from_rows(&[&[0.90, 0.80], &[0.85, 0.95]]).unwrap();
    let predicted = Matrix::from_rows(&[&[0.91, 0.78], &[0.85, 0.99]]).unwrap();

    let diff_norm = (21e-4f64).sqrt();
    let rel = relative_error(&predicted, &actual).unwrap();
    assert!((rel - diff_norm / 3.075f64.sqrt()).abs() < 1e-12);

    let mae = max_abs_error(&predicted, &actual).unwrap();
    assert!((mae - 0.04).abs() < 1e-12);

    let rms = rms_error(&predicted, &actual).unwrap();
    assert!((rms - diff_norm / 2.0).abs() < 1e-12);
}

#[test]
fn guardbanded_prediction_trades_wae_for_me() {
    // Subtracting a 0.02 V guardband from every prediction can only add
    // alarms: misses never increase, wrong alarms never decrease. On the
    // imperfect predictor above the guardband recovers the missed
    // sample-2 emergency (0.86 − 0.02 < 0.85) but newly alarms on quiet
    // sample 5 (predicted 0.86), so WAE grows from 1 to 2 wrong alarms.
    let predicted = Matrix::from_rows(&[
        &[0.95, 0.84, 0.95, 0.84, 0.81, 0.95],
        &[0.95, 0.95, 0.86, 0.95, 0.80, 0.86],
    ])
    .unwrap();
    let truth = ground_truth(&actual_voltages(), THRESHOLD);

    let plain = evaluate(&truth, &ground_truth(&predicted, THRESHOLD)).unwrap();
    let guarded_alarms = ground_truth(&predicted, THRESHOLD + 0.02);
    let guarded = evaluate(&truth, &guarded_alarms).unwrap();

    assert!(guarded.misses <= plain.misses);
    assert!(guarded.wrong_alarms >= plain.wrong_alarms);
    assert_eq!(guarded.misses, 0);
    assert_eq!(guarded.wrong_alarms, 2);
}
