//! Property-based tests for the sparse solvers.

use proptest::prelude::*;
use voltsense_sparse::{cg, ordering, CsrMatrix, EnvelopeCholesky, TripletMatrix};

/// Strategy: a random connected-ish SPD grid matrix with random positive
/// conductances and a few grounded nodes.
fn spd_grid() -> impl Strategy<Value = CsrMatrix> {
    (2usize..6, 2usize..6, proptest::collection::vec(0.1..5.0f64, 200))
        .prop_map(|(w, h, gs)| {
            let n = w * h;
            let mut t = TripletMatrix::new(n, n);
            let mut gi = gs.into_iter().cycle();
            for y in 0..h {
                for x in 0..w {
                    let i = y * w + x;
                    if x + 1 < w {
                        t.stamp_conductance(i, i + 1, gi.next().expect("cycled"));
                    }
                    if y + 1 < h {
                        t.stamp_conductance(i, i + w, gi.next().expect("cycled"));
                    }
                }
            }
            t.stamp_grounded_conductance(0, 1.0);
            t.stamp_grounded_conductance(n - 1, 1.0);
            t.to_csr()
        })
}

fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_matvec_matches_dense(a in spd_grid(), seed in 0u64..1000) {
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| ((i as u64 + seed) as f64 * 0.1).sin()).collect();
        let sparse_y = a.matvec(&x).unwrap();
        let dense_y = a.to_dense().matvec(&x).unwrap();
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            prop_assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn grid_matrices_are_symmetric(a in spd_grid()) {
        prop_assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn rcm_permutation_is_bijection(a in spd_grid()) {
        let perm = ordering::reverse_cuthill_mckee(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
    }

    #[test]
    fn permuted_matrix_preserves_spectrum_diag_sum(a in spd_grid()) {
        // The trace is invariant under symmetric permutation.
        let perm = ordering::reverse_cuthill_mckee(&a);
        let b = a.permute_symmetric(&perm).unwrap();
        let ta: f64 = a.diagonal().iter().sum();
        let tb: f64 = b.diagonal().iter().sum();
        prop_assert!((ta - tb).abs() < 1e-10);
        prop_assert_eq!(a.nnz(), b.nnz());
    }

    #[test]
    fn cholesky_solve_residual_small(a in spd_grid()) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let chol = EnvelopeCholesky::factor(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_and_cholesky_agree(a in spd_grid()) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        let direct = EnvelopeCholesky::factor(&a).unwrap().solve(&b).unwrap();
        let iterative = cg::solve(&a, &b, &cg::CgOptions::default()).unwrap();
        for (p, q) in direct.iter().zip(&iterative.x) {
            prop_assert!((p - q).abs() < 1e-6, "{} vs {}", p, q);
        }
    }

    #[test]
    fn cholesky_solution_unique_across_orderings(a in spd_grid(), b in rhs(4)) {
        // Resize rhs to match.
        let n = a.rows();
        let mut bb = b;
        bb.resize(n, 0.5);
        let x1 = EnvelopeCholesky::factor(&a).unwrap().solve(&bb).unwrap();
        let x2 = EnvelopeCholesky::factor_natural(&a).unwrap().solve(&bb).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }
}
