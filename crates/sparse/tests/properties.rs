//! Property-based tests for the sparse solvers (testkit harness: 64
//! deterministic seeded cases per property, greedy shrinking).

use voltsense_sparse::{cg, ordering, CsrMatrix, EnvelopeCholesky, TripletMatrix};
use voltsense_testkit::{forall, u64_range, usize_range, vec_f64};

/// A connected-ish SPD grid matrix with the given positive conductances
/// (cycled over the edges) and two grounded nodes — built from shrinkable
/// primitives so failing cases reduce to small grids with simple weights.
fn spd_grid(w: usize, h: usize, gs: &[f64]) -> CsrMatrix {
    let n = w * h;
    let mut t = TripletMatrix::new(n, n);
    let mut gi = gs.iter().copied().cycle();
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.stamp_conductance(i, i + 1, gi.next().expect("cycled"));
            }
            if y + 1 < h {
                t.stamp_conductance(i, i + w, gi.next().expect("cycled"));
            }
        }
    }
    t.stamp_grounded_conductance(0, 1.0);
    t.stamp_grounded_conductance(n - 1, 1.0);
    t.to_csr()
}

#[test]
fn csr_matvec_matches_dense() {
    forall!(cases = 64, (w in usize_range(2, 6), h in usize_range(2, 6),
                         gs in vec_f64(200, 0.1, 5.0), seed in u64_range(0, 1000)) => {
        let a = spd_grid(w, h, &gs);
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| ((i as u64 + seed) as f64 * 0.1).sin()).collect();
        let sparse_y = a.matvec(&x).unwrap();
        let dense_y = a.to_dense().matvec(&x).unwrap();
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            assert!((s - d).abs() < 1e-10);
        }
    });
}

#[test]
fn grid_matrices_are_symmetric() {
    forall!(cases = 64, (w in usize_range(2, 6), h in usize_range(2, 6),
                         gs in vec_f64(200, 0.1, 5.0)) => {
        assert!(spd_grid(w, h, &gs).is_symmetric(1e-12));
    });
}

#[test]
fn rcm_permutation_is_bijection() {
    forall!(cases = 64, (w in usize_range(2, 6), h in usize_range(2, 6),
                         gs in vec_f64(200, 0.1, 5.0)) => {
        let a = spd_grid(w, h, &gs);
        let perm = ordering::reverse_cuthill_mckee(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
    });
}

#[test]
fn permuted_matrix_preserves_spectrum_diag_sum() {
    forall!(cases = 64, (w in usize_range(2, 6), h in usize_range(2, 6),
                         gs in vec_f64(200, 0.1, 5.0)) => {
        // The trace is invariant under symmetric permutation.
        let a = spd_grid(w, h, &gs);
        let perm = ordering::reverse_cuthill_mckee(&a);
        let b = a.permute_symmetric(&perm).unwrap();
        let ta: f64 = a.diagonal().iter().sum();
        let tb: f64 = b.diagonal().iter().sum();
        assert!((ta - tb).abs() < 1e-10);
        assert_eq!(a.nnz(), b.nnz());
    });
}

#[test]
fn cholesky_solve_residual_small() {
    forall!(cases = 64, (w in usize_range(2, 6), h in usize_range(2, 6),
                         gs in vec_f64(200, 0.1, 5.0)) => {
        let a = spd_grid(w, h, &gs);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let chol = EnvelopeCholesky::factor(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-8);
        }
    });
}

#[test]
fn cg_and_cholesky_agree() {
    forall!(cases = 64, (w in usize_range(2, 6), h in usize_range(2, 6),
                         gs in vec_f64(200, 0.1, 5.0)) => {
        let a = spd_grid(w, h, &gs);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        let direct = EnvelopeCholesky::factor(&a).unwrap().solve(&b).unwrap();
        let iterative = cg::solve(&a, &b, &cg::CgOptions::default()).unwrap();
        for (p, q) in direct.iter().zip(&iterative.x) {
            assert!((p - q).abs() < 1e-6, "{} vs {}", p, q);
        }
    });
}

#[test]
fn cholesky_solution_unique_across_orderings() {
    forall!(cases = 64, (w in usize_range(2, 6), h in usize_range(2, 6),
                         gs in vec_f64(200, 0.1, 5.0), b in vec_f64(4, -10.0, 10.0)) => {
        let a = spd_grid(w, h, &gs);
        // Resize rhs to match.
        let n = a.rows();
        let mut bb = b.clone();
        bb.resize(n, 0.5);
        let x1 = EnvelopeCholesky::factor(&a).unwrap().solve(&bb).unwrap();
        let x2 = EnvelopeCholesky::factor_natural(&a).unwrap().solve(&bb).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-8);
        }
    });
}
