use crate::CsrMatrix;

/// A coordinate-format (COO) sparse-matrix builder.
///
/// Circuit stamping naturally produces duplicate entries (two resistors
/// touching the same node pair); duplicates are summed when converting to
/// [`CsrMatrix`], which matches the modified-nodal-analysis convention.
///
/// # Example
///
/// ```
/// use voltsense_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.add(0, 0, 1.0);
/// t.add(0, 0, 2.0); // duplicate: summed
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with pre-allocated capacity for `nnz`
    /// entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`. Duplicates accumulate.
    ///
    /// Zero values are kept (they may be structurally meaningful), but an
    /// exactly-zero `value` is skipped as an optimization since summation is
    /// unaffected.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b` (both diagonal
    /// contributions plus the two negative off-diagonals) — the standard MNA
    /// resistor stamp.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds or if the matrix is not
    /// square.
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        assert_eq!(self.rows, self.cols, "conductance stamp needs square matrix");
        self.add(a, a, g);
        self.add(b, b, g);
        self.add(a, b, -g);
        self.add(b, a, -g);
    }

    /// Stamps a conductance `g` from node `a` to ground (diagonal only).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds.
    pub fn stamp_grounded_conductance(&mut self, a: usize, g: f64) {
        self.add(a, a, g);
    }

    /// Converts to CSR, summing duplicates and dropping entries that cancel
    /// to exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());

        let mut iter = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
            }
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("triplet conversion produces valid CSR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(3, 3);
        t.add(1, 1, 2.0);
        t.add(1, 1, 3.0);
        t.add(0, 2, -1.0);
        let a = t.to_csr();
        assert_eq!(a.get(1, 1), 5.0);
        assert_eq!(a.get(0, 2), -1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn cancelling_entries_dropped() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0);
        t.add(0, 1, -1.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn zero_add_is_skipped() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 0.0);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(2, 0, 1.0);
    }

    #[test]
    fn conductance_stamp_pattern() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 2, 4.0);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(2, 2), 4.0);
        assert_eq!(a.get(0, 2), -4.0);
        assert_eq!(a.get(2, 0), -4.0);
        // Row sums are zero: a floating resistor injects no current.
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| a.get(i, j)).sum();
            assert!(s.abs() < 1e-15);
        }
    }

    #[test]
    fn grounded_stamp_only_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_grounded_conductance(1, 7.0);
        let a = t.to_csr();
        assert_eq!(a.get(1, 1), 7.0);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn empty_builder_gives_empty_csr() {
        let t = TripletMatrix::new(4, 4);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.rows(), 4);
    }
}
