use voltsense_linalg::Matrix;

use crate::SparseError;

/// A compressed-sparse-row matrix.
///
/// Construct via [`crate::TripletMatrix::to_csr`] (circuit stamping) or
/// [`CsrMatrix::from_raw_parts`]. Column indices within each row are sorted
/// and unique — an invariant validated at construction and relied on by the
/// factorization and ordering code.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from its raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the arrays are inconsistent
    /// (wrong `row_ptr` length, non-monotone `row_ptr`, `col_idx`/`values`
    /// length mismatch), or [`SparseError::IndexOutOfBounds`] if a column
    /// index exceeds `cols` or indices within a row are not strictly
    /// increasing.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::ShapeMismatch {
                op: "csr row_ptr length",
                expected: rows + 1,
                actual: row_ptr.len(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::ShapeMismatch {
                op: "csr col_idx/values length",
                expected: col_idx.len(),
                actual: values.len(),
            });
        }
        if *row_ptr.last().expect("non-empty row_ptr") != col_idx.len() {
            return Err(SparseError::ShapeMismatch {
                op: "csr row_ptr terminator",
                expected: col_idx.len(),
                actual: *row_ptr.last().expect("non-empty row_ptr"),
            });
        }
        for i in 0..rows {
            if row_ptr[i] > row_ptr[i + 1] {
                return Err(SparseError::ShapeMismatch {
                    op: "csr row_ptr monotonicity",
                    expected: row_ptr[i],
                    actual: row_ptr[i + 1],
                });
            }
            let mut prev: Option<usize> = None;
            for &c in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
                if c >= cols || prev.is_some_and(|p| p >= c) {
                    return Err(SparseError::IndexOutOfBounds {
                        row: i,
                        col: c,
                        shape: (rows, cols),
                    });
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "csr get out of bounds");
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        match self.col_idx[range.clone()].binary_search(&col) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(col, value)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "csr row out of bounds");
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        self.col_idx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&c, &v)| (c, v))
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                op: "csr matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = s;
        }
        Ok(y)
    }

    /// Diagonal of the matrix (zeros where no entry is stored).
    ///
    /// Only meaningful for square matrices but defined for any shape
    /// (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).collect()
    }

    /// `true` if the matrix is structurally and numerically symmetric within
    /// absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                if (v - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Applies a symmetric permutation: returns `B` with
    /// `B[i][j] = A[perm[i]][perm[j]]` (i.e. `perm` maps new index → old
    /// index).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input or
    /// [`SparseError::ShapeMismatch`] if `perm.len() != n`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<CsrMatrix, SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                shape: (self.rows, self.cols),
            });
        }
        if perm.len() != self.rows {
            return Err(SparseError::ShapeMismatch {
                op: "permutation length",
                expected: self.rows,
                actual: perm.len(),
            });
        }
        let n = self.rows;
        // inv[old] = new
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n && inv[old] == usize::MAX, "perm is not a permutation");
            inv[old] = new;
        }
        let mut t = crate::TripletMatrix::with_capacity(n, n, self.nnz());
        for old_i in 0..n {
            for (old_j, v) in self.row_iter(old_i) {
                t.add(inv[old_i], inv[old_j], v);
            }
        }
        Ok(t.to_csr())
    }

    /// Converts to a dense [`Matrix`] — for tests and small systems only.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Lower bandwidth: `max_i (i − min_j stored(i,j))` over non-empty rows.
    pub fn lower_bandwidth(&self) -> usize {
        let mut bw = 0;
        for i in 0..self.rows {
            if let Some((j, _)) = self.row_iter(i).next() {
                if j < i {
                    bw = bw.max(i - j);
                }
            }
        }
        bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample() -> CsrMatrix {
        // [2 -1  0]
        // [-1 2 -1]
        // [0 -1  2]
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.add(i, i, 2.0);
        }
        t.stamp_conductance(0, 1, 0.0); // no-op (zero skipped)
        t.add(0, 1, -1.0);
        t.add(1, 0, -1.0);
        t.add(1, 2, -1.0);
        t.add(2, 1, -1.0);
        t.to_csr()
    }

    #[test]
    fn get_stored_and_missing() {
        let a = sample();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.nnz(), 7);
    }

    #[test]
    fn matvec_known() {
        let a = sample();
        let y = a.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn matvec_wrong_len() {
        let a = sample();
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn diagonal_and_symmetry() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn asymmetric_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0);
        let a = t.to_csr();
        assert!(!a.is_symmetric(1e-15));
    }

    #[test]
    fn to_dense_round_trip() {
        let a = sample();
        let d = a.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d[(i, j)], a.get(i, j));
            }
        }
    }

    #[test]
    fn permute_symmetric_reverses() {
        let a = sample();
        let perm = [2usize, 1, 0];
        let b = a.permute_symmetric(&perm).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), a.get(perm[i], perm[j]));
            }
        }
    }

    #[test]
    fn permute_rejects_bad_len() {
        let a = sample();
        assert!(a.permute_symmetric(&[0, 1]).is_err());
    }

    #[test]
    fn from_raw_parts_validation() {
        // Bad row_ptr length.
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 0], vec![], vec![]).is_err());
        // Non-monotone row_ptr.
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // Column out of range.
        assert!(CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // Unsorted columns within a row.
        assert!(CsrMatrix::from_raw_parts(
            1,
            3,
            vec![0, 2],
            vec![2, 0],
            vec![1.0, 1.0]
        )
        .is_err());
    }

    #[test]
    fn lower_bandwidth_tridiagonal() {
        assert_eq!(sample().lower_bandwidth(), 1);
    }

    #[test]
    fn row_iter_sorted() {
        let a = sample();
        let cols: Vec<usize> = a.row_iter(1).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 2]);
    }
}
