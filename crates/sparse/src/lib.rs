//! Sparse linear algebra for power-grid analysis.
//!
//! A full-chip power delivery network is a large, extremely sparse,
//! symmetric positive-definite system (a resistor mesh plus grounded
//! capacitors/pads). This crate provides exactly the kernels
//! `voltsense-powergrid` needs to solve it fast and repeatedly:
//!
//! * [`TripletMatrix`] — coordinate-format builder for stamping circuit
//!   elements.
//! * [`CsrMatrix`] — compressed sparse row storage with matrix-vector
//!   products.
//! * [`ordering`] — reverse Cuthill–McKee bandwidth reduction.
//! * [`EnvelopeCholesky`] — a profile (skyline) Cholesky factorization;
//!   after RCM ordering a 2-D grid matrix has a narrow envelope, so
//!   factor-once/solve-per-timestep transient simulation is cheap.
//! * [`cg`] — Jacobi-preconditioned conjugate gradient, used for
//!   cross-validation of the direct solver and for one-off DC solves.
//!
//! # Example
//!
//! ```
//! use voltsense_sparse::{TripletMatrix, EnvelopeCholesky};
//!
//! # fn main() -> Result<(), voltsense_sparse::SparseError> {
//! // 1-D resistor chain: tridiagonal SPD system.
//! let mut t = TripletMatrix::new(3, 3);
//! for i in 0..3 {
//!     t.add(i, i, 2.0);
//! }
//! t.add(0, 1, -1.0); t.add(1, 0, -1.0);
//! t.add(1, 2, -1.0); t.add(2, 1, -1.0);
//! let a = t.to_csr();
//! let chol = EnvelopeCholesky::factor(&a)?;
//! let x = chol.solve(&[1.0, 0.0, 1.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
mod csr;
mod envelope;
mod error;
mod ic;
pub mod ordering;
mod triplet;

pub use csr::CsrMatrix;
pub use envelope::EnvelopeCholesky;
pub use error::SparseError;
pub use ic::IncompleteCholesky;
pub use triplet::TripletMatrix;
