//! Zero-fill incomplete Cholesky factorization, IC(0).
//!
//! IC(0) computes an approximate factor `L ≈ chol(A)` restricted to `A`'s
//! own sparsity pattern. For the M-matrices produced by power-grid
//! stamping it exists and is an excellent CG preconditioner — typically a
//! several-fold iteration reduction over Jacobi at negligible setup cost
//! (quantified by the `sparse_cholesky` bench suite).

use crate::{CsrMatrix, SparseError};

/// An IC(0) factor, usable as a preconditioner via
/// [`IncompleteCholesky::apply`].
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    /// Lower-triangular rows (diagonal last), CSR-like.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl IncompleteCholesky {
    /// Factors the lower triangle of a sparse SPD matrix on its own
    /// pattern.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] for non-square input.
    /// * [`SparseError::NotPositiveDefinite`] if a pivot becomes
    ///   non-positive (possible for SPD matrices that are far from
    ///   M-matrices; not for resistive-grid stamps).
    pub fn factor(a: &CsrMatrix) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        // Extract the lower triangle (columns ascending, diagonal last in
        // each row's slice since CSR columns are sorted).
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            for (j, v) in a.row_iter(i) {
                if j <= i {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }

        // IKJ-style factorization restricted to the pattern.
        for i in 0..n {
            let (start_i, end_i) = (row_ptr[i], row_ptr[i + 1]);
            for idx in start_i..end_i {
                let j = col_idx[idx];
                // Dot of row i and row j over shared columns < j.
                let mut s = values[idx];
                {
                    let (mut pi, mut pj) = (start_i, row_ptr[j]);
                    let (ei, ej) = (end_i, row_ptr[j + 1]);
                    while pi < ei && pj < ej {
                        let (ci, cj) = (col_idx[pi], col_idx[pj]);
                        if ci >= j || cj >= j {
                            break;
                        }
                        match ci.cmp(&cj) {
                            std::cmp::Ordering::Equal => {
                                s -= values[pi] * values[pj];
                                pi += 1;
                                pj += 1;
                            }
                            std::cmp::Ordering::Less => pi += 1,
                            std::cmp::Ordering::Greater => pj += 1,
                        }
                    }
                }
                if j < i {
                    // Off-diagonal: divide by the pivot of row j.
                    let djj = values[row_ptr[j + 1] - 1];
                    values[idx] = s / djj;
                } else {
                    // Diagonal (last entry of the row).
                    if s <= 0.0 || !s.is_finite() {
                        return Err(SparseError::NotPositiveDefinite {
                            index: i,
                            pivot: s,
                        });
                    }
                    values[idx] = s.sqrt();
                }
            }
        }
        Ok(IncompleteCholesky {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Applies the preconditioner: solves `L Lᵀ z = r` in place of `z`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != z.len() != self.dim()`.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "rhs length mismatch");
        assert_eq!(z.len(), self.n, "solution length mismatch");
        z.copy_from_slice(r);
        // Forward: L y = r (diagonal is the last entry of each row).
        for i in 0..self.n {
            let (start, end) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut s = z[i];
            for idx in start..end - 1 {
                s -= self.values[idx] * z[self.col_idx[idx]];
            }
            z[i] = s / self.values[end - 1];
        }
        // Backward: Lᵀ z = y, column-oriented over the row storage.
        for i in (0..self.n).rev() {
            let (start, end) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let zi = z[i] / self.values[end - 1];
            z[i] = zi;
            for idx in start..end - 1 {
                z[self.col_idx[idx]] -= self.values[idx] * zi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn grid_spd(w: usize, h: usize) -> CsrMatrix {
        let n = w * h;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    t.stamp_conductance(i, i + 1, 3.0);
                }
                if y + 1 < h {
                    t.stamp_conductance(i, i + w, 3.0);
                }
                if (x + y) % 5 == 0 {
                    t.stamp_grounded_conductance(i, 0.8);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn exact_on_tridiagonal() {
        // A tridiagonal matrix has no fill, so IC(0) is the exact factor
        // and applying it solves the system exactly.
        let n = 12;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 2.5);
            if i + 1 < n {
                t.stamp_conductance(i, i + 1, 1.0);
            }
        }
        let a = t.to_csr();
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut z = vec![0.0; n];
        ic.apply(&b, &mut z);
        let az = a.matvec(&z).unwrap();
        for (x, y) in az.iter().zip(&b) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn preconditioner_is_spd_like() {
        // z = M⁻¹ r must satisfy rᵀ z > 0 for r ≠ 0.
        let a = grid_spd(6, 5);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let r: Vec<f64> = (0..30).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut z = vec![0.0; 30];
        ic.apply(&r, &mut z);
        let dot: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        assert!(dot > 0.0);
    }

    #[test]
    fn richardson_with_ic_beats_jacobi() {
        // Preconditioned Richardson iteration x ← x + M⁻¹(b − Ax): after a
        // fixed number of sweeps the IC(0)-preconditioned residual must be
        // far below the Jacobi one — the single-number summary of
        // preconditioner quality.
        let a = grid_spd(8, 8);
        let n = a.rows();
        let b = vec![1.0; n];
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let diag = a.diagonal();

        let run = |use_ic: bool| {
            let mut x = vec![0.0; n];
            let mut z = vec![0.0; n];
            for _ in 0..10 {
                let ax = a.matvec(&x).unwrap();
                let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
                if use_ic {
                    ic.apply(&r, &mut z);
                } else {
                    for ((zi, ri), di) in z.iter_mut().zip(&r).zip(&diag) {
                        *zi = ri / di;
                    }
                }
                for (xi, zi) in x.iter_mut().zip(&z) {
                    *xi += 0.9 * zi; // damped for Jacobi stability
                }
            }
            let ax = a.matvec(&x).unwrap();
            ax.iter()
                .zip(&b)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt()
        };
        let ic_res = run(true);
        let jacobi_res = run(false);
        // The weakly-grounded grid's low-frequency mode limits both, but
        // IC(0) must still converge measurably faster.
        assert!(
            ic_res < 0.7 * jacobi_res,
            "IC(0) residual {ic_res:.3e} not clearly below Jacobi {jacobi_res:.3e}"
        );
    }

    #[test]
    fn rejects_non_square_and_indefinite() {
        let t = TripletMatrix::new(2, 3);
        assert!(IncompleteCholesky::factor(&t.to_csr()).is_err());
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, -1.0);
        t.add(1, 1, 1.0);
        assert!(matches!(
            IncompleteCholesky::factor(&t.to_csr()),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_checks_lengths() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(1, 1, 1.0);
        let ic = IncompleteCholesky::factor(&t.to_csr()).unwrap();
        let mut z = vec![0.0; 2];
        ic.apply(&[1.0], &mut z);
    }
}
