use std::error::Error;
use std::fmt;

/// Error type for sparse-matrix construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparseError {
    /// An index was outside the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// Operand shapes were incompatible.
    ShapeMismatch {
        /// Description of the failing operation.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// The matrix was expected to be square.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// Cholesky hit a non-positive pivot: the matrix is not positive
    /// definite (or is numerically indefinite).
    NotPositiveDefinite {
        /// Pivot index.
        index: usize,
        /// Pivot value.
        pivot: f64,
    },
    /// An iterative solver failed to reach the requested tolerance.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm relative to the right-hand side.
        relative_residual: f64,
    },
    /// Input contained NaN or infinity.
    NonFinite {
        /// Description of the offending input.
        what: &'static str,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            SparseError::ShapeMismatch { op, expected, actual } => {
                write!(f, "shape mismatch in {op}: expected {expected}, got {actual}")
            }
            SparseError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            SparseError::NotPositiveDefinite { index, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:.3e} at index {index}"
            ),
            SparseError::DidNotConverge {
                iterations,
                relative_residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (relative residual {relative_residual:.3e})"
            ),
            SparseError::NonFinite { what } => {
                write!(f, "non-finite value encountered in {what}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = SparseError::IndexOutOfBounds {
            row: 5,
            col: 6,
            shape: (4, 4),
        };
        assert!(err.to_string().contains("(5, 6)"));
        let err = SparseError::DidNotConverge {
            iterations: 100,
            relative_residual: 1e-3,
        };
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
