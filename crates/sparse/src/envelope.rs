use crate::ordering::reverse_cuthill_mckee;
use crate::{CsrMatrix, SparseError};

/// Envelope (profile / skyline) Cholesky factorization of a sparse
/// symmetric positive-definite matrix.
///
/// The factor `L` fills in only inside the envelope of the lower triangle,
/// so after a bandwidth-reducing [RCM] permutation a 2-D power-grid matrix
/// factors in `O(n·b²)` and solves in `O(n·b)` where `b` is the (small)
/// post-ordering bandwidth. The transient engine in `voltsense-powergrid`
/// factors once and then back-solves every timestep.
///
/// [RCM]: crate::ordering::reverse_cuthill_mckee
///
/// # Example
///
/// ```
/// use voltsense_sparse::{TripletMatrix, EnvelopeCholesky};
///
/// # fn main() -> Result<(), voltsense_sparse::SparseError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.add(0, 0, 4.0);
/// t.add(1, 1, 3.0);
/// t.add(0, 1, 2.0);
/// t.add(1, 0, 2.0);
/// let chol = EnvelopeCholesky::factor(&t.to_csr())?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EnvelopeCholesky {
    n: usize,
    /// Permutation used: `perm[new] = old`.
    perm: Vec<usize>,
    /// First stored column of each (permuted) row's profile.
    first: Vec<usize>,
    /// Start offset of each row's profile in `lval`.
    offset: Vec<usize>,
    /// Row-major profile storage of L, row i holding columns
    /// `first[i]..=i`.
    lval: Vec<f64>,
    /// Scratch buffers reused across solves (interior mutability avoided:
    /// `solve` allocates; `solve_into` reuses caller buffers).
    _private: (),
}

impl EnvelopeCholesky {
    /// Factors `a` after applying an RCM ordering.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] if `a` is not square.
    /// * [`SparseError::NonFinite`] if `a` has NaN/infinite entries.
    /// * [`SparseError::NotPositiveDefinite`] on a non-positive pivot.
    pub fn factor(a: &CsrMatrix) -> Result<Self, SparseError> {
        let perm = reverse_cuthill_mckee(a);
        Self::factor_with_permutation(a, perm)
    }

    /// Factors `a` in its natural ordering (no permutation). Useful for the
    /// ordering ablation and for matrices already well-ordered.
    ///
    /// # Errors
    ///
    /// Same as [`EnvelopeCholesky::factor`].
    pub fn factor_natural(a: &CsrMatrix) -> Result<Self, SparseError> {
        let perm: Vec<usize> = (0..a.rows()).collect();
        Self::factor_with_permutation(a, perm)
    }

    /// Factors `a` under a caller-supplied symmetric permutation
    /// (`perm[new] = old`).
    ///
    /// # Errors
    ///
    /// Same as [`EnvelopeCholesky::factor`], plus
    /// [`SparseError::ShapeMismatch`] if `perm.len() != n`.
    pub fn factor_with_permutation(a: &CsrMatrix, perm: Vec<usize>) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if perm.len() != n {
            return Err(SparseError::ShapeMismatch {
                op: "cholesky permutation length",
                expected: n,
                actual: perm.len(),
            });
        }
        let ap = a.permute_symmetric(&perm)?;

        // Envelope structure: first stored column <= i per row.
        let mut first = vec![0usize; n];
        for i in 0..n {
            let mut fi = i;
            for (j, v) in ap.row_iter(i) {
                if !v.is_finite() {
                    return Err(SparseError::NonFinite {
                        what: "envelope cholesky input",
                    });
                }
                if j <= i {
                    fi = fi.min(j);
                    break; // columns are sorted: the first j <= i is the min
                }
            }
            first[i] = fi;
        }
        let mut offset = vec![0usize; n + 1];
        for i in 0..n {
            offset[i + 1] = offset[i] + (i - first[i] + 1);
        }
        let mut lval = vec![0.0; offset[n]];

        // Scatter A's lower triangle into the profile.
        for i in 0..n {
            for (j, v) in ap.row_iter(i) {
                if j <= i {
                    lval[offset[i] + (j - first[i])] = v;
                }
            }
        }

        // Row-oriented envelope factorization.
        let scale = lval
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        for i in 0..n {
            let fi = first[i];
            let (done, row_i) = lval.split_at_mut(offset[i]);
            for j in fi..i {
                let fj = first[j];
                let lo = fi.max(fj);
                // s = A[i][j] − Σ_{k=lo}^{j-1} L[i][k] L[j][k]
                let mut s = row_i[j - fi];
                let row_j = &done[offset[j]..offset[j + 1]];
                for k in lo..j {
                    s -= row_i[k - fi] * row_j[k - fj];
                }
                let djj = row_j[j - fj];
                row_i[j - fi] = s / djj;
            }
            let mut d = row_i[i - fi];
            for k in fi..i {
                let lik = row_i[k - fi];
                d -= lik * lik;
            }
            if d <= scale * 1e-14 {
                return Err(SparseError::NotPositiveDefinite {
                    index: i,
                    pivot: d,
                });
            }
            row_i[i - fi] = d.sqrt();
        }

        Ok(EnvelopeCholesky {
            n,
            perm,
            first,
            offset,
            lval,
            _private: (),
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored factor entries (profile size).
    pub fn profile_len(&self) -> usize {
        self.lval.len()
    }

    /// Solves `A x = b`, allocating the result.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut x = vec![0.0; self.n];
        let mut scratch = vec![0.0; self.n];
        self.solve_into(b, &mut x, &mut scratch)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing `scratch`
    /// (both length `n`). This is the per-timestep hot path of the transient
    /// engine — no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if any buffer length differs
    /// from `self.dim()`.
    pub fn solve_into(
        &self,
        b: &[f64],
        x: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<(), SparseError> {
        let n = self.n;
        if b.len() != n || x.len() != n || scratch.len() != n {
            return Err(SparseError::ShapeMismatch {
                op: "envelope solve",
                expected: n,
                actual: b.len().min(x.len()).min(scratch.len()),
            });
        }
        let y = scratch;
        // Permute: y[new] = b[perm[new]].
        for (new, &old) in self.perm.iter().enumerate() {
            y[new] = b[old];
        }
        // Forward substitution L y = b (row-oriented).
        for i in 0..n {
            let fi = self.first[i];
            let row = &self.lval[self.offset[i]..self.offset[i + 1]];
            let mut s = y[i];
            for k in fi..i {
                s -= row[k - fi] * y[k];
            }
            y[i] = s / row[i - fi];
        }
        // Back substitution Lᵀ z = y (column-oriented over rows).
        for i in (0..n).rev() {
            let fi = self.first[i];
            let row = &self.lval[self.offset[i]..self.offset[i + 1]];
            let zi = y[i] / row[i - fi];
            y[i] = zi;
            for k in fi..i {
                y[k] -= row[k - fi] * zi;
            }
        }
        // Unpermute: x[perm[new]] = z[new].
        for (new, &old) in self.perm.iter().enumerate() {
            x[old] = y[new];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// `w x h` grid Laplacian plus grounded pads — SPD.
    fn grid_spd(w: usize, h: usize) -> CsrMatrix {
        let n = w * h;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    t.stamp_conductance(i, i + 1, 1.0);
                }
                if y + 1 < h {
                    t.stamp_conductance(i, i + w, 1.0);
                }
            }
        }
        // Ground every corner (pads) to make it non-singular.
        for &i in &[0, w - 1, n - w, n - 1] {
            t.stamp_grounded_conductance(i, 0.5);
        }
        t.to_csr()
    }

    #[test]
    fn solve_matches_dense_lu() {
        let a = grid_spd(5, 4);
        let chol = EnvelopeCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = chol.solve(&b).unwrap();
        let dense = a.to_dense();
        let lu = voltsense_linalg::decomp::Lu::new(&dense).unwrap();
        let x_ref = lu.solve(&b).unwrap();
        for (a, b) in x.iter().zip(&x_ref) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn natural_and_rcm_orderings_agree() {
        let a = grid_spd(6, 3);
        let b: Vec<f64> = (0..18).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let x1 = EnvelopeCholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x2 = EnvelopeCholesky::factor_natural(&a)
            .unwrap()
            .solve(&b)
            .unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn rcm_shrinks_profile() {
        // A long skinny grid numbered across the long axis has a fat
        // natural profile; RCM shrinks it.
        let a = grid_spd(30, 3);
        let nat = EnvelopeCholesky::factor_natural(&a).unwrap();
        let rcm = EnvelopeCholesky::factor(&a).unwrap();
        assert!(
            rcm.profile_len() < nat.profile_len(),
            "rcm {} vs natural {}",
            rcm.profile_len(),
            nat.profile_len()
        );
    }

    #[test]
    fn residual_is_small() {
        let a = grid_spd(8, 8);
        let chol = EnvelopeCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..64).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(1, 1, 1.0);
        t.add(0, 1, 2.0);
        t.add(1, 0, 2.0);
        assert!(matches!(
            EnvelopeCholesky::factor(&t.to_csr()),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let t = TripletMatrix::new(2, 3);
        assert!(matches!(
            EnvelopeCholesky::factor_natural(&t.to_csr()),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn wrong_rhs_len_rejected() {
        let a = grid_spd(3, 3);
        let chol = EnvelopeCholesky::factor(&a).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let a = grid_spd(4, 4);
        let chol = EnvelopeCholesky::factor(&a).unwrap();
        let b = vec![1.0; 16];
        let mut x = vec![0.0; 16];
        let mut scratch = vec![0.0; 16];
        chol.solve_into(&b, &mut x, &mut scratch).unwrap();
        let expected = chol.solve(&b).unwrap();
        assert_eq!(x, expected);
    }

    #[test]
    fn identity_solve_is_identity() {
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.add(i, i, 1.0);
        }
        let chol = EnvelopeCholesky::factor(&t.to_csr()).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = chol.solve(&b).unwrap();
        for (a, b) in x.iter().zip(&b) {
            assert!((a - b).abs() < 1e-14);
        }
    }
}
