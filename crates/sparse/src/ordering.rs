//! Fill-reducing orderings.
//!
//! The envelope Cholesky cost scales with the square of the matrix profile,
//! so a bandwidth-reducing ordering matters. Reverse Cuthill–McKee (RCM) is
//! simple and near-optimal for the planar mesh graphs produced by power
//! grids; the `sparse_cholesky` bench quantifies the gain (ablation called
//! out in DESIGN.md).

use crate::CsrMatrix;

/// Computes a reverse Cuthill–McKee ordering of a symmetric sparse matrix.
///
/// Returns a permutation `perm` where `perm[new] = old`, suitable for
/// [`CsrMatrix::permute_symmetric`]. Disconnected components are each
/// ordered from a pseudo-peripheral start node.
///
/// # Panics
///
/// Panics if the matrix is not square.
///
/// # Example
///
/// ```
/// use voltsense_sparse::{TripletMatrix, ordering};
///
/// // A path graph numbered badly: 0-2, 2-1 (bandwidth 2).
/// let mut t = TripletMatrix::new(3, 3);
/// t.stamp_conductance(0, 2, 1.0);
/// t.stamp_conductance(2, 1, 1.0);
/// for i in 0..3 { t.add(i, i, 0.01); }
/// let a = t.to_csr();
/// let perm = ordering::reverse_cuthill_mckee(&a);
/// let b = a.permute_symmetric(&perm).unwrap();
/// assert!(b.lower_bandwidth() <= a.lower_bandwidth());
/// ```
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.rows(), a.cols(), "RCM requires a square matrix");
    let n = a.rows();
    let degree: Vec<usize> = (0..n)
        .map(|i| a.row_iter(i).filter(|&(j, _)| j != i).count())
        .collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);

    while order.len() < n {
        // Start each component from a pseudo-peripheral node.
        let start = pseudo_peripheral(a, &degree, &visited);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        visited[start] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            // Collect unvisited neighbours sorted by increasing degree.
            let mut nbrs: Vec<usize> = a
                .row_iter(u)
                .map(|(j, _)| j)
                .filter(|&j| j != u && !visited[j])
                .collect();
            nbrs.sort_unstable_by_key(|&j| degree[j]);
            for j in nbrs {
                visited[j] = true;
                queue.push_back(j);
            }
        }
    }
    order.reverse();
    order
}

/// Finds a pseudo-peripheral unvisited node: start from the unvisited node
/// of minimum degree and repeatedly jump to a farthest node of a BFS until
/// the eccentricity stops growing.
fn pseudo_peripheral(a: &CsrMatrix, degree: &[usize], visited: &[bool]) -> usize {
    let n = a.rows();
    let mut start = (0..n)
        .filter(|&i| !visited[i])
        .min_by_key(|&i| degree[i])
        .expect("at least one unvisited node");
    let mut ecc = 0;
    loop {
        let (far, far_ecc) = bfs_farthest(a, start, visited);
        if far_ecc <= ecc {
            return start;
        }
        ecc = far_ecc;
        start = far;
    }
}

/// BFS from `start` over unvisited nodes; returns the farthest node
/// (smallest degree among ties is implicit in traversal order) and its
/// distance.
fn bfs_farthest(a: &CsrMatrix, start: usize, visited: &[bool]) -> (usize, usize) {
    let n = a.rows();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut far = start;
    while let Some(u) = queue.pop_front() {
        if dist[u] > dist[far] {
            far = u;
        }
        for (j, _) in a.row_iter(u) {
            if j != u && !visited[j] && dist[j] == usize::MAX {
                dist[j] = dist[u] + 1;
                queue.push_back(j);
            }
        }
    }
    (far, dist[far])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// Builds the Laplacian (+ small diagonal) of a `w x h` grid graph with
    /// row-major numbering.
    fn grid_matrix(w: usize, h: usize) -> CsrMatrix {
        let n = w * h;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                t.add(i, i, 0.1);
                if x + 1 < w {
                    t.stamp_conductance(i, i + 1, 1.0);
                }
                if y + 1 < h {
                    t.stamp_conductance(i, i + w, 1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn perm_is_valid_permutation() {
        let a = grid_matrix(5, 4);
        let perm = reverse_cuthill_mckee(&a);
        let mut seen = vec![false; 20];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reduces_bandwidth_of_tall_grid() {
        // Row-major numbering of a 20x3 grid has bandwidth 20; RCM should
        // bring it near 3.
        let a = grid_matrix(20, 3);
        assert_eq!(a.lower_bandwidth(), 20);
        let perm = reverse_cuthill_mckee(&a);
        let b = a.permute_symmetric(&perm).unwrap();
        assert!(
            b.lower_bandwidth() <= 6,
            "RCM bandwidth {} too large",
            b.lower_bandwidth()
        );
    }

    #[test]
    fn handles_disconnected_components() {
        let mut t = TripletMatrix::new(6, 6);
        // Two disjoint triangles.
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            t.stamp_conductance(a, b, 1.0);
        }
        for i in 0..6 {
            t.add(i, i, 0.1);
        }
        let a = t.to_csr();
        let perm = reverse_cuthill_mckee(&a);
        assert_eq!(perm.len(), 6);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn single_node() {
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, 1.0);
        let perm = reverse_cuthill_mckee(&t.to_csr());
        assert_eq!(perm, vec![0]);
    }

    #[test]
    fn isolated_nodes_included() {
        let mut t = TripletMatrix::new(4, 4);
        t.stamp_conductance(0, 1, 1.0);
        t.add(0, 0, 0.1);
        t.add(1, 1, 0.1);
        t.add(2, 2, 1.0);
        t.add(3, 3, 1.0);
        let perm = reverse_cuthill_mckee(&t.to_csr());
        let mut sorted = perm;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
