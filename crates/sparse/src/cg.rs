//! Jacobi-preconditioned conjugate gradient.
//!
//! CG is the cross-check for [`crate::EnvelopeCholesky`] (two independent
//! solvers agreeing is a strong correctness signal for the power-grid
//! substrate) and the method of choice for one-off solves where paying for
//! a factorization is not worth it.

use voltsense_linalg::vec_ops;
use voltsense_telemetry as telemetry;

use crate::ic::IncompleteCholesky;
use crate::{CsrMatrix, SparseError};

/// Preconditioner choice for [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preconditioner {
    /// Diagonal (Jacobi) scaling — cheap, always applicable.
    #[default]
    Jacobi,
    /// Zero-fill incomplete Cholesky ([`crate::IncompleteCholesky`]) —
    /// stronger on grid matrices at a small setup cost.
    IncompleteCholesky,
}

/// Options for [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Maximum number of iterations; defaults to `10 * n`.
    pub max_iterations: Option<usize>,
    /// Relative residual tolerance `‖b − Ax‖ / ‖b‖`; default `1e-10`.
    pub tolerance: f64,
    /// Preconditioner (default Jacobi).
    pub preconditioner: Preconditioner,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iterations: None,
            tolerance: 1e-10,
            preconditioner: Preconditioner::Jacobi,
        }
    }
}

/// Outcome of a converged CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
}

/// Solves `A x = b` for a sparse SPD matrix by Jacobi-preconditioned CG.
///
/// # Errors
///
/// * [`SparseError::NotSquare`] if `a` is not square.
/// * [`SparseError::ShapeMismatch`] if `b.len() != n`.
/// * [`SparseError::NonFinite`] if `b` has non-finite entries or the
///   iteration produces them (indicating an indefinite matrix).
/// * [`SparseError::DidNotConverge`] if the tolerance is not reached.
///
/// # Example
///
/// ```
/// use voltsense_sparse::{TripletMatrix, cg};
///
/// # fn main() -> Result<(), voltsense_sparse::SparseError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.add(0, 0, 2.0);
/// t.add(1, 1, 2.0);
/// let sol = cg::solve(&t.to_csr(), &[4.0, 6.0], &cg::CgOptions::default())?;
/// assert!((sol.x[0] - 2.0).abs() < 1e-9);
/// assert!((sol.x[1] - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &CsrMatrix, b: &[f64], options: &CgOptions) -> Result<CgSolution, SparseError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(SparseError::NotSquare {
            shape: (a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(SparseError::ShapeMismatch {
            op: "cg rhs",
            expected: n,
            actual: b.len(),
        });
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(SparseError::NonFinite { what: "cg rhs" });
    }
    let b_norm = vec_ops::norm2(b);
    if b_norm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }
    let max_iter = options.max_iterations.unwrap_or(10 * n.max(1));

    // Preconditioner setup.
    let ic = match options.preconditioner {
        Preconditioner::IncompleteCholesky => Some(IncompleteCholesky::factor(a)?),
        Preconditioner::Jacobi => None,
    };
    // Jacobi fallback data: M = diag(A); identity where the diagonal is
    // non-positive (should not happen for SPD input).
    let inv_diag: Vec<f64> = a
        .diagonal()
        .into_iter()
        .map(|d| if d > 0.0 { 1.0 / d } else { 1.0 })
        .collect();
    let precondition = |r: &[f64], z: &mut [f64]| match &ic {
        Some(ic) => ic.apply(r, z),
        None => {
            for ((zi, ri), di) in z.iter_mut().zip(r).zip(&inv_diag) {
                *zi = ri * di;
            }
        }
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    precondition(&r, &mut z);
    let mut p = z.clone();
    let mut rz = vec_ops::dot(&r, &z);

    for iter in 0..max_iter {
        let ap = a.matvec(&p)?;
        let pap = vec_ops::dot(&p, &ap);
        if !pap.is_finite() || pap <= 0.0 {
            return Err(SparseError::NonFinite {
                what: "cg curvature (matrix not SPD?)",
            });
        }
        let alpha = rz / pap;
        vec_ops::axpy(alpha, &p, &mut x);
        vec_ops::axpy(-alpha, &ap, &mut r);
        let rel = vec_ops::norm2(&r) / b_norm;
        telemetry::event(
            "cg.iter",
            &[("iteration", (iter + 1) as f64), ("residual", rel)],
        );
        if rel <= options.tolerance {
            telemetry::counter("cg.solves", 1);
            telemetry::histogram("cg.iterations", (iter + 1) as f64, "iters");
            return Ok(CgSolution {
                x,
                iterations: iter + 1,
                relative_residual: rel,
            });
        }
        precondition(&r, &mut z);
        let rz_new = vec_ops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    telemetry::counter("cg.failures", 1);
    Err(SparseError::DidNotConverge {
        iterations: max_iter,
        relative_residual: vec_ops::norm2(&r) / b_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnvelopeCholesky, TripletMatrix};

    fn grid_spd(w: usize, h: usize) -> CsrMatrix {
        let n = w * h;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    t.stamp_conductance(i, i + 1, 2.0);
                }
                if y + 1 < h {
                    t.stamp_conductance(i, i + w, 2.0);
                }
                t.stamp_grounded_conductance(i, 0.01);
            }
        }
        t.to_csr()
    }

    #[test]
    fn ic_preconditioner_cuts_iterations() {
        let a = grid_spd(16, 16);
        let b: Vec<f64> = (0..256).map(|i| ((i % 9) as f64) - 4.0).collect();
        let jacobi = solve(&a, &b, &CgOptions::default()).unwrap();
        let ic = solve(
            &a,
            &b,
            &CgOptions {
                preconditioner: Preconditioner::IncompleteCholesky,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(
            ic.iterations * 2 < jacobi.iterations,
            "IC(0) {} iters vs Jacobi {}",
            ic.iterations,
            jacobi.iterations
        );
        for (p, q) in ic.x.iter().zip(&jacobi.x) {
            assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn agrees_with_direct_solver() {
        let a = grid_spd(7, 5);
        let b: Vec<f64> = (0..35).map(|i| ((i % 5) as f64) - 2.0).collect();
        let cg_sol = solve(&a, &b, &CgOptions::default()).unwrap();
        let direct = EnvelopeCholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (p, q) in cg_sol.x.iter().zip(&direct) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = grid_spd(3, 3);
        let sol = solve(&a, &vec![0.0; 9], &CgOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn diagonal_system_converges_fast() {
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.add(i, i, (i + 1) as f64);
        }
        let sol = solve(&t.to_csr(), &[1.0, 2.0, 3.0, 4.0], &CgOptions::default()).unwrap();
        // Jacobi preconditioner solves a diagonal system in one iteration.
        assert!(sol.iterations <= 2);
        for (i, v) in sol.x.iter().enumerate() {
            let _ = i;
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let a = grid_spd(10, 10);
        let b = vec![1.0; 100];
        let opts = CgOptions {
            max_iterations: Some(1),
            tolerance: 1e-14,
            ..CgOptions::default()
        };
        assert!(matches!(
            solve(&a, &b, &opts),
            Err(SparseError::DidNotConverge { iterations: 1, .. })
        ));
    }

    #[test]
    fn non_spd_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, -1.0);
        t.add(1, 1, -1.0);
        let res = solve(&t.to_csr(), &[1.0, 1.0], &CgOptions::default());
        assert!(matches!(res, Err(SparseError::NonFinite { .. })));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = grid_spd(2, 2);
        assert!(solve(&a, &[1.0], &CgOptions::default()).is_err());
        let rect = TripletMatrix::new(2, 3).to_csr();
        assert!(solve(&rect, &[1.0, 1.0, 1.0], &CgOptions::default()).is_err());
    }

    #[test]
    fn rejects_nan_rhs() {
        let a = grid_spd(2, 2);
        assert!(matches!(
            solve(&a, &[f64::NAN, 0.0, 0.0, 0.0], &CgOptions::default()),
            Err(SparseError::NonFinite { .. })
        ));
    }
}
