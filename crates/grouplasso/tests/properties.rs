//! Property-based tests for the group-lasso solvers (testkit harness: 64
//! deterministic seeded cases per property, greedy shrinking).

use voltsense_grouplasso::{
    kkt_violation, solve_constrained, solve_penalized, solve_penalized_fista, GlOptions,
    GlProblem, HomotopySolver,
};
use voltsense_linalg::Matrix;
use voltsense_testkit::{f64_range, forall, usize_range, vec_f64};

/// Builds a random well-posed problem with `m` candidates, `k` targets, `n`
/// samples; targets are noisy linear mixes of the candidates, so the
/// problems resemble the real use case. Assembled from shrinkable
/// primitives: failing cases reduce toward the smallest problem with the
/// simplest data.
fn problem(m: usize, k: usize, n: usize, zdata: &[f64], mix: &[f64]) -> GlProblem {
    let z = Matrix::from_vec(m, n, zdata[..m * n].to_vec()).expect("shape");
    // G = W Z + small structured perturbation.
    let w = Matrix::from_vec(k, m, mix[..k * m].to_vec()).expect("shape");
    let mut g = w.matmul(&z).expect("shapes agree");
    for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
        *v += 0.01 * ((i as f64) * 0.77).sin();
    }
    GlProblem::from_data(&z, &g).expect("valid problem")
}

fn options() -> GlOptions {
    GlOptions {
        max_sweeps: 20_000,
        tolerance: 1e-9,
        ..GlOptions::default()
    }
}

#[test]
fn bcd_satisfies_kkt() {
    forall!(cases = 64, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5), mu_frac in f64_range(0.05, 0.9)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let mu = p.mu_max() * mu_frac;
        let sol = solve_penalized(&p, mu, &options(), None).unwrap();
        let v = kkt_violation(&p, &sol.beta, mu).unwrap();
        assert!(v <= 1e-6 * p.mu_max().max(1.0), "violation {}", v);
    });
}

#[test]
fn bcd_and_fista_agree_on_objective() {
    forall!(cases = 64, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5), mu_frac in f64_range(0.1, 0.8)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let mu = p.mu_max() * mu_frac;
        let bcd = solve_penalized(&p, mu, &options(), None).unwrap();
        let fista = solve_penalized_fista(&p, mu, &options(), None).unwrap();
        let scale = bcd.objective.abs().max(1.0);
        assert!(
            (bcd.objective - fista.objective).abs() <= 1e-4 * scale,
            "bcd {} vs fista {}", bcd.objective, fista.objective
        );
    });
}

#[test]
fn budget_monotone_in_penalty() {
    forall!(cases = 64, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let mus = [0.1, 0.3, 0.6, 0.9].map(|f| p.mu_max() * f);
        let mut prev = f64::INFINITY;
        for mu in mus {
            let b = solve_penalized(&p, mu, &options(), None).unwrap().budget();
            assert!(b <= prev + 1e-9, "budget not monotone: {} then {}", prev, b);
            prev = b;
        }
    });
}

#[test]
fn above_mu_max_solution_is_zero() {
    forall!(cases = 64, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let sol = solve_penalized(&p, p.mu_max() * 1.01 + 1e-12, &options(), None).unwrap();
        assert!(sol.beta.max_abs() < 1e-10);
    });
}

#[test]
fn constrained_budget_feasible() {
    forall!(cases = 64, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5), lam in f64_range(0.05, 2.0)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let sol = solve_constrained(&p, lam, &options()).unwrap();
        assert!(sol.budget_used <= lam * (1.0 + 1e-6));
    });
}

#[test]
fn penalized_objective_optimal_vs_perturbations() {
    forall!(cases = 64, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5), mu_frac in f64_range(0.2, 0.8)) => {
        // The solver's objective must not be improvable by simple scalings
        // of the solution (a weak but fully independent optimality probe).
        let p = problem(m, k, n, &zdata, &mix);
        let mu = p.mu_max() * mu_frac;
        let sol = solve_penalized(&p, mu, &options(), None).unwrap();
        let obj = |beta: &Matrix| {
            let smooth = p.smooth_objective(beta).unwrap();
            let pen: f64 = (0..beta.cols())
                .map(|m| (0..beta.rows()).map(|k| beta[(k, m)].powi(2)).sum::<f64>().sqrt())
                .sum();
            smooth + mu * pen
        };
        let base = obj(&sol.beta);
        for scale in [0.9, 1.1, 0.5, 2.0] {
            let perturbed = sol.beta.scaled(scale);
            assert!(obj(&perturbed) >= base - 1e-7 * base.abs().max(1.0));
        }
    });
}

#[test]
fn warm_start_agrees_with_cold() {
    forall!(cases = 64, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5), mu_frac in f64_range(0.2, 0.7)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let mu = p.mu_max() * mu_frac;
        let other = solve_penalized(&p, mu * 1.3, &options(), None).unwrap();
        let warm = solve_penalized(&p, mu, &options(), Some(&other.beta)).unwrap();
        let cold = solve_penalized(&p, mu, &options(), None).unwrap();
        let scale = cold.objective.abs().max(1.0);
        assert!((warm.objective - cold.objective).abs() <= 1e-5 * scale);
    });
}

/// A full-sweep-only option set: `full_pass_interval = 0` disables the
/// active-set pruning entirely, so these solves are the pre-pruning
/// reference the pruned solver must match.
fn full_sweep_options() -> GlOptions {
    GlOptions {
        full_pass_interval: 0,
        ..options()
    }
}

/// True when any cold group norm lies in the ambiguous band around the
/// selection threshold, where solver-tolerance-level differences can
/// legitimately flip membership.
fn support_ambiguous(norms: &[f64], threshold: f64) -> bool {
    norms
        .iter()
        .any(|&n| n > threshold * 0.5 && n < threshold * 2.0)
}

#[test]
fn pruned_solves_match_full_sweep_solves() {
    forall!(cases = 64, (m in usize_range(2, 6), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5), mu_frac in f64_range(0.05, 0.9)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let mu = p.mu_max() * mu_frac;
        let pruned = solve_penalized(&p, mu, &options(), None).unwrap();
        let full = solve_penalized(&p, mu, &full_sweep_options(), None).unwrap();
        // The `converged` / `kkt_residual` contract is identical: both
        // converge, both residuals are honest full-problem measurements.
        assert_eq!(pruned.converged, full.converged);
        if pruned.converged {
            assert!(pruned.kkt_residual <= 1e-9, "pruned residual {}", pruned.kkt_residual);
            let v = kkt_violation(&p, &pruned.beta, mu).unwrap();
            assert!(v <= 1e-6 * p.mu_max().max(1.0), "static violation {}", v);
        }
        // Same optimum: objective within tolerance…
        let scale = full.objective.abs().max(1.0);
        assert!(
            (pruned.objective - full.objective).abs() <= 1e-6 * scale,
            "pruned {} vs full {}", pruned.objective, full.objective
        );
        // …and same selected support at threshold T (skipping cases where
        // a norm sits inside the ambiguous band around T).
        let t = 1e-3;
        let full_norms = full.group_norms();
        if !support_ambiguous(&full_norms, t) {
            assert_eq!(pruned.selected(t), full.selected(t));
        }
    });
}

#[test]
fn homotopy_path_matches_cold_full_sweep_solves() {
    forall!(cases = 48, (m in usize_range(2, 6), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5)) => {
        let p = problem(m, k, n, &zdata, &mix);
        let mus: Vec<f64> = [0.7, 0.4, 0.15, 0.05].iter().map(|f| p.mu_max() * f).collect();
        let t = 1e-3;
        let mut h = HomotopySolver::new(&p, options()).unwrap();
        let path = h.path(&mus, t).unwrap();
        for (pt, &mu) in path.iter().zip(&mus) {
            let cold = solve_penalized(&p, mu, &full_sweep_options(), None).unwrap();
            let scale = cold.objective.abs().max(1.0);
            let warm_obj = pt.fit + mu * pt.budget;
            assert!(
                (warm_obj - cold.objective).abs() <= 1e-6 * scale,
                "mu={mu}: homotopy obj {warm_obj} vs cold {}", cold.objective
            );
            let cold_norms = cold.group_norms();
            if !support_ambiguous(&cold_norms, t) {
                let warm_support: Vec<usize> = pt.group_norms.iter().enumerate()
                    .filter(|&(_, &nm)| nm > t).map(|(i, _)| i).collect();
                assert_eq!(warm_support, cold.selected(t), "mu={mu}");
            }
        }
    });
}

#[test]
fn homotopy_constrained_matches_cold_bisection() {
    forall!(cases = 48, (m in usize_range(2, 5), k in usize_range(1, 4),
                         n in usize_range(8, 16), zdata in vec_f64(200, -1.0, 1.0),
                         mix in vec_f64(40, -0.5, 0.5), lam in f64_range(0.05, 2.0)) => {
        let p = problem(m, k, n, &zdata, &mix);
        // A shared chain solving two budgets must stay feasible and agree
        // with the standalone (throwaway-solver) wrapper.
        let mut h = HomotopySolver::new(&p, options()).unwrap();
        let first = h.solve_constrained(lam * 1.5).unwrap();
        let second = h.solve_constrained(lam).unwrap();
        assert!(first.budget_used <= lam * 1.5 * (1.0 + 1e-6));
        assert!(second.budget_used <= lam * (1.0 + 1e-6));
        let standalone = solve_constrained(&p, lam, &options()).unwrap();
        // Same budget up to twice the bisection's own budget tolerance.
        let tol = 2.0 * options().budget_tolerance * lam + 1e-9;
        assert!(
            (second.budget_used - standalone.budget_used).abs() <= tol,
            "warm {} vs standalone {}", second.budget_used, standalone.budget_used
        );
    });
}
