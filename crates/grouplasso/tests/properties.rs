//! Property-based tests for the group-lasso solvers.

use proptest::prelude::*;
use voltsense_grouplasso::{
    kkt_violation, solve_constrained, solve_penalized, solve_penalized_fista, GlOptions,
    GlProblem,
};
use voltsense_linalg::Matrix;

/// Strategy: a random well-posed problem with M candidates, K targets,
/// N samples; targets are noisy linear mixes of the candidates, so the
/// problems resemble the real use case.
fn problem() -> impl Strategy<Value = GlProblem> {
    (
        2usize..5,
        1usize..4,
        8usize..16,
        proptest::collection::vec(-1.0..1.0f64, 200),
        proptest::collection::vec(-0.5..0.5f64, 40),
    )
        .prop_map(|(m, k, n, zdata, mix)| {
            let z = Matrix::from_vec(m, n, zdata[..m * n].to_vec()).expect("shape");
            // G = W Z + small structured perturbation.
            let w = Matrix::from_vec(k, m, mix[..k * m].to_vec()).expect("shape");
            let mut g = w.matmul(&z).expect("shapes agree");
            for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
                *v += 0.01 * ((i as f64) * 0.77).sin();
            }
            GlProblem::from_data(&z, &g).expect("valid problem")
        })
}

fn options() -> GlOptions {
    GlOptions {
        max_sweeps: 20_000,
        tolerance: 1e-9,
        ..GlOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bcd_satisfies_kkt(p in problem(), mu_frac in 0.05..0.9f64) {
        let mu = p.mu_max() * mu_frac;
        let sol = solve_penalized(&p, mu, &options(), None).unwrap();
        let v = kkt_violation(&p, &sol.beta, mu).unwrap();
        prop_assert!(v <= 1e-6 * p.mu_max().max(1.0), "violation {}", v);
    }

    #[test]
    fn bcd_and_fista_agree_on_objective(p in problem(), mu_frac in 0.1..0.8f64) {
        let mu = p.mu_max() * mu_frac;
        let bcd = solve_penalized(&p, mu, &options(), None).unwrap();
        let fista = solve_penalized_fista(&p, mu, &options(), None).unwrap();
        let scale = bcd.objective.abs().max(1.0);
        prop_assert!(
            (bcd.objective - fista.objective).abs() <= 1e-4 * scale,
            "bcd {} vs fista {}", bcd.objective, fista.objective
        );
    }

    #[test]
    fn budget_monotone_in_penalty(p in problem()) {
        let mus = [0.1, 0.3, 0.6, 0.9].map(|f| p.mu_max() * f);
        let mut prev = f64::INFINITY;
        for mu in mus {
            let b = solve_penalized(&p, mu, &options(), None).unwrap().budget();
            prop_assert!(b <= prev + 1e-9, "budget not monotone: {} then {}", prev, b);
            prev = b;
        }
    }

    #[test]
    fn above_mu_max_solution_is_zero(p in problem()) {
        let sol = solve_penalized(&p, p.mu_max() * 1.01 + 1e-12, &options(), None).unwrap();
        prop_assert!(sol.beta.max_abs() < 1e-10);
    }

    #[test]
    fn constrained_budget_feasible(p in problem(), lam in 0.05..2.0f64) {
        let sol = solve_constrained(&p, lam, &options()).unwrap();
        prop_assert!(sol.budget_used <= lam * (1.0 + 1e-6));
    }

    #[test]
    fn penalized_objective_optimal_vs_perturbations(p in problem(), mu_frac in 0.2..0.8f64) {
        // The solver's objective must not be improvable by simple scalings
        // of the solution (a weak but fully independent optimality probe).
        let mu = p.mu_max() * mu_frac;
        let sol = solve_penalized(&p, mu, &options(), None).unwrap();
        let obj = |beta: &Matrix| {
            let smooth = p.smooth_objective(beta).unwrap();
            let pen: f64 = (0..beta.cols())
                .map(|m| (0..beta.rows()).map(|k| beta[(k, m)].powi(2)).sum::<f64>().sqrt())
                .sum();
            smooth + mu * pen
        };
        let base = obj(&sol.beta);
        for scale in [0.9, 1.1, 0.5, 2.0] {
            let perturbed = sol.beta.scaled(scale);
            prop_assert!(obj(&perturbed) >= base - 1e-7 * base.abs().max(1.0));
        }
    }

    #[test]
    fn warm_start_agrees_with_cold(p in problem(), mu_frac in 0.2..0.7f64) {
        let mu = p.mu_max() * mu_frac;
        let other = solve_penalized(&p, mu * 1.3, &options(), None).unwrap();
        let warm = solve_penalized(&p, mu, &options(), Some(&other.beta)).unwrap();
        let cold = solve_penalized(&p, mu, &options(), None).unwrap();
        let scale = cold.objective.abs().max(1.0);
        prop_assert!((warm.objective - cold.objective).abs() <= 1e-5 * scale);
    }
}
