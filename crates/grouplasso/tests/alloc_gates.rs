//! Zero-allocation gate for the BCD steady-state inner loop.
//!
//! [`sweep_groups`] is the solver's hot path: one full pass of
//! group soft-threshold updates plus incremental gradient maintenance.
//! All of its state lives in caller-owned buffers, so a warm sweep must
//! allocate nothing — this gate pins that, catching regressions like a
//! temporary `Vec` per group or a `Matrix` clone per pass.

voltsense_telemetry::install_counting_allocator!();

use voltsense_grouplasso::{sweep_groups, GlProblem};
use voltsense_linalg::Matrix;
use voltsense_parallel::with_threads;
use voltsense_telemetry::alloc_gate;

/// Same shape as the solver's own toy problem: candidate 0 drives both
/// targets, candidate 1 is weak, candidate 2 is noise.
fn toy_problem() -> GlProblem {
    let z = Matrix::from_rows(&[
        &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
        &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
        &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
    ])
    .unwrap();
    let g = Matrix::from_rows(&[
        &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
        &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
    ])
    .unwrap();
    GlProblem::from_data(&z, &g).unwrap()
}

#[test]
fn sweep_groups_is_alloc_free() {
    with_threads(1, || {
        let p = toy_problem();
        let m_count = p.num_candidates();
        let k_count = p.num_targets();
        // Replicate solve_penalized's working-set setup: group-major
        // coefficient and gradient buffers, a scratch delta vector, and
        // the full group list (a full sweep visits and maintains all
        // rows, so the incremental gradient stays consistent across the
        // gate's iterations).
        let qt = p.q().transpose();
        let mut bt = Matrix::zeros(m_count, k_count);
        let mut gradt = Matrix::zeros(m_count, k_count);
        let mut delta = vec![0.0; k_count];
        let all: Vec<usize> = (0..m_count).collect();
        let mu = 0.25 * p.mu_max();
        alloc_gate!("grouplasso.sweep_groups", 32, || {
            sweep_groups(&mut bt, &mut gradt, &qt, p.s(), &mut delta, &all, &all, mu);
        });
        // The sweeps must also have made progress: at this penalty the
        // dominant group is active.
        assert!(bt.row(0).iter().any(|&v| v != 0.0), "sweeps left beta empty");
    });
}
