//! Multi-task group-lasso solvers for sensor selection.
//!
//! The paper's sensor-selection step (its Eq. 12) is the constrained
//! multi-task group lasso
//!
//! ```text
//! min_β ‖G − β Z‖_F    s.t.   Σ_m ‖β_m‖₂ ≤ λ
//! ```
//!
//! where `β_m` (column `m` of the `K x M` coefficient matrix) groups every
//! coefficient attached to sensor candidate `m`. The paper reformulates
//! this as an SOCP and hands it to an interior-point solver; this crate
//! instead solves the equivalent *penalized* problem
//!
//! ```text
//! min_β ½‖G − β Z‖_F² + μ Σ_m ‖β_m‖₂
//! ```
//!
//! by block coordinate descent ([`solve_penalized`]) — each column update
//! has the closed form `β_m = soft(c_m, μ) / S_mm` — and recovers the
//! constrained solution by a monotone bisection on `μ`
//! ([`solve_constrained`]), so `λ` keeps the paper's budget semantics.
//! A FISTA proximal-gradient solver ([`solve_penalized_fista`]) provides an
//! independent cross-check, and [`kkt_violation`] verifies optimality of
//! any solution.
//!
//! Sweeps over many penalties or budgets — the shape of every experiment
//! in the paper — should go through [`HomotopySolver`]: it chains warm
//! starts and recorded (μ, budget) probes across solves, so each sweep
//! point and each bisection step starts from the previous solution and
//! the tightest bracket the history supports. The BCD inner loop also
//! prunes to the active set between periodic full passes
//! ([`GlOptions::full_pass_interval`]), which is where most of the
//! sweep-level speedup comes from on correlated problems.
//!
//! Problems are stored in covariance form ([`GlProblem`]: `S = Z Zᵀ`,
//! `Q = G Zᵀ`), so solver cost is independent of the sample count `N`
//! after a one-time `O(M²N + KMN)` reduction — the right trade for
//! `N ≈ 10⁴` training maps.
//!
//! # Example
//!
//! ```
//! use voltsense_linalg::Matrix;
//! use voltsense_grouplasso::{GlProblem, solve_constrained, GlOptions};
//!
//! # fn main() -> Result<(), voltsense_grouplasso::GroupLassoError> {
//! // Two candidates; the target depends only on the first.
//! let z = Matrix::from_rows(&[
//!     &[1.0, -1.0, 0.5, -0.5, 1.5, -1.5],
//!     &[0.1, 0.2, -0.1, -0.2, 0.1, -0.1],
//! ])?;
//! let g = Matrix::from_rows(&[&[1.0, -1.0, 0.5, -0.5, 1.5, -1.5]])?;
//! let problem = GlProblem::from_data(&z, &g)?;
//! let sol = solve_constrained(&problem, 0.9, &GlOptions::default())?;
//! let norms = sol.solution.group_norms();
//! assert!(norms[0] > 0.5 && norms[1] < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bcd;
mod constrained;
mod cv;
mod error;
mod fista;
mod homotopy;
mod kkt;
mod path;
mod problem;

pub use bcd::{solve_penalized, GlOptions, GlSolution};
#[doc(hidden)]
pub use bcd::sweep_groups;
pub use constrained::{solve_constrained, ConstrainedSolution};
pub use cv::{cross_validate, CvResult};
pub use error::GroupLassoError;
pub use fista::solve_penalized_fista;
pub use homotopy::HomotopySolver;
pub use kkt::kkt_violation;
pub use path::{penalty_path, PathPoint};
pub use problem::GlProblem;
