use voltsense_linalg::Matrix;

use crate::GroupLassoError;

/// A multi-task group-lasso problem in covariance form.
///
/// Holds `S = Z Zᵀ` (`M x M` candidate Gram matrix), `Q = G Zᵀ`
/// (`K x M` target–candidate cross-products) and `‖G‖_F²`, which together
/// determine the objective
/// `½‖G − βZ‖² = ½(‖G‖² − 2⟨β, Q⟩ + ⟨βS, β⟩)` for any coefficient matrix
/// `β`. Solver cost after this reduction is independent of the sample
/// count.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct GlProblem {
    /// `Z Zᵀ`, `M x M`.
    s: Matrix,
    /// `G Zᵀ`, `K x M`.
    q: Matrix,
    /// `‖G‖_F²`.
    gg: f64,
    /// Number of samples the covariance form was reduced from (0 when
    /// constructed directly from covariance matrices).
    num_samples: usize,
}

impl GlProblem {
    /// Builds the problem from data matrices: `z` is `M x N` (normalized
    /// candidate voltages, one row per candidate), `g` is `K x N`
    /// (normalized critical-node voltages).
    ///
    /// # Errors
    ///
    /// * [`GroupLassoError::ShapeMismatch`] if the sample counts differ.
    /// * [`GroupLassoError::InvalidParameter`] if either matrix is empty.
    /// * [`GroupLassoError::NonFinite`] if any entry is NaN/infinite.
    pub fn from_data(z: &Matrix, g: &Matrix) -> Result<Self, GroupLassoError> {
        if z.cols() != g.cols() {
            return Err(GroupLassoError::ShapeMismatch {
                what: "sample count of Z and G",
                expected: z.cols(),
                actual: g.cols(),
            });
        }
        if z.rows() == 0 || g.rows() == 0 || z.cols() == 0 {
            return Err(GroupLassoError::InvalidParameter {
                what: format!(
                    "problem must be non-empty (Z is {}x{}, G is {}x{})",
                    z.rows(),
                    z.cols(),
                    g.rows(),
                    g.cols()
                ),
            });
        }
        if !z.is_finite() {
            return Err(GroupLassoError::NonFinite { what: "Z" });
        }
        if !g.is_finite() {
            return Err(GroupLassoError::NonFinite { what: "G" });
        }
        let s = z.gram();
        let q = g.matmul(&z.transpose())?;
        let gg = g.as_slice().iter().map(|x| x * x).sum();
        Ok(GlProblem {
            s,
            q,
            gg,
            num_samples: z.cols(),
        })
    }

    /// Builds the problem directly from covariance matrices `S = Z Zᵀ`
    /// (`M x M`, symmetric PSD) and `Q = G Zᵀ` (`K x M`), plus `‖G‖_F²`.
    ///
    /// # Errors
    ///
    /// * [`GroupLassoError::ShapeMismatch`] if `S` is not square or its
    ///   dimension differs from `Q`'s column count.
    /// * [`GroupLassoError::NonFinite`] on NaN/infinite entries or negative
    ///   `gg`.
    pub fn from_covariance(s: Matrix, q: Matrix, gg: f64) -> Result<Self, GroupLassoError> {
        if !s.is_square() {
            return Err(GroupLassoError::ShapeMismatch {
                what: "S squareness",
                expected: s.rows(),
                actual: s.cols(),
            });
        }
        if q.cols() != s.rows() {
            return Err(GroupLassoError::ShapeMismatch {
                what: "Q columns vs S dimension",
                expected: s.rows(),
                actual: q.cols(),
            });
        }
        if !s.is_finite() || !q.is_finite() || !gg.is_finite() || gg < 0.0 {
            return Err(GroupLassoError::NonFinite { what: "covariance input" });
        }
        Ok(GlProblem {
            s,
            q,
            gg,
            num_samples: 0,
        })
    }

    /// Number of sensor candidates `M`.
    pub fn num_candidates(&self) -> usize {
        self.s.rows()
    }

    /// Number of targets (critical nodes) `K`.
    pub fn num_targets(&self) -> usize {
        self.q.rows()
    }

    /// Sample count the problem was reduced from (0 if constructed from
    /// covariance form).
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// The candidate Gram matrix `S = Z Zᵀ`.
    pub fn s(&self) -> &Matrix {
        &self.s
    }

    /// The cross-product matrix `Q = G Zᵀ`.
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// `‖G‖_F²`.
    pub fn gg(&self) -> f64 {
        self.gg
    }

    /// Smooth part of the objective, `½‖G − βZ‖_F²`, for a `K x M`
    /// coefficient matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GroupLassoError::ShapeMismatch`] if `beta` is not `K x M`.
    pub fn smooth_objective(&self, beta: &Matrix) -> Result<f64, GroupLassoError> {
        self.check_beta(beta)?;
        let bs = beta.matmul(&self.s)?;
        let quad: f64 = bs
            .as_slice()
            .iter()
            .zip(beta.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let cross: f64 = self
            .q
            .as_slice()
            .iter()
            .zip(beta.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        Ok(0.5 * (self.gg - 2.0 * cross + quad))
    }

    /// Smallest penalty at which the all-zero solution is optimal:
    /// `μ_max = max_m ‖Q[:, m]‖₂`.
    pub fn mu_max(&self) -> f64 {
        (0..self.num_candidates())
            .map(|m| column_norm(&self.q, m))
            .fold(0.0, f64::max)
    }

    pub(crate) fn check_beta(&self, beta: &Matrix) -> Result<(), GroupLassoError> {
        if beta.rows() != self.num_targets() {
            return Err(GroupLassoError::ShapeMismatch {
                what: "beta rows",
                expected: self.num_targets(),
                actual: beta.rows(),
            });
        }
        if beta.cols() != self.num_candidates() {
            return Err(GroupLassoError::ShapeMismatch {
                what: "beta cols",
                expected: self.num_candidates(),
                actual: beta.cols(),
            });
        }
        Ok(())
    }
}

/// l2 norm of column `m` of a matrix.
pub(crate) fn column_norm(m: &Matrix, col: usize) -> f64 {
    m.col_iter(col).map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Matrix) {
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 2.0, -2.0],
            &[0.5, 0.5, -0.5, -0.5],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[&[1.0, 0.0, 1.0, 0.0], &[0.0, 1.0, 0.0, 1.0]]).unwrap();
        (z, g)
    }

    #[test]
    fn covariance_reduction_matches_definitions() {
        let (z, g) = toy();
        let p = GlProblem::from_data(&z, &g).unwrap();
        let s_ref = z.matmul(&z.transpose()).unwrap();
        let q_ref = g.matmul(&z.transpose()).unwrap();
        assert!(p.s().approx_eq(&s_ref, 1e-12));
        assert!(p.q().approx_eq(&q_ref, 1e-12));
        assert!((p.gg() - g.frobenius_norm().powi(2)).abs() < 1e-12);
        assert_eq!(p.num_candidates(), 2);
        assert_eq!(p.num_targets(), 2);
        assert_eq!(p.num_samples(), 4);
    }

    #[test]
    fn smooth_objective_matches_residual_norm() {
        let (z, g) = toy();
        let p = GlProblem::from_data(&z, &g).unwrap();
        let beta = Matrix::from_rows(&[&[0.3, -0.2], &[0.1, 0.4]]).unwrap();
        let resid = &g - &beta.matmul(&z).unwrap();
        let expected = 0.5 * resid.frobenius_norm().powi(2);
        let got = p.smooth_objective(&beta).unwrap();
        assert!((got - expected).abs() < 1e-10, "{got} vs {expected}");
    }

    #[test]
    fn zero_beta_objective_is_half_gg() {
        let (z, g) = toy();
        let p = GlProblem::from_data(&z, &g).unwrap();
        let beta = Matrix::zeros(2, 2);
        assert!((p.smooth_objective(&beta).unwrap() - 0.5 * p.gg()).abs() < 1e-12);
    }

    #[test]
    fn mu_max_is_largest_q_column_norm() {
        let (z, g) = toy();
        let p = GlProblem::from_data(&z, &g).unwrap();
        let q = p.q();
        let manual = (0..2)
            .map(|m| (0..2).map(|k| q[(k, m)].powi(2)).sum::<f64>().sqrt())
            .fold(0.0, f64::max);
        assert!((p.mu_max() - manual).abs() < 1e-12);
    }

    #[test]
    fn construction_errors() {
        let (z, g) = toy();
        let g_bad = Matrix::zeros(2, 3);
        assert!(GlProblem::from_data(&z, &g_bad).is_err());
        assert!(GlProblem::from_data(&Matrix::zeros(0, 4), &g).is_err());
        let mut z_nan = z.clone();
        z_nan[(0, 0)] = f64::NAN;
        assert!(matches!(
            GlProblem::from_data(&z_nan, &g),
            Err(GroupLassoError::NonFinite { .. })
        ));
    }

    #[test]
    fn from_covariance_validation() {
        let s = Matrix::identity(2);
        let q = Matrix::zeros(1, 2);
        assert!(GlProblem::from_covariance(s.clone(), q.clone(), 1.0).is_ok());
        assert!(GlProblem::from_covariance(Matrix::zeros(2, 3), q.clone(), 1.0).is_err());
        assert!(GlProblem::from_covariance(s.clone(), Matrix::zeros(1, 3), 1.0).is_err());
        assert!(GlProblem::from_covariance(s, q, -1.0).is_err());
    }

    #[test]
    fn beta_shape_checked() {
        let (z, g) = toy();
        let p = GlProblem::from_data(&z, &g).unwrap();
        assert!(p.smooth_objective(&Matrix::zeros(3, 2)).is_err());
        assert!(p.smooth_objective(&Matrix::zeros(2, 5)).is_err());
    }
}
