//! KKT optimality checking for penalized group-lasso solutions.

use voltsense_linalg::Matrix;

use crate::problem::{column_norm, GlProblem};
use crate::GroupLassoError;

/// Largest violation of the KKT conditions of
/// `min ½‖G − βZ‖² + μ Σ‖β_m‖₂` at `beta`.
///
/// For each group `m`, with smooth gradient column
/// `r_m = (βS − Q)[:, m]`:
///
/// * active group (`β_m ≠ 0`): stationarity requires
///   `r_m + μ β_m / ‖β_m‖ = 0`; the violation is that vector's norm;
/// * inactive group: subgradient feasibility requires `‖r_m‖ ≤ μ`; the
///   violation is `max(0, ‖r_m‖ − μ)`.
///
/// A correct solver drives this to (near) zero — used by tests to verify
/// both BCD and FISTA against the optimality conditions rather than
/// against each other alone.
///
/// # Errors
///
/// * [`GroupLassoError::ShapeMismatch`] if `beta` does not match the
///   problem.
/// * [`GroupLassoError::InvalidParameter`] for a negative/non-finite `μ`.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_grouplasso::{GlProblem, GlOptions, solve_penalized, kkt_violation};
///
/// # fn main() -> Result<(), voltsense_grouplasso::GroupLassoError> {
/// let z = Matrix::from_rows(&[&[1.0, -1.0, 0.5, -0.5]])?;
/// let g = Matrix::from_rows(&[&[0.9, -1.1, 0.4, -0.6]])?;
/// let p = GlProblem::from_data(&z, &g)?;
/// let sol = solve_penalized(&p, 0.1, &GlOptions::default(), None)?;
/// assert!(kkt_violation(&p, &sol.beta, 0.1)? < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn kkt_violation(
    problem: &GlProblem,
    beta: &Matrix,
    mu: f64,
) -> Result<f64, GroupLassoError> {
    problem.check_beta(beta)?;
    if !(mu >= 0.0) || !mu.is_finite() {
        return Err(GroupLassoError::InvalidParameter {
            what: format!("penalty mu must be finite and >= 0, got {mu}"),
        });
    }
    let grad = {
        let mut g = beta.matmul(problem.s())?;
        g -= problem.q();
        g
    };
    let k_count = problem.num_targets();
    let mut worst = 0.0_f64;
    for m in 0..problem.num_candidates() {
        let bnorm = column_norm(beta, m);
        let violation = if bnorm > 0.0 {
            // ‖r_m + μ β_m/‖β_m‖‖
            let mut acc = 0.0;
            for k in 0..k_count {
                let v = grad[(k, m)] + mu * beta[(k, m)] / bnorm;
                acc += v * v;
            }
            acc.sqrt()
        } else {
            (column_norm(&grad, m) - mu).max(0.0)
        };
        worst = worst.max(violation);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_penalized, solve_penalized_fista, GlOptions};

    fn toy_problem() -> GlProblem {
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2],
            &[0.4, 0.6, -0.5, -0.4, 0.3, -0.4],
            &[0.1, -0.2, 0.3, -0.1, 0.2, -0.3],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[0.9, -1.0, 0.7, -0.9, 1.1, -1.1],
            &[0.2, 0.4, -0.4, -0.2, 0.2, -0.2],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn bcd_solutions_satisfy_kkt() {
        let p = toy_problem();
        let opts = GlOptions {
            tolerance: 1e-12,
            max_sweeps: 10_000,
            ..GlOptions::default()
        };
        for &mu in &[0.05, 0.3, 1.0] {
            let sol = solve_penalized(&p, mu, &opts, None).unwrap();
            let v = kkt_violation(&p, &sol.beta, mu).unwrap();
            assert!(v < 1e-8, "mu={mu}: KKT violation {v}");
        }
    }

    #[test]
    fn fista_solutions_satisfy_kkt() {
        let p = toy_problem();
        let opts = GlOptions {
            tolerance: 1e-12,
            max_sweeps: 50_000,
            ..GlOptions::default()
        };
        let sol = solve_penalized_fista(&p, 0.3, &opts, None).unwrap();
        let v = kkt_violation(&p, &sol.beta, 0.3).unwrap();
        assert!(v < 1e-6, "KKT violation {v}");
    }

    #[test]
    fn zero_beta_kkt_holds_iff_mu_above_mu_max() {
        let p = toy_problem();
        let zero = Matrix::zeros(p.num_targets(), p.num_candidates());
        let above = kkt_violation(&p, &zero, p.mu_max() * 1.01).unwrap();
        assert!(above < 1e-12);
        let below = kkt_violation(&p, &zero, p.mu_max() * 0.5).unwrap();
        assert!(below > 0.0);
    }

    #[test]
    fn random_beta_violates() {
        let p = toy_problem();
        let junk = Matrix::filled(p.num_targets(), p.num_candidates(), 0.7);
        let v = kkt_violation(&p, &junk, 0.1).unwrap();
        assert!(v > 0.01);
    }

    #[test]
    fn bad_inputs_rejected() {
        let p = toy_problem();
        let beta = Matrix::zeros(p.num_targets(), p.num_candidates());
        assert!(kkt_violation(&p, &beta, -1.0).is_err());
        assert!(kkt_violation(&p, &Matrix::zeros(1, 1), 0.1).is_err());
    }
}
