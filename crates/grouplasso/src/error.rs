use std::error::Error;
use std::fmt;

use voltsense_linalg::LinalgError;

/// Error type for group-lasso problem construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GroupLassoError {
    /// Input matrices disagreed on a dimension.
    ShapeMismatch {
        /// Description of the failing check.
        what: &'static str,
        /// Expected value.
        expected: usize,
        /// Actual value.
        actual: usize,
    },
    /// A parameter (penalty, budget, tolerance) was out of range.
    InvalidParameter {
        /// Human-readable description.
        what: String,
    },
    /// Input contained NaN or infinity.
    NonFinite {
        /// Description of the offending input.
        what: &'static str,
    },
    /// The iterative solver hit its sweep limit before converging.
    DidNotConverge {
        /// Sweeps/iterations performed.
        iterations: usize,
        /// Final convergence measure (max coefficient change).
        residual: f64,
    },
    /// An underlying dense linear-algebra call failed.
    Linalg(LinalgError),
}

impl fmt::Display for GroupLassoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupLassoError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(f, "shape mismatch in {what}: expected {expected}, got {actual}"),
            GroupLassoError::InvalidParameter { what } => {
                write!(f, "invalid parameter: {what}")
            }
            GroupLassoError::NonFinite { what } => {
                write!(f, "non-finite value encountered in {what}")
            }
            GroupLassoError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} sweeps (residual {residual:.3e})"
            ),
            GroupLassoError::Linalg(e) => write!(f, "linear algebra failed: {e}"),
        }
    }
}

impl Error for GroupLassoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GroupLassoError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GroupLassoError {
    fn from(e: LinalgError) -> Self {
        GroupLassoError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = GroupLassoError::from(LinalgError::Singular { index: 2 });
        assert!(err.source().is_some());
        let err = GroupLassoError::DidNotConverge {
            iterations: 5,
            residual: 0.1,
        };
        assert!(err.to_string().contains("5 sweeps"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GroupLassoError>();
    }
}
