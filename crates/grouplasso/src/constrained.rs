//! Constrained-form group lasso via bisection on the penalty.
//!
//! The paper states its selection problem with an explicit budget
//! (`Σ‖β_m‖₂ ≤ λ`, Eq. 12). By Lagrangian duality the solution coincides
//! with a penalized solution for some `μ(λ) ≥ 0`, and the consumed budget
//! `Σ‖β_m(μ)‖₂` is monotone non-increasing in `μ`, so a bisection on `μ`
//! recovers the constrained solution exactly. This keeps the paper's `λ`
//! semantics (its Table 1 sweeps λ = 10…60) while using the fast BCD
//! solver.

use crate::bcd::{solve_penalized, GlOptions, GlSolution};
use crate::problem::GlProblem;
use crate::GroupLassoError;

/// Result of a constrained solve.
#[derive(Debug, Clone)]
pub struct ConstrainedSolution {
    /// The underlying penalized solution at the matched penalty.
    pub solution: GlSolution,
    /// The penalty `μ(λ)` found by bisection.
    pub mu: f64,
    /// The budget `Σ‖β_m‖₂` the solution actually consumes (≤ λ up to the
    /// budget tolerance).
    pub budget_used: f64,
}

/// Solves `min ‖G − βZ‖_F  s.t.  Σ‖β_m‖₂ ≤ λ`.
///
/// If the constraint is inactive (the unpenalized fit already satisfies
/// the budget), the bisection converges towards μ → 0 and returns that
/// loose solution.
///
/// # Errors
///
/// * [`GroupLassoError::InvalidParameter`] for `λ <= 0` or bad options.
/// * Propagates solver failures from the inner penalized solves.
///
/// See the [crate-level docs](crate) for an example.
pub fn solve_constrained(
    problem: &GlProblem,
    lambda: f64,
    options: &GlOptions,
) -> Result<ConstrainedSolution, GroupLassoError> {
    options.validate()?;
    if !(lambda > 0.0) || !lambda.is_finite() {
        return Err(GroupLassoError::InvalidParameter {
            what: format!("budget lambda must be finite and > 0, got {lambda}"),
        });
    }

    // μ = μ_max gives budget 0; bisect downwards from there.
    let mu_hi_start = problem.mu_max();
    if mu_hi_start == 0.0 {
        // Q = 0: the zero solution is optimal and consumes no budget.
        let solution = solve_penalized(problem, 0.0, options, None)?;
        let budget_used = solution.budget();
        return Ok(ConstrainedSolution {
            solution,
            mu: 0.0,
            budget_used,
        });
    }

    // Plain bisection from μ_max downward. No cold probe near μ = 0:
    // real sensor candidates are so correlated that an unregularized solve
    // from a zero warm start is the slowest problem in the whole pipeline.
    // Walking the midpoints down with warm starts visits small penalties
    // only through a chain of nearby problems, each of which converges
    // quickly. If the constraint turns out inactive, the bisection simply
    // converges to μ → 0 and returns the (feasible) loose solution.
    let mut lo = 0.0_f64; // budget(lo) > lambda (by convention; never solved)
    let mut hi = mu_hi_start; // budget(μ_max) = 0 <= lambda
    let mut warm: Option<voltsense_linalg::Matrix> = None;
    let mut best: Option<(GlSolution, f64)> = None;

    for _ in 0..options.max_bisections {
        let mid = 0.5 * (lo + hi);
        let sol = solve_penalized(problem, mid, options, warm.as_ref())?;
        let budget = sol.budget();
        warm = Some(sol.beta.clone());
        if budget <= lambda {
            // Feasible: remember the closest-to-budget feasible solution.
            let better = match &best {
                Some((_, b)) => budget > *b,
                None => true,
            };
            if better {
                best = Some((sol, budget));
            }
            hi = mid;
        } else {
            lo = mid;
        }
        if let Some((_, b)) = &best {
            if (lambda - b).abs() <= options.budget_tolerance * lambda {
                break;
            }
        }
    }

    let (solution, budget_used) = best.ok_or(GroupLassoError::DidNotConverge {
        iterations: options.max_bisections,
        residual: f64::INFINITY,
    })?;
    let mu = solution.mu;
    Ok(ConstrainedSolution {
        solution,
        mu,
        budget_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltsense_linalg::Matrix;

    fn toy_problem() -> GlProblem {
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
            &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn budget_is_respected_and_nearly_tight() {
        let p = toy_problem();
        for &lambda in &[0.3, 0.8, 1.5] {
            let sol = solve_constrained(&p, lambda, &GlOptions::default()).unwrap();
            assert!(
                sol.budget_used <= lambda * (1.0 + 1e-9),
                "λ={lambda}: budget {} exceeds",
                sol.budget_used
            );
            // Active constraint: the solver should use almost all of it.
            assert!(
                sol.budget_used >= lambda * 0.995,
                "λ={lambda}: budget {} too slack",
                sol.budget_used
            );
        }
    }

    #[test]
    fn large_budget_leaves_constraint_inactive() {
        let p = toy_problem();
        let sol = solve_constrained(&p, 1e6, &GlOptions::default()).unwrap();
        // μ is (essentially) zero and the residual is the OLS one.
        assert!(sol.mu <= p.mu_max() * 1e-8);
        assert!(sol.budget_used < 1e6);
    }

    #[test]
    fn more_budget_activates_more_sensors() {
        let p = toy_problem();
        let small = solve_constrained(&p, 0.2, &GlOptions::default()).unwrap();
        let large = solve_constrained(&p, 2.0, &GlOptions::default()).unwrap();
        let q_small = small.solution.selected(1e-8).len();
        let q_large = large.solution.selected(1e-8).len();
        assert!(q_small <= q_large, "{q_small} > {q_large}");
        assert!(q_small >= 1);
    }

    #[test]
    fn objective_improves_with_budget() {
        let p = toy_problem();
        let small = solve_constrained(&p, 0.2, &GlOptions::default()).unwrap();
        let large = solve_constrained(&p, 1.5, &GlOptions::default()).unwrap();
        let fit_small = p.smooth_objective(&small.solution.beta).unwrap();
        let fit_large = p.smooth_objective(&large.solution.beta).unwrap();
        assert!(fit_large <= fit_small + 1e-10);
    }

    #[test]
    fn invalid_lambda_rejected() {
        let p = toy_problem();
        assert!(solve_constrained(&p, 0.0, &GlOptions::default()).is_err());
        assert!(solve_constrained(&p, -1.0, &GlOptions::default()).is_err());
        assert!(solve_constrained(&p, f64::NAN, &GlOptions::default()).is_err());
    }

    #[test]
    fn zero_signal_problem_returns_zero() {
        // G uncorrelated with Z in expectation — here exactly zero Q.
        let z = Matrix::from_rows(&[&[1.0, -1.0, 1.0, -1.0]]).unwrap();
        let g = Matrix::from_rows(&[&[1.0, 1.0, -1.0, -1.0]]).unwrap();
        let p = GlProblem::from_data(&z, &g).unwrap();
        assert_eq!(p.mu_max(), 0.0);
        let sol = solve_constrained(&p, 1.0, &GlOptions::default()).unwrap();
        assert!(sol.solution.beta.max_abs() < 1e-12);
    }
}
