//! Constrained-form group lasso via bisection on the penalty.
//!
//! The paper states its selection problem with an explicit budget
//! (`Σ‖β_m‖₂ ≤ λ`, Eq. 12). By Lagrangian duality the solution coincides
//! with a penalized solution for some `μ(λ) ≥ 0`, and the consumed budget
//! `Σ‖β_m(μ)‖₂` is monotone non-increasing in `μ`, so a bisection on `μ`
//! recovers the constrained solution exactly. This keeps the paper's `λ`
//! semantics (its Table 1 sweeps λ = 10…60) while using the fast BCD
//! solver.

use crate::bcd::{GlOptions, GlSolution};
use crate::homotopy::HomotopySolver;
use crate::problem::GlProblem;
use crate::GroupLassoError;

/// Result of a constrained solve.
#[derive(Debug, Clone)]
pub struct ConstrainedSolution {
    /// The underlying penalized solution at the matched penalty.
    pub solution: GlSolution,
    /// The penalty `μ(λ)` found by bisection.
    pub mu: f64,
    /// The budget `Σ‖β_m‖₂` the solution actually consumes (≤ λ up to the
    /// budget tolerance).
    pub budget_used: f64,
}

/// Solves `min ‖G − βZ‖_F  s.t.  Σ‖β_m‖₂ ≤ λ`.
///
/// If the constraint is inactive (the unpenalized fit already satisfies
/// the budget), the bisection detects the stagnating budget and returns
/// the loose solution early.
///
/// This is a convenience wrapper creating a throwaway [`HomotopySolver`];
/// sweeping several budgets over one problem is much cheaper through a
/// shared solver (see [`HomotopySolver::solve_constrained`]).
///
/// # Errors
///
/// * [`GroupLassoError::InvalidParameter`] for `λ <= 0` or bad options.
/// * Propagates solver failures from the inner penalized solves.
///
/// See the [crate-level docs](crate) for an example.
pub fn solve_constrained(
    problem: &GlProblem,
    lambda: f64,
    options: &GlOptions,
) -> Result<ConstrainedSolution, GroupLassoError> {
    HomotopySolver::new(problem, options.clone())?.solve_constrained(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltsense_linalg::Matrix;

    fn toy_problem() -> GlProblem {
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
            &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn budget_is_respected_and_nearly_tight() {
        let p = toy_problem();
        for &lambda in &[0.3, 0.8, 1.5] {
            let sol = solve_constrained(&p, lambda, &GlOptions::default()).unwrap();
            assert!(
                sol.budget_used <= lambda * (1.0 + 1e-9),
                "λ={lambda}: budget {} exceeds",
                sol.budget_used
            );
            // Active constraint: the solver should use almost all of it.
            assert!(
                sol.budget_used >= lambda * 0.995,
                "λ={lambda}: budget {} too slack",
                sol.budget_used
            );
        }
    }

    #[test]
    fn large_budget_leaves_constraint_inactive() {
        let p = toy_problem();
        let opts = GlOptions::default();
        let mut h = HomotopySolver::new(&p, opts.clone()).unwrap();
        let sol = h.solve_constrained(1e6).unwrap();
        // The budget-stagnation exit fires long before the bisection
        // budget is exhausted: every midpoint is feasible and the budget
        // stops moving once μ is small, so burning all `max_bisections`
        // solves (the pre-fix behaviour) buys nothing.
        assert!(
            h.num_solves() < opts.max_bisections / 2,
            "inactive constraint took {} of {} solves",
            h.num_solves(),
            opts.max_bisections
        );
        assert!(sol.budget_used < 1e6);
        // μ has collapsed far enough that the fit is essentially the
        // unpenalized one: resolving at μ → 0 cannot improve it much.
        let loose = p.smooth_objective(&sol.solution.beta).unwrap();
        let ols_sol = crate::solve_penalized(&p, 0.0, &opts, None).unwrap();
        let ols = p.smooth_objective(&ols_sol.beta).unwrap();
        assert!(
            loose <= ols + 1e-3 * p.gg(),
            "loose fit {loose} far from unpenalized fit {ols}"
        );
    }

    #[test]
    fn tiny_budget_returns_feasible_zero_instead_of_failing() {
        // Regression: with λ tiny every sampled midpoint is infeasible, so
        // the pre-fix bisection never populated its feasible incumbent and
        // returned a spurious `DidNotConverge`. The μ_max zero solution is
        // always feasible (budget 0 ≤ λ) and must be returned instead.
        let p = toy_problem();
        let opts = GlOptions {
            max_bisections: 4,
            ..GlOptions::default()
        };
        let sol = solve_constrained(&p, 1e-12, &opts).expect("tiny budget must not fail");
        assert!(sol.budget_used <= 1e-12);
        assert!(sol.solution.converged);
        assert_eq!(sol.solution.kkt_residual, 0.0);
    }

    #[test]
    fn more_budget_activates_more_sensors() {
        let p = toy_problem();
        let small = solve_constrained(&p, 0.2, &GlOptions::default()).unwrap();
        let large = solve_constrained(&p, 2.0, &GlOptions::default()).unwrap();
        let q_small = small.solution.selected(1e-8).len();
        let q_large = large.solution.selected(1e-8).len();
        assert!(q_small <= q_large, "{q_small} > {q_large}");
        assert!(q_small >= 1);
    }

    #[test]
    fn objective_improves_with_budget() {
        let p = toy_problem();
        let small = solve_constrained(&p, 0.2, &GlOptions::default()).unwrap();
        let large = solve_constrained(&p, 1.5, &GlOptions::default()).unwrap();
        let fit_small = p.smooth_objective(&small.solution.beta).unwrap();
        let fit_large = p.smooth_objective(&large.solution.beta).unwrap();
        assert!(fit_large <= fit_small + 1e-10);
    }

    #[test]
    fn invalid_lambda_rejected() {
        let p = toy_problem();
        assert!(solve_constrained(&p, 0.0, &GlOptions::default()).is_err());
        assert!(solve_constrained(&p, -1.0, &GlOptions::default()).is_err());
        assert!(solve_constrained(&p, f64::NAN, &GlOptions::default()).is_err());
    }

    #[test]
    fn zero_signal_problem_returns_zero() {
        // G uncorrelated with Z in expectation — here exactly zero Q.
        let z = Matrix::from_rows(&[&[1.0, -1.0, 1.0, -1.0]]).unwrap();
        let g = Matrix::from_rows(&[&[1.0, 1.0, -1.0, -1.0]]).unwrap();
        let p = GlProblem::from_data(&z, &g).unwrap();
        assert_eq!(p.mu_max(), 0.0);
        let sol = solve_constrained(&p, 1.0, &GlOptions::default()).unwrap();
        assert!(sol.solution.beta.max_abs() < 1e-12);
    }
}
