//! Penalty-path sweeps with warm starts.
//!
//! The paper's Section 2.4 sweeps λ over a large range to explore the
//! sensor-count / accuracy trade-off (its Table 1). [`penalty_path`]
//! computes the whole path efficiently: each μ is solved warm-started from
//! the previous solution, which is dramatically cheaper than independent
//! cold solves.

use crate::bcd::GlOptions;
use crate::homotopy::HomotopySolver;
use crate::problem::GlProblem;
use crate::GroupLassoError;

/// One point on a penalty path.
#[derive(Debug, Clone)]
pub struct PathPoint {
    /// The penalty this point was solved at.
    pub mu: f64,
    /// Per-candidate group norms `‖β_m‖₂`.
    pub group_norms: Vec<f64>,
    /// Budget `Σ‖β_m‖₂`.
    pub budget: f64,
    /// Number of candidates with group norm above `threshold`.
    pub num_selected: usize,
    /// Smooth data-fit part of the objective, `½‖G − βZ‖²`.
    pub fit: f64,
}

/// Solves the penalized problem at each `mu` in `mus` (any order; they are
/// processed from largest to smallest for warm-start efficiency, and the
/// results are returned in the caller's order). Duplicate penalties are
/// solved once and their [`PathPoint`] reused.
///
/// `threshold` is the selection threshold `T` used to count active
/// sensors per point.
///
/// # Errors
///
/// * [`GroupLassoError::InvalidParameter`] if `mus` is empty or contains a
///   negative/non-finite value, or if `threshold` is negative.
/// * Propagates inner solver failures.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_grouplasso::{GlProblem, GlOptions, penalty_path};
///
/// # fn main() -> Result<(), voltsense_grouplasso::GroupLassoError> {
/// let z = Matrix::from_rows(&[&[1.0, -1.0, 0.5, -0.5]])?;
/// let g = Matrix::from_rows(&[&[0.9, -1.1, 0.4, -0.6]])?;
/// let p = GlProblem::from_data(&z, &g)?;
/// let path = penalty_path(&p, &[0.01, 0.1, 1.0], 1e-3, &GlOptions::default())?;
/// // Sparsity is monotone along the path.
/// assert!(path[0].num_selected >= path[2].num_selected);
/// # Ok(())
/// # }
/// ```
pub fn penalty_path(
    problem: &GlProblem,
    mus: &[f64],
    threshold: f64,
    options: &GlOptions,
) -> Result<Vec<PathPoint>, GroupLassoError> {
    HomotopySolver::new(problem, options.clone())?.path(mus, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_penalized;
    use voltsense_linalg::Matrix;

    fn toy_problem() -> GlProblem {
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
            &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn path_is_monotone_in_budget_and_selection() {
        let p = toy_problem();
        let mus = [0.01, 0.1, 0.5, 1.5, 4.0];
        let path = penalty_path(&p, &mus, 1e-8, &GlOptions::default()).unwrap();
        for w in path.windows(2) {
            assert!(w[0].budget >= w[1].budget - 1e-9);
            assert!(w[0].num_selected >= w[1].num_selected);
            assert!(w[0].fit <= w[1].fit + 1e-9);
        }
    }

    #[test]
    fn results_follow_caller_order() {
        let p = toy_problem();
        let mus = [1.0, 0.05, 0.4];
        let path = penalty_path(&p, &mus, 1e-8, &GlOptions::default()).unwrap();
        assert_eq!(path.len(), 3);
        for (pt, &mu) in path.iter().zip(&mus) {
            assert_eq!(pt.mu, mu);
        }
    }

    #[test]
    fn path_matches_cold_solves() {
        let p = toy_problem();
        let mus = [0.2, 0.8];
        let path = penalty_path(&p, &mus, 1e-8, &GlOptions::default()).unwrap();
        for (pt, &mu) in path.iter().zip(&mus) {
            let cold = solve_penalized(&p, mu, &GlOptions::default(), None).unwrap();
            let cold_budget = cold.budget();
            assert!(
                (pt.budget - cold_budget).abs() < 1e-6,
                "mu={mu}: warm {} vs cold {cold_budget}",
                pt.budget
            );
        }
    }

    #[test]
    fn duplicate_penalties_solved_once() {
        let p = toy_problem();
        let mus = [0.1, 0.1, 1.0];
        let path = penalty_path(&p, &mus, 1e-8, &GlOptions::default()).unwrap();
        assert_eq!(path.len(), 3);
        for (pt, &mu) in path.iter().zip(&mus) {
            assert_eq!(pt.mu, mu);
        }
        // The duplicated points are literally the same solve's numbers.
        assert_eq!(path[0].group_norms, path[1].group_norms);
        assert_eq!(path[0].fit, path[1].fit);
        // And the dedup really skips the second solve.
        let mut h = crate::HomotopySolver::new(&p, GlOptions::default()).unwrap();
        h.path(&mus, 1e-8).unwrap();
        assert_eq!(h.num_solves(), 2, "three points must come from two solves");
    }

    #[test]
    fn bad_inputs_rejected() {
        let p = toy_problem();
        assert!(penalty_path(&p, &[], 1e-3, &GlOptions::default()).is_err());
        assert!(penalty_path(&p, &[-0.1], 1e-3, &GlOptions::default()).is_err());
        assert!(penalty_path(&p, &[0.1], -1.0, &GlOptions::default()).is_err());
    }
}
