//! Block coordinate descent for the penalized multi-task group lasso.

use voltsense_linalg::Matrix;
use voltsense_telemetry as telemetry;

use crate::problem::{column_norm, GlProblem};
use crate::GroupLassoError;

/// Solver options shared by the BCD and FISTA solvers and the constrained
/// bisection.
#[derive(Debug, Clone, PartialEq)]
pub struct GlOptions {
    /// Maximum BCD sweeps (or FISTA iterations).
    pub max_sweeps: usize,
    /// Convergence tolerance: BCD stops when the worst per-group KKT
    /// violation falls below `tolerance * μ_max`; FISTA stops on the
    /// relative iterate change falling below `tolerance`.
    pub tolerance: f64,
    /// Maximum bisection steps for the constrained solver.
    pub max_bisections: usize,
    /// Relative tolerance on the budget match for the constrained solver.
    pub budget_tolerance: f64,
}

impl Default for GlOptions {
    fn default() -> Self {
        GlOptions {
            max_sweeps: 4000,
            tolerance: 3e-5,
            max_bisections: 60,
            budget_tolerance: 1e-4,
        }
    }
}

impl GlOptions {
    pub(crate) fn validate(&self) -> Result<(), GroupLassoError> {
        if self.max_sweeps == 0
            || !(self.tolerance > 0.0)
            || self.max_bisections == 0
            || !(self.budget_tolerance > 0.0)
        {
            return Err(GroupLassoError::InvalidParameter {
                what: format!("solver options out of range: {self:?}"),
            });
        }
        Ok(())
    }
}

/// A penalized group-lasso solution.
#[derive(Debug, Clone)]
pub struct GlSolution {
    /// Coefficients `β` (`K x M`).
    pub beta: Matrix,
    /// Penalty `μ` the problem was solved at.
    pub mu: f64,
    /// Value of the penalized objective at `beta`.
    pub objective: f64,
    /// Sweeps used.
    pub sweeps: usize,
    /// `true` if the KKT tolerance was met within the sweep limit; when
    /// `false`, `kkt_residual` says how far off the returned best-effort
    /// solution is.
    pub converged: bool,
    /// Final worst per-group KKT violation relative to `μ_max`.
    pub kkt_residual: f64,
}

impl GlSolution {
    /// The per-candidate group norms `‖β_m‖₂` — the quantities thresholded
    /// for sensor selection (the paper's Fig. 1).
    pub fn group_norms(&self) -> Vec<f64> {
        (0..self.beta.cols())
            .map(|m| column_norm(&self.beta, m))
            .collect()
    }

    /// Total budget `Σ_m ‖β_m‖₂` consumed by this solution.
    pub fn budget(&self) -> f64 {
        self.group_norms().iter().sum()
    }

    /// Indices of candidates whose group norm exceeds `threshold`
    /// (the paper's Step 5 with `T = threshold`).
    pub fn selected(&self, threshold: f64) -> Vec<usize> {
        self.group_norms()
            .iter()
            .enumerate()
            .filter(|&(_, n)| *n > threshold)
            .map(|(m, _)| m)
            .collect()
    }
}

/// Solves `min_β ½‖G − βZ‖² + μ Σ ‖β_m‖₂` by cyclic block coordinate
/// descent with closed-form column updates.
///
/// `warm_start` (if given) must be `K x M`; warm starting is what makes
/// the λ-path sweep and the constrained bisection cheap.
///
/// # Errors
///
/// * [`GroupLassoError::InvalidParameter`] for a negative/non-finite `μ`
///   or bad options.
/// * [`GroupLassoError::ShapeMismatch`] for a wrong warm start.
///
/// Hitting the sweep limit is *not* an error: sensor candidates on a real
/// power grid are so strongly correlated that the tail of the BCD
/// convergence is slow while the selected support is long stable. The
/// returned solution carries `converged = false` and its final
/// `kkt_residual` instead.
///
/// See the [crate-level docs](crate) for an example.
pub fn solve_penalized(
    problem: &GlProblem,
    mu: f64,
    options: &GlOptions,
    warm_start: Option<&Matrix>,
) -> Result<GlSolution, GroupLassoError> {
    options.validate()?;
    if !(mu >= 0.0) || !mu.is_finite() {
        return Err(GroupLassoError::InvalidParameter {
            what: format!("penalty mu must be finite and >= 0, got {mu}"),
        });
    }
    let m_count = problem.num_candidates();
    let k_count = problem.num_targets();
    let s = problem.s();
    let q = problem.q();

    let mut beta = match warm_start {
        Some(b) => {
            problem.check_beta(b)?;
            b.clone()
        }
        None => Matrix::zeros(k_count, m_count),
    };

    // Maintain grad = β S incrementally: a column update of β by δ adds
    // δ ⊗ S[m, :] — and δ = 0 (the common case for sparse solutions) is
    // free. This keeps a full sweep at O(K·M·#active) instead of O(K·M²).
    let mut grad = beta.matmul(s)?;
    let mut delta = vec![0.0; k_count];

    // Convergence is judged on the KKT violation (computable for free from
    // the maintained gradient), scaled by μ_max — a coefficient-change
    // criterion stalls on near-collinear candidate groups.
    let kkt_scale = problem.mu_max().max(f64::MIN_POSITIVE);

    let mut sweeps = 0;
    let (converged, kkt_residual) = loop {
        sweeps += 1;
        let mut worst_kkt = 0.0_f64;
        for m in 0..m_count {
            let smm = s[(m, m)];
            // c_m = Q[:,m] − (βS)[:,m] + β_m S_mm  (partial residual corr.)
            // Strided column iterators avoid re-deriving the flat offset
            // per entry and allocate nothing.
            let mut c_norm_sq = 0.0;
            for (d, ((qv, gv), bv)) in delta
                .iter_mut()
                .zip(q.col_iter(m).zip(grad.col_iter(m)).zip(beta.col_iter(m)))
            {
                let c = qv - gv + bv * smm;
                *d = c;
                c_norm_sq += c * c;
            }
            let c_norm = c_norm_sq.sqrt();
            // Closed-form group soft threshold.
            let scale = if smm <= 0.0 || c_norm <= mu {
                0.0
            } else {
                (1.0 - mu / c_norm) / smm
            };
            // KKT violation of this group *before* its update: the update
            // drives it to zero, so measuring pre-update violations over a
            // full sweep bounds the solution quality.
            let bnorm_old: f64 = beta.col_iter(m).map(|b| b * b).sum::<f64>().sqrt();
            let violation = if bnorm_old > 0.0 {
                // r_m + μ β_m/‖β_m‖ where r_m = (βS − Q)[:,m]
                let mut acc = 0.0;
                for ((gv, qv), bv) in
                    grad.col_iter(m).zip(q.col_iter(m)).zip(beta.col_iter(m))
                {
                    let r = gv - qv + mu * bv / bnorm_old;
                    acc += r * r;
                }
                acc.sqrt()
            } else {
                (c_norm - mu).max(0.0)
            };
            worst_kkt = worst_kkt.max(violation);

            // δ = new β_m − old β_m; apply and update grad lazily.
            let mut changed = false;
            for k in 0..k_count {
                let new = scale * delta[k];
                let d = new - beta[(k, m)];
                if d != 0.0 {
                    changed = true;
                }
                delta[k] = d;
                beta[(k, m)] = new;
            }
            if changed {
                for k in 0..k_count {
                    let d = delta[k];
                    if d == 0.0 {
                        continue;
                    }
                    let grow = grad.row_mut(k);
                    for (g, &smj) in grow.iter_mut().zip(s.row(m)) {
                        *g += d * smj;
                    }
                }
            }
        }
        // Convergence telemetry: the KKT residual falls out of the sweep for
        // free, but the objective costs a matmul — only pay it for a
        // full-detail capture, never for the always-on flight recorder.
        if telemetry::detailed() {
            let smooth = problem.smooth_objective(&beta)?;
            let penalty: f64 =
                (0..m_count).map(|m| column_norm(&beta, m)).sum::<f64>() * mu;
            let active = (0..m_count).filter(|&m| column_norm(&beta, m) > 0.0).count();
            telemetry::event(
                "bcd.sweep",
                &[
                    ("objective", smooth + penalty),
                    ("kkt_residual", worst_kkt / kkt_scale),
                    ("active_groups", active as f64),
                ],
            );
        }
        if worst_kkt <= options.tolerance * kkt_scale {
            break (true, worst_kkt / kkt_scale);
        }
        if sweeps >= options.max_sweeps {
            break (false, worst_kkt / kkt_scale);
        }
    };
    telemetry::counter("bcd.solves", 1);
    telemetry::histogram("bcd.sweeps", sweeps as f64, "sweeps");

    let smooth = problem.smooth_objective(&beta)?;
    let penalty: f64 = (0..m_count).map(|m| column_norm(&beta, m)).sum::<f64>() * mu;
    Ok(GlSolution {
        beta,
        mu,
        objective: smooth + penalty,
        sweeps,
        converged,
        kkt_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> GlProblem {
        // Candidate 0 drives both targets; candidate 1 is weak; candidate 2
        // is pure noise.
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
            &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn zero_penalty_fits_targets_well() {
        let p = toy_problem();
        let sol = solve_penalized(&p, 0.0, &GlOptions::default(), None).unwrap();
        // Residual must be tiny: targets are (nearly) in the candidate span.
        assert!(sol.objective < 0.05, "objective {}", sol.objective);
    }

    #[test]
    fn huge_penalty_gives_zero_solution() {
        let p = toy_problem();
        let mu = p.mu_max() * 1.001;
        let sol = solve_penalized(&p, mu, &GlOptions::default(), None).unwrap();
        assert!(sol.beta.max_abs() < 1e-12);
        assert_eq!(sol.budget(), 0.0);
    }

    #[test]
    fn just_below_mu_max_activates_one_group() {
        let p = toy_problem();
        let sol =
            solve_penalized(&p, p.mu_max() * 0.97, &GlOptions::default(), None).unwrap();
        let active = sol.selected(1e-10).len();
        assert_eq!(active, 1, "norms: {:?}", sol.group_norms());
    }

    #[test]
    fn budget_decreases_with_penalty() {
        let p = toy_problem();
        let b1 = solve_penalized(&p, 0.1, &GlOptions::default(), None)
            .unwrap()
            .budget();
        let b2 = solve_penalized(&p, 1.0, &GlOptions::default(), None)
            .unwrap()
            .budget();
        let b3 = solve_penalized(&p, 3.0, &GlOptions::default(), None)
            .unwrap()
            .budget();
        assert!(b1 > b2 && b2 > b3, "{b1} {b2} {b3}");
    }

    #[test]
    fn noise_candidate_is_dropped_first() {
        let p = toy_problem();
        let sol = solve_penalized(&p, 0.8, &GlOptions::default(), None).unwrap();
        let norms = sol.group_norms();
        // Candidate 2 (noise) must have (near-)zero weight while at least
        // one informative candidate stays active.
        assert!(norms[2] < 1e-8, "noise candidate kept: {norms:?}");
        assert!(norms[0] + norms[1] > 0.1);
    }

    #[test]
    fn warm_start_converges_faster() {
        let p = toy_problem();
        let cold = solve_penalized(&p, 0.5, &GlOptions::default(), None).unwrap();
        let warm =
            solve_penalized(&p, 0.55, &GlOptions::default(), Some(&cold.beta)).unwrap();
        let cold2 = solve_penalized(&p, 0.55, &GlOptions::default(), None).unwrap();
        assert!(warm.sweeps <= cold2.sweeps);
        assert!((warm.objective - cold2.objective).abs() < 1e-6);
    }

    #[test]
    fn objective_never_increases_with_more_sweeps() {
        // Run with loose then tight tolerance; objective must not go up.
        let p = toy_problem();
        let loose = solve_penalized(
            &p,
            0.3,
            &GlOptions {
                tolerance: 1e-2,
                ..GlOptions::default()
            },
            None,
        )
        .unwrap();
        let tight = solve_penalized(&p, 0.3, &GlOptions::default(), None).unwrap();
        assert!(tight.objective <= loose.objective + 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let p = toy_problem();
        assert!(solve_penalized(&p, -1.0, &GlOptions::default(), None).is_err());
        assert!(solve_penalized(&p, f64::NAN, &GlOptions::default(), None).is_err());
        let bad = GlOptions {
            max_sweeps: 0,
            ..GlOptions::default()
        };
        assert!(solve_penalized(&p, 0.1, &bad, None).is_err());
        let wrong_warm = Matrix::zeros(1, 1);
        assert!(solve_penalized(&p, 0.1, &GlOptions::default(), Some(&wrong_warm)).is_err());
    }

    #[test]
    fn selected_respects_threshold() {
        let p = toy_problem();
        let sol = solve_penalized(&p, 0.2, &GlOptions::default(), None).unwrap();
        let all = sol.selected(0.0);
        let none = sol.selected(f64::INFINITY);
        assert!(all.len() >= none.len());
        assert!(none.is_empty());
    }
}
