//! Block coordinate descent for the penalized multi-task group lasso.

use voltsense_linalg::Matrix;
use voltsense_telemetry as telemetry;

use crate::problem::{column_norm, GlProblem};
use crate::GroupLassoError;

/// Solver options shared by the BCD and FISTA solvers and the constrained
/// bisection.
#[derive(Debug, Clone, PartialEq)]
pub struct GlOptions {
    /// Maximum BCD sweeps (or FISTA iterations).
    pub max_sweeps: usize,
    /// Convergence tolerance: BCD stops when the worst per-group KKT
    /// violation falls below `tolerance * μ_max`; FISTA stops on the
    /// relative iterate change falling below `tolerance`.
    pub tolerance: f64,
    /// Maximum bisection steps for the constrained solver.
    pub max_bisections: usize,
    /// Relative tolerance on the budget match for the constrained solver.
    pub budget_tolerance: f64,
    /// Active-set pruning cadence for BCD: between full sweeps, up to this
    /// many sweeps touch only the groups in the current support. `0`
    /// disables pruning (every sweep visits every group — the legacy
    /// cold full-sweep behaviour). Convergence is only ever declared from
    /// a full pass over **all** groups, so the returned
    /// `converged`/`kkt_residual` contract is identical either way.
    pub full_pass_interval: usize,
}

impl Default for GlOptions {
    fn default() -> Self {
        GlOptions {
            max_sweeps: 4000,
            tolerance: 3e-5,
            max_bisections: 60,
            budget_tolerance: 1e-4,
            full_pass_interval: 8,
        }
    }
}

impl GlOptions {
    pub(crate) fn validate(&self) -> Result<(), GroupLassoError> {
        if self.max_sweeps == 0
            || !(self.tolerance > 0.0)
            || self.max_bisections == 0
            || !(self.budget_tolerance > 0.0)
        {
            return Err(GroupLassoError::InvalidParameter {
                what: format!("solver options out of range: {self:?}"),
            });
        }
        Ok(())
    }
}

/// A penalized group-lasso solution.
#[derive(Debug, Clone)]
pub struct GlSolution {
    /// Coefficients `β` (`K x M`).
    pub beta: Matrix,
    /// Penalty `μ` the problem was solved at.
    pub mu: f64,
    /// Value of the penalized objective at `beta`.
    pub objective: f64,
    /// Sweeps used.
    pub sweeps: usize,
    /// `true` if the KKT tolerance was met within the sweep limit; when
    /// `false`, `kkt_residual` says how far off the returned best-effort
    /// solution is.
    pub converged: bool,
    /// Final worst per-group KKT violation relative to `μ_max`.
    pub kkt_residual: f64,
}

impl GlSolution {
    /// The per-candidate group norms `‖β_m‖₂` — the quantities thresholded
    /// for sensor selection (the paper's Fig. 1).
    pub fn group_norms(&self) -> Vec<f64> {
        (0..self.beta.cols())
            .map(|m| column_norm(&self.beta, m))
            .collect()
    }

    /// Total budget `Σ_m ‖β_m‖₂` consumed by this solution.
    pub fn budget(&self) -> f64 {
        self.group_norms().iter().sum()
    }

    /// Indices of candidates whose group norm exceeds `threshold`
    /// (the paper's Step 5 with `T = threshold`).
    pub fn selected(&self, threshold: f64) -> Vec<usize> {
        self.group_norms()
            .iter()
            .enumerate()
            .filter(|&(_, n)| *n > threshold)
            .map(|(m, _)| m)
            .collect()
    }
}

/// Solves `min_β ½‖G − βZ‖² + μ Σ ‖β_m‖₂` by cyclic block coordinate
/// descent with closed-form column updates.
///
/// `warm_start` (if given) must be `K x M`; warm starting is what makes
/// the λ-path sweep and the constrained bisection cheap.
///
/// # Errors
///
/// * [`GroupLassoError::InvalidParameter`] for a negative/non-finite `μ`
///   or bad options.
/// * [`GroupLassoError::ShapeMismatch`] for a wrong warm start.
///
/// Hitting the sweep limit is *not* an error: sensor candidates on a real
/// power grid are so strongly correlated that the tail of the BCD
/// convergence is slow while the selected support is long stable. The
/// returned solution carries `converged = false` and its final
/// `kkt_residual` instead.
///
/// See the [crate-level docs](crate) for an example.
pub fn solve_penalized(
    problem: &GlProblem,
    mu: f64,
    options: &GlOptions,
    warm_start: Option<&Matrix>,
) -> Result<GlSolution, GroupLassoError> {
    options.validate()?;
    if !(mu >= 0.0) || !mu.is_finite() {
        return Err(GroupLassoError::InvalidParameter {
            what: format!("penalty mu must be finite and >= 0, got {mu}"),
        });
    }
    // Solver-scope span (not per-sweep — the sweep is the zero-alloc hot
    // loop): attributes the whole solve to `gl.bcd` in sampled profiles.
    let _span = telemetry::span("gl.bcd.solve_penalized");
    let m_count = problem.num_candidates();
    let k_count = problem.num_targets();
    let s = problem.s();
    // Group-major working set: row `m` of `bt`/`qt`/`gradt` is the
    // contiguous K-vector of group `m`, so every inner loop below runs
    // flat over a slice (auto-vectorizable) instead of striding columns.
    let qt = problem.q().transpose();
    let (mut bt, mut gradt) = match warm_start {
        Some(b) => {
            problem.check_beta(b)?;
            let bt = b.transpose();
            // gradt = (β S)ᵀ = S βᵀ (S symmetric).
            let gradt = s.matmul(&bt)?;
            (bt, gradt)
        }
        None => (
            Matrix::zeros(m_count, k_count),
            Matrix::zeros(m_count, k_count),
        ),
    };

    // Convergence is judged on the KKT violation (computable for free from
    // the maintained gradient), scaled by μ_max — a coefficient-change
    // criterion stalls on near-collinear candidate groups.
    let kkt_scale = problem.mu_max().max(f64::MIN_POSITIVE);
    let tol = options.tolerance * kkt_scale;
    let interval = options.full_pass_interval;

    // Active-set state. A full sweep visits every group and re-derives the
    // set as the post-sweep support; the pruned sweeps in between touch
    // only active groups, and the incremental gradient is maintained only
    // on active rows (that is all those sweeps read). Rows outside the set
    // go stale and are rebuilt from the support at the next full pass — so
    // every full pass measures true violations over all M groups, and
    // convergence is only ever declared from one.
    let mut active = vec![true; m_count];
    let mut active_list: Vec<usize> = (0..m_count).collect();
    let all_groups: Vec<usize> = (0..m_count).collect();
    let mut stale = false;

    let mut delta = vec![0.0; k_count];
    let mut sweeps = 0;
    let mut since_full = 0usize;
    let mut force_full = true;
    let (converged, kkt_residual) = loop {
        sweeps += 1;
        let full = interval == 0 || force_full || since_full >= interval;
        force_full = false;
        if full {
            if stale {
                refresh_stale_rows(&mut gradt, &bt, s, &active, &active_list);
                stale = false;
            }
            since_full = 0;
        } else {
            since_full += 1;
            stale = true;
        }

        let groups: &[usize] = if full { &all_groups } else { &active_list };
        let rows: &[usize] = if full { &all_groups } else { &active_list };
        let worst_kkt = sweep_groups(&mut bt, &mut gradt, &qt, s, &mut delta, groups, rows, mu);
        if full {
            // The active set for the upcoming pruned sweeps is the
            // post-sweep support.
            active_list.clear();
            for (m, flag) in active.iter_mut().enumerate() {
                let nonzero = bt.row(m).iter().any(|&v| v != 0.0);
                *flag = nonzero;
                if nonzero {
                    active_list.push(m);
                }
            }
        }
        // Convergence telemetry: the KKT residual falls out of the sweep for
        // free, but the objective costs a matmul — only pay it for a
        // full-detail capture, never for the always-on flight recorder.
        if telemetry::detailed() {
            let beta_now = bt.transpose();
            let smooth = problem.smooth_objective(&beta_now)?;
            let penalty: f64 = (0..m_count).map(|m| row_norm(&bt, m)).sum::<f64>() * mu;
            let active_count = (0..m_count).filter(|&m| row_norm(&bt, m) > 0.0).count();
            telemetry::event(
                "bcd.sweep",
                &[
                    ("objective", smooth + penalty),
                    ("kkt_residual", worst_kkt / kkt_scale),
                    ("active_groups", active_count as f64),
                ],
            );
        }
        if worst_kkt <= tol {
            if full {
                break (true, worst_kkt / kkt_scale);
            }
            // The active set has converged; verify over all groups before
            // declaring victory.
            force_full = true;
        }
        if sweeps >= options.max_sweeps {
            // Honour the contract that `kkt_residual` covers *all* groups:
            // if the limit was hit mid-pruned-phase, measure the static
            // violation at the current iterate instead of the (partial)
            // sweep figure.
            let residual = if full {
                worst_kkt
            } else {
                if stale {
                    refresh_stale_rows(&mut gradt, &bt, s, &active, &active_list);
                }
                static_worst_kkt(&bt, &gradt, &qt, mu)
            };
            break (false, residual / kkt_scale);
        }
    };
    telemetry::counter("bcd.solves", 1);
    telemetry::histogram("bcd.sweeps", sweeps as f64, "sweeps");

    let beta = bt.transpose();
    let smooth = problem.smooth_objective(&beta)?;
    let penalty: f64 = (0..m_count).map(|m| column_norm(&beta, m)).sum::<f64>() * mu;
    Ok(GlSolution {
        beta,
        mu,
        objective: smooth + penalty,
        sweeps,
        converged,
        kkt_residual,
    })
}

/// One BCD pass over `groups`: the closed-form group soft-threshold update
/// of each visited group plus the lazy incremental gradient maintenance on
/// `rows`, fused with the pre-update KKT violation measurement. Returns the
/// worst per-group violation seen (absolute, not `μ_max`-scaled).
///
/// This is the solver's steady-state inner loop: it allocates nothing (all
/// state lives in the caller-owned `bt`/`gradt`/`delta` buffers), which the
/// `alloc_gate` test pins. Extracted from [`solve_penalized`] verbatim so
/// full and pruned sweeps share one bit-identical code path.
///
/// Not part of the public API — exposed for the allocation gates and
/// kernel-level benches.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn sweep_groups(
    bt: &mut Matrix,
    gradt: &mut Matrix,
    qt: &Matrix,
    s: &Matrix,
    delta: &mut [f64],
    groups: &[usize],
    rows: &[usize],
    mu: f64,
) -> f64 {
    let k_count = bt.cols();
    let mut worst_kkt = 0.0_f64;
    for &m in groups {
        let smm = s[(m, m)];
        // c_m = Q[:,m] − (βS)[:,m] + β_m S_mm  (partial residual corr.)
        // Fused pass: c_m, ‖c_m‖² and ‖β_m‖² in one flat loop.
        let mut c_norm_sq = 0.0;
        let mut bnorm_sq = 0.0;
        {
            let qrow = qt.row(m);
            let grow = gradt.row(m);
            let brow = bt.row(m);
            for k in 0..k_count {
                let bv = brow[k];
                let c = qrow[k] - grow[k] + bv * smm;
                delta[k] = c;
                c_norm_sq += c * c;
                bnorm_sq += bv * bv;
            }
        }
        let c_norm = c_norm_sq.sqrt();
        // Closed-form group soft threshold.
        let scale = if smm <= 0.0 || c_norm <= mu {
            0.0
        } else {
            (1.0 - mu / c_norm) / smm
        };
        // KKT violation of this group *before* its update: the update
        // drives it to zero, so measuring pre-update violations over a
        // full sweep bounds the solution quality. The residual column
        // (βS − Q)[:,m] is recovered from the cached c_m:
        // r_k = β_k·S_mm − c_k.
        let bnorm_old = bnorm_sq.sqrt();
        let violation = if bnorm_old > 0.0 {
            let brow = bt.row(m);
            let mut acc = 0.0;
            for k in 0..k_count {
                let bv = brow[k];
                let r = bv * smm - delta[k] + mu * bv / bnorm_old;
                acc += r * r;
            }
            acc.sqrt()
        } else {
            (c_norm - mu).max(0.0)
        };
        worst_kkt = worst_kkt.max(violation);

        // δ = new β_m − old β_m; apply and update the gradient lazily
        // (δ = 0 — the common case for sparse solutions — is free).
        let mut changed = false;
        {
            let brow = bt.row_mut(m);
            for k in 0..k_count {
                let new = scale * delta[k];
                let d = new - brow[k];
                if d != 0.0 {
                    changed = true;
                }
                delta[k] = d;
                brow[k] = new;
            }
        }
        if changed {
            // gradt[j, :] += S[m, j] · δ. On pruned sweeps only the
            // active rows are maintained — the only rows those sweeps
            // read — cutting the update from O(M·K) to O(|A|·K).
            let srow = s.row(m);
            for &j in rows {
                let smj = srow[j];
                if smj == 0.0 {
                    continue;
                }
                let grow = gradt.row_mut(j);
                for (g, &d) in grow.iter_mut().zip(delta.iter()) {
                    *g += smj * d;
                }
            }
        }
    }
    worst_kkt
}

/// l2 norm of row `m` of a group-major matrix.
fn row_norm(mat: &Matrix, m: usize) -> f64 {
    mat.row(m).iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Rebuilds the gradient rows of groups outside the active set from the
/// current support. Pruned sweeps only maintain `gradt` on active rows;
/// since inactive groups hold β_m = 0 and are untouched between full
/// passes, `gradt[j, :] = Σ_{m active} S[j, m] · β_m` restores every stale
/// row exactly (in deterministic ascending-`m` order).
fn refresh_stale_rows(
    gradt: &mut Matrix,
    bt: &Matrix,
    s: &Matrix,
    active: &[bool],
    active_list: &[usize],
) {
    for j in 0..active.len() {
        if active[j] {
            continue;
        }
        gradt.row_mut(j).fill(0.0);
        for &m in active_list {
            let smj = s[(j, m)];
            if smj == 0.0 {
                continue;
            }
            let brow = bt.row(m);
            let grow = gradt.row_mut(j);
            for (g, &b) in grow.iter_mut().zip(brow) {
                *g += smj * b;
            }
        }
    }
}

/// Static worst KKT violation of the current iterate (`gradt` must be
/// fresh for every row). Mirrors [`crate::kkt_violation`] on the
/// group-major layout.
fn static_worst_kkt(bt: &Matrix, gradt: &Matrix, qt: &Matrix, mu: f64) -> f64 {
    let mut worst = 0.0_f64;
    for m in 0..bt.rows() {
        let brow = bt.row(m);
        let grow = gradt.row(m);
        let qrow = qt.row(m);
        let bnorm = brow.iter().map(|v| v * v).sum::<f64>().sqrt();
        let violation = if bnorm > 0.0 {
            let mut acc = 0.0;
            for k in 0..brow.len() {
                let r = grow[k] - qrow[k] + mu * brow[k] / bnorm;
                acc += r * r;
            }
            acc.sqrt()
        } else {
            let rnorm = grow
                .iter()
                .zip(qrow)
                .map(|(g, q)| (g - q) * (g - q))
                .sum::<f64>()
                .sqrt();
            (rnorm - mu).max(0.0)
        };
        worst = worst.max(violation);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> GlProblem {
        // Candidate 0 drives both targets; candidate 1 is weak; candidate 2
        // is pure noise.
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
            &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn zero_penalty_fits_targets_well() {
        let p = toy_problem();
        let sol = solve_penalized(&p, 0.0, &GlOptions::default(), None).unwrap();
        // Residual must be tiny: targets are (nearly) in the candidate span.
        assert!(sol.objective < 0.05, "objective {}", sol.objective);
    }

    #[test]
    fn huge_penalty_gives_zero_solution() {
        let p = toy_problem();
        let mu = p.mu_max() * 1.001;
        let sol = solve_penalized(&p, mu, &GlOptions::default(), None).unwrap();
        assert!(sol.beta.max_abs() < 1e-12);
        assert_eq!(sol.budget(), 0.0);
    }

    #[test]
    fn just_below_mu_max_activates_one_group() {
        let p = toy_problem();
        let sol =
            solve_penalized(&p, p.mu_max() * 0.97, &GlOptions::default(), None).unwrap();
        let active = sol.selected(1e-10).len();
        assert_eq!(active, 1, "norms: {:?}", sol.group_norms());
    }

    #[test]
    fn budget_decreases_with_penalty() {
        let p = toy_problem();
        let b1 = solve_penalized(&p, 0.1, &GlOptions::default(), None)
            .unwrap()
            .budget();
        let b2 = solve_penalized(&p, 1.0, &GlOptions::default(), None)
            .unwrap()
            .budget();
        let b3 = solve_penalized(&p, 3.0, &GlOptions::default(), None)
            .unwrap()
            .budget();
        assert!(b1 > b2 && b2 > b3, "{b1} {b2} {b3}");
    }

    #[test]
    fn noise_candidate_is_dropped_first() {
        let p = toy_problem();
        let sol = solve_penalized(&p, 0.8, &GlOptions::default(), None).unwrap();
        let norms = sol.group_norms();
        // Candidate 2 (noise) must have (near-)zero weight while at least
        // one informative candidate stays active.
        assert!(norms[2] < 1e-8, "noise candidate kept: {norms:?}");
        assert!(norms[0] + norms[1] > 0.1);
    }

    #[test]
    fn warm_start_converges_faster() {
        let p = toy_problem();
        let cold = solve_penalized(&p, 0.5, &GlOptions::default(), None).unwrap();
        let warm =
            solve_penalized(&p, 0.55, &GlOptions::default(), Some(&cold.beta)).unwrap();
        let cold2 = solve_penalized(&p, 0.55, &GlOptions::default(), None).unwrap();
        assert!(warm.sweeps <= cold2.sweeps);
        assert!((warm.objective - cold2.objective).abs() < 1e-6);
    }

    #[test]
    fn objective_never_increases_with_more_sweeps() {
        // Run with loose then tight tolerance; objective must not go up.
        let p = toy_problem();
        let loose = solve_penalized(
            &p,
            0.3,
            &GlOptions {
                tolerance: 1e-2,
                ..GlOptions::default()
            },
            None,
        )
        .unwrap();
        let tight = solve_penalized(&p, 0.3, &GlOptions::default(), None).unwrap();
        assert!(tight.objective <= loose.objective + 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let p = toy_problem();
        assert!(solve_penalized(&p, -1.0, &GlOptions::default(), None).is_err());
        assert!(solve_penalized(&p, f64::NAN, &GlOptions::default(), None).is_err());
        let bad = GlOptions {
            max_sweeps: 0,
            ..GlOptions::default()
        };
        assert!(solve_penalized(&p, 0.1, &bad, None).is_err());
        let wrong_warm = Matrix::zeros(1, 1);
        assert!(solve_penalized(&p, 0.1, &GlOptions::default(), Some(&wrong_warm)).is_err());
    }

    #[test]
    fn selected_respects_threshold() {
        let p = toy_problem();
        let sol = solve_penalized(&p, 0.2, &GlOptions::default(), None).unwrap();
        let all = sol.selected(0.0);
        let none = sol.selected(f64::INFINITY);
        assert!(all.len() >= none.len());
        assert!(none.is_empty());
    }
}
