//! Cross-validation for penalty selection.
//!
//! The paper sweeps λ by hand and leaves "how to determine the value of λ"
//! to the designer (its Section 2.4). This module provides the standard
//! data-driven answer: k-fold cross-validation over the training samples —
//! fit on k−1 folds, measure the prediction residual on the held-out fold,
//! pick the penalty minimizing the mean validation error (or the sparsest
//! penalty within one standard error of it, the usual "1-SE rule").

use voltsense_linalg::Matrix;
use voltsense_parallel as parallel;

use crate::bcd::GlOptions;
use crate::homotopy::HomotopySolver;
use crate::problem::GlProblem;
use crate::GroupLassoError;

/// Result of a cross-validated penalty sweep.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// The penalties evaluated, in the caller's order.
    pub mus: Vec<f64>,
    /// Mean held-out residual `‖G_val − β Z_val‖_F² / n_val` per penalty.
    pub mean_errors: Vec<f64>,
    /// Standard error of the fold errors per penalty.
    pub std_errors: Vec<f64>,
    /// Index of the penalty with the smallest mean validation error.
    pub best_index: usize,
    /// Index chosen by the 1-SE rule: the largest penalty whose mean error
    /// is within one standard error of the best.
    pub one_se_index: usize,
}

impl CvResult {
    /// The penalty minimizing mean validation error.
    pub fn best_mu(&self) -> f64 {
        self.mus[self.best_index]
    }

    /// The 1-SE-rule penalty (sparser, statistically indistinguishable).
    pub fn one_se_mu(&self) -> f64 {
        self.mus[self.one_se_index]
    }
}

/// Runs k-fold cross-validation of the penalized group lasso over the
/// given penalties.
///
/// `z` (`M x N`) and `g` (`K x N`) are the *normalized* data matrices;
/// folds are interleaved (`sample % folds`) so every fold spans all
/// benchmarks when samples are benchmark-ordered.
///
/// # Errors
///
/// * [`GroupLassoError::InvalidParameter`] if `folds < 2`, `folds > N`,
///   `mus` is empty or contains negatives.
/// * [`GroupLassoError::ShapeMismatch`] if `z` and `g` disagree on `N`.
/// * Propagates solver failures.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_grouplasso::{cross_validate, GlOptions};
///
/// # fn main() -> Result<(), voltsense_grouplasso::GroupLassoError> {
/// let z = Matrix::from_rows(&[
///     &[1.0, -1.0, 0.5, -0.5, 0.8, -0.8, 1.2, -1.2],
///     &[0.1, 0.3, -0.2, 0.1, -0.3, 0.2, 0.1, -0.1],
/// ])?;
/// let g = Matrix::from_rows(&[&[1.0, -1.1, 0.4, -0.5, 0.9, -0.7, 1.1, -1.3]])?;
/// let cv = cross_validate(&z, &g, &[0.01, 0.5, 5.0], 4, &GlOptions::default())?;
/// // A moderate penalty beats drowning the signal (μ = 5 kills everything).
/// assert!(cv.best_mu() < 5.0);
/// # Ok(())
/// # }
/// ```
pub fn cross_validate(
    z: &Matrix,
    g: &Matrix,
    mus: &[f64],
    folds: usize,
    options: &GlOptions,
) -> Result<CvResult, GroupLassoError> {
    options.validate()?;
    let n = z.cols();
    if g.cols() != n {
        return Err(GroupLassoError::ShapeMismatch {
            what: "sample count of Z and G",
            expected: n,
            actual: g.cols(),
        });
    }
    if folds < 2 || folds > n {
        return Err(GroupLassoError::InvalidParameter {
            what: format!("folds must be in 2..=N, got {folds} (N = {n})"),
        });
    }
    if mus.is_empty() || mus.iter().any(|m| !(m.is_finite() && *m >= 0.0)) {
        return Err(GroupLassoError::InvalidParameter {
            what: format!("penalties must be non-empty, finite and >= 0: {mus:?}"),
        });
    }

    // Evaluate penalties from largest to smallest per fold (warm starts).
    let mut order: Vec<usize> = (0..mus.len()).collect();
    order.sort_by(|&a, &b| mus[b].total_cmp(&mus[a]));

    // Folds are independent fit/validate problems, so they evaluate in
    // parallel; each fold's λ sweep stays serial (warm starts chain from
    // larger to smaller penalties). Every fold computes the same numbers
    // at any thread count, so CV stays deterministic.
    let fold_ids: Vec<usize> = (0..folds).collect();
    let per_fold = parallel::par_map(&fold_ids, |&fold| -> Result<Vec<f64>, GroupLassoError> {
        let train_idx: Vec<usize> = (0..n).filter(|s| s % folds != fold).collect();
        let val_idx: Vec<usize> = (0..n).filter(|s| s % folds == fold).collect();
        let z_train = z.select_cols(&train_idx);
        let g_train = g.select_cols(&train_idx);
        let z_val = z.select_cols(&val_idx);
        let g_val = g.select_cols(&val_idx);
        let problem = GlProblem::from_data(&z_train, &g_train)?;
        let mut errors = vec![0.0f64; mus.len()];
        let mut solver = HomotopySolver::new(&problem, options.clone())?;
        for &mi in &order {
            let sol = solver.solve(mus[mi])?;
            let pred = sol.beta.matmul(&z_val)?;
            let resid = &g_val - &pred;
            errors[mi] = resid.frobenius_norm().powi(2) / val_idx.len().max(1) as f64;
        }
        Ok(errors)
    });
    let mut fold_errors = vec![vec![0.0f64; folds]; mus.len()];
    for (fold, result) in per_fold.into_iter().enumerate() {
        for (mi, err) in result?.into_iter().enumerate() {
            fold_errors[mi][fold] = err;
        }
    }

    let mean_errors: Vec<f64> = fold_errors
        .iter()
        .map(|e| e.iter().sum::<f64>() / folds as f64)
        .collect();
    let std_errors: Vec<f64> = fold_errors
        .iter()
        .zip(&mean_errors)
        .map(|(e, &m)| {
            let var = e.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / folds as f64;
            (var / folds as f64).sqrt()
        })
        .collect();
    let best_index = mean_errors
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty mus");
    // 1-SE rule: largest penalty within one SE of the best mean error.
    let limit = mean_errors[best_index] + std_errors[best_index];
    let one_se_index = (0..mus.len())
        .filter(|&i| mean_errors[i] <= limit)
        .max_by(|&a, &b| mus[a].total_cmp(&mus[b]))
        .unwrap_or(best_index);

    Ok(CvResult {
        mus: mus.to_vec(),
        mean_errors,
        std_errors,
        best_index,
        one_se_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Target follows candidate 0; candidates 1–2 are noise.
    fn data() -> (Matrix, Matrix) {
        let n = 48;
        let mut z = Matrix::zeros(3, n);
        let mut g = Matrix::zeros(2, n);
        for s in 0..n {
            let t = s as f64;
            let sig = (t * 0.9).sin();
            z[(0, s)] = sig;
            z[(1, s)] = (t * 2.7).cos() * 0.8;
            z[(2, s)] = ((t * 1.3).sin() + (t * 0.4).cos()) * 0.6;
            g[(0, s)] = sig + 0.05 * (t * 5.1).sin();
            g[(1, s)] = 0.7 * sig + 0.05 * (t * 6.3).cos();
        }
        (z, g)
    }

    #[test]
    fn cv_prefers_moderate_penalty_over_kill_all() {
        let (z, g) = data();
        let mus = [1e-4, 0.5, 50.0];
        let cv = cross_validate(&z, &g, &mus, 4, &GlOptions::default()).unwrap();
        assert!(cv.best_mu() < 50.0, "CV picked the signal-killing penalty");
        // Mean error at the huge penalty equals predicting zero.
        assert!(cv.mean_errors[2] > cv.mean_errors[cv.best_index]);
    }

    #[test]
    fn one_se_rule_never_smaller_than_best() {
        let (z, g) = data();
        let mus = [1e-4, 0.05, 0.5, 5.0];
        let cv = cross_validate(&z, &g, &mus, 4, &GlOptions::default()).unwrap();
        assert!(cv.one_se_mu() >= cv.best_mu());
    }

    #[test]
    fn errors_have_fold_statistics() {
        let (z, g) = data();
        let cv = cross_validate(&z, &g, &[0.1, 1.0], 6, &GlOptions::default()).unwrap();
        assert_eq!(cv.mean_errors.len(), 2);
        assert_eq!(cv.std_errors.len(), 2);
        assert!(cv.mean_errors.iter().all(|&e| e.is_finite() && e >= 0.0));
        assert!(cv.std_errors.iter().all(|&e| e.is_finite() && e >= 0.0));
    }

    #[test]
    fn results_keep_caller_order() {
        let (z, g) = data();
        let mus = [1.0, 0.01, 0.3];
        let cv = cross_validate(&z, &g, &mus, 3, &GlOptions::default()).unwrap();
        assert_eq!(cv.mus, mus.to_vec());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (z, g) = data();
        assert!(cross_validate(&z, &g, &[], 4, &GlOptions::default()).is_err());
        assert!(cross_validate(&z, &g, &[0.1], 1, &GlOptions::default()).is_err());
        assert!(cross_validate(&z, &g, &[0.1], 1000, &GlOptions::default()).is_err());
        assert!(cross_validate(&z, &g, &[-0.1], 4, &GlOptions::default()).is_err());
        let g_bad = Matrix::zeros(1, 3);
        assert!(cross_validate(&z, &g_bad, &[0.1], 2, &GlOptions::default()).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let (z, g) = data();
        let a = cross_validate(&z, &g, &[0.1, 0.5], 4, &GlOptions::default()).unwrap();
        let b = cross_validate(&z, &g, &[0.1, 0.5], 4, &GlOptions::default()).unwrap();
        assert_eq!(a.mean_errors, b.mean_errors);
        assert_eq!(a.best_index, b.best_index);
    }
}
