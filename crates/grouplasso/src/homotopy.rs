//! Warm-started λ-homotopy over one group-lasso problem.
//!
//! The paper's workloads are *sweeps*: Table 1 solves the same problem at
//! λ = 10…60, the Q-matched comparison bisects the budget per core, and CV
//! solves a μ grid per fold. [`HomotopySolver`] makes every solve in such a
//! sweep share state with its neighbours:
//!
//! * the cached covariance form (`ZZᵀ` / `GZᵀ` Grams live in the borrowed
//!   [`GlProblem`], computed once);
//! * the coefficient matrix β of the most recent solve, used to warm-start
//!   the next one (the BCD active set falls out of the warm β's support);
//! * a probe history of `(μ, budget)` pairs, so a budget bisection for a
//!   new λ starts from the tightest bracket any earlier solve established
//!   instead of from `(0, μ_max)`.
//!
//! [`crate::solve_constrained`] and [`crate::penalty_path`] are thin
//! wrappers that create a throwaway solver; the selection pipeline keeps
//! one alive per core across its whole λ/Q sweep.

use voltsense_linalg::Matrix;

use crate::bcd::{solve_penalized, GlOptions, GlSolution};
use crate::constrained::ConstrainedSolution;
use crate::path::PathPoint;
use crate::problem::GlProblem;
use crate::GroupLassoError;

/// Relative interval width (vs `μ_max`) below which a budget bisection has
/// exhausted floating point and must stop.
const COLLAPSE_REL: f64 = 1e-12;

/// A stateful warm-started solver for sweeping one problem across
/// penalties and budgets.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
/// use voltsense_grouplasso::{GlProblem, GlOptions, HomotopySolver};
///
/// # fn main() -> Result<(), voltsense_grouplasso::GroupLassoError> {
/// let z = Matrix::from_rows(&[&[1.0, -1.0, 0.5, -0.5]])?;
/// let g = Matrix::from_rows(&[&[0.9, -1.1, 0.4, -0.6]])?;
/// let p = GlProblem::from_data(&z, &g)?;
/// let mut h = HomotopySolver::new(&p, GlOptions::default())?;
/// // Budgets solved in sequence share warm starts and probe history.
/// let tight = h.solve_constrained(0.5)?;
/// let loose = h.solve_constrained(1.5)?;
/// assert!(tight.budget_used <= loose.budget_used + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HomotopySolver<'a> {
    problem: &'a GlProblem,
    options: GlOptions,
    /// β of the most recent solve and the μ it was solved at.
    warm: Option<(Matrix, f64)>,
    /// `(μ, budget)` of every solve so far, ascending in μ.
    probes: Vec<(f64, f64)>,
    num_solves: usize,
}

impl<'a> HomotopySolver<'a> {
    /// Creates a solver over the given problem.
    ///
    /// # Errors
    ///
    /// Returns [`GroupLassoError::InvalidParameter`] for invalid options.
    pub fn new(problem: &'a GlProblem, options: GlOptions) -> Result<Self, GroupLassoError> {
        options.validate()?;
        Ok(HomotopySolver {
            problem,
            options,
            warm: None,
            probes: Vec::new(),
            num_solves: 0,
        })
    }

    /// The problem this solver sweeps.
    pub fn problem(&self) -> &GlProblem {
        self.problem
    }

    /// The solver options.
    pub fn options(&self) -> &GlOptions {
        &self.options
    }

    /// Number of penalized solves performed so far (one per
    /// [`HomotopySolver::solve`] call; the early-exit logic in
    /// [`HomotopySolver::solve_constrained`] exists to keep this small).
    pub fn num_solves(&self) -> usize {
        self.num_solves
    }

    /// Solves the penalized problem at `mu`, warm-started from the most
    /// recent solve, and records the `(μ, budget)` probe.
    ///
    /// # Errors
    ///
    /// Same as [`solve_penalized`].
    pub fn solve(&mut self, mu: f64) -> Result<GlSolution, GroupLassoError> {
        let warm = self.warm.as_ref().map(|(b, _)| b);
        let sol = solve_penalized(self.problem, mu, &self.options, warm)?;
        self.num_solves += 1;
        self.record_probe(mu, sol.budget());
        self.warm = Some((sol.beta.clone(), mu));
        Ok(sol)
    }

    fn record_probe(&mut self, mu: f64, budget: f64) {
        match self.probes.binary_search_by(|(m, _)| m.total_cmp(&mu)) {
            Ok(i) => self.probes[i] = (mu, budget),
            Err(i) => self.probes.insert(i, (mu, budget)),
        }
    }

    /// Tightest `(lo, hi)` bisection bracket for budget `lambda` supported
    /// by the probe history: `budget(hi) ≤ λ < budget(lo)` (with the
    /// conventions `budget(0⁺) = ∞`-ish and `budget(μ_max) = 0`). Falls
    /// back to `(0, μ_max)` if the history is empty or numerically
    /// non-monotone around λ.
    fn bracket(&self, lambda: f64, mu_max: f64) -> (f64, f64) {
        let mut lo = 0.0_f64;
        let mut hi = mu_max;
        // Probes are ascending in μ; budget is non-increasing in μ.
        for &(mu, budget) in &self.probes {
            if budget > lambda {
                lo = lo.max(mu);
            } else {
                hi = hi.min(mu);
                break; // later probes only shrink the budget further
            }
        }
        if lo >= hi {
            (0.0, mu_max)
        } else {
            (lo, hi)
        }
    }

    /// Solves `min ‖G − βZ‖_F  s.t.  Σ‖β_m‖₂ ≤ λ` by monotone bisection
    /// on μ, reusing the warm chain and any bracket the probe history
    /// already establishes.
    ///
    /// The always-feasible zero solution at `μ_max` (budget 0 ≤ λ by
    /// construction) seeds the feasible incumbent, so the solve cannot
    /// spuriously fail when every sampled midpoint lands infeasible (tiny
    /// λ, small `max_bisections`). When the constraint is inactive — no
    /// sampled μ is infeasible and the budget has stopped moving — the
    /// bisection exits early instead of burning the full `max_bisections`.
    ///
    /// # Errors
    ///
    /// * [`GroupLassoError::InvalidParameter`] for `λ <= 0`.
    /// * Propagates solver failures from the inner penalized solves.
    pub fn solve_constrained(
        &mut self,
        lambda: f64,
    ) -> Result<ConstrainedSolution, GroupLassoError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(GroupLassoError::InvalidParameter {
                what: format!("budget lambda must be finite and > 0, got {lambda}"),
            });
        }
        let mu_max = self.problem.mu_max();
        if mu_max == 0.0 {
            // Q = 0: the zero solution is optimal and consumes no budget.
            let solution = self.solve(0.0)?;
            let budget_used = solution.budget();
            return Ok(ConstrainedSolution {
                solution,
                mu: 0.0,
                budget_used,
            });
        }

        // Seed the incumbent with the exact zero solution at μ = μ_max:
        // every group satisfies ‖Q[:, m]‖ ≤ μ_max, so β = 0 is optimal
        // there with zero KKT residual, and its budget 0 is feasible for
        // any λ > 0 — no solve needed.
        let zero_beta = Matrix::zeros(self.problem.num_targets(), self.problem.num_candidates());
        let mut best = (
            GlSolution {
                beta: zero_beta,
                mu: mu_max,
                objective: 0.5 * self.problem.gg(),
                sweeps: 0,
                converged: true,
                kkt_residual: 0.0,
            },
            0.0_f64,
        );

        // Start from the tightest bracket the probe history supports
        // (bisections for nearby λ values share most of their midpoints).
        let (mut lo, mut hi) = self.bracket(lambda, mu_max);
        // Has any solve (this call) sampled an infeasible μ — equivalently,
        // is the constraint known to be active somewhere below `hi`? While
        // false, a stagnating budget means the bisection is converging to
        // the unconstrained optimum and can stop early. A probe-derived
        // lo > 0 proves infeasibility below without any new solve.
        let mut saw_infeasible = lo > 0.0;
        let mut prev_budget: Option<f64> = None;

        // A probe-derived `hi < μ_max` marks a μ an earlier bisection found
        // feasible, but only its (μ, budget) pair survives — the bisection
        // below samples strictly inside (lo, hi) and never at `hi` itself,
        // so if the budget jumps across λ just below `hi` every midpoint is
        // infeasible and the incumbent would stay the zero seed. One warm
        // solve at `hi` materializes the known-feasible solution first. If
        // warm-start drift makes the re-solve infeasible after all, the
        // boundary really sits above `hi`: widen the bracket upward.
        if hi < mu_max {
            let sol = self.solve(hi)?;
            let budget = sol.budget();
            if budget <= lambda {
                best = (sol, budget);
                prev_budget = Some(budget);
            } else {
                saw_infeasible = true;
                lo = hi;
                hi = mu_max;
            }
        }

        for _ in 0..self.options.max_bisections {
            // The incumbent may already be as tight as requested (a repeated
            // λ, or a probe that landed on the boundary).
            if (lambda - best.1).abs() <= self.options.budget_tolerance * lambda {
                break;
            }
            let mid = 0.5 * (lo + hi);
            let sol = self.solve(mid)?;
            let budget = sol.budget();
            if budget <= lambda {
                // Feasible: keep the closest-to-budget feasible solution.
                if budget > best.1 || best.0.sweeps == 0 {
                    best = (sol, budget);
                }
                hi = mid;
            } else {
                saw_infeasible = true;
                lo = mid;
            }
            // Budget-closeness: the incumbent is as tight as requested.
            if (lambda - best.1).abs() <= self.options.budget_tolerance * lambda {
                break;
            }
            // Inactive constraint: μ is collapsing towards 0 with every
            // midpoint feasible and the budget no longer moving (relative
            // to its own scale, so the loose solution still converges to
            // the unconstrained fit before the exit fires) — further
            // bisection just re-solves the same fit.
            if !saw_infeasible {
                if let Some(prev) = prev_budget {
                    let scale = budget.abs().max(prev.abs());
                    if (budget - prev).abs() <= self.options.budget_tolerance * scale {
                        break;
                    }
                }
            }
            prev_budget = Some(budget);
            // Interval collapse: floating point is exhausted; the incumbent
            // cannot improve.
            if hi - lo <= COLLAPSE_REL * mu_max {
                break;
            }
        }

        let (solution, budget_used) = best;
        let mu = solution.mu;
        Ok(ConstrainedSolution {
            solution,
            mu,
            budget_used,
        })
    }

    /// Solves the penalized problem at each `mu` in `mus` (any order;
    /// processed from largest to smallest through the warm chain, results
    /// returned in the caller's order). Duplicate penalties are solved
    /// once and the [`PathPoint`] reused.
    ///
    /// `threshold` is the selection threshold `T` used to count active
    /// sensors per point.
    ///
    /// # Errors
    ///
    /// * [`GroupLassoError::InvalidParameter`] if `mus` is empty or
    ///   contains a negative/non-finite value, or if `threshold` is
    ///   negative.
    /// * Propagates inner solver failures.
    pub fn path(
        &mut self,
        mus: &[f64],
        threshold: f64,
    ) -> Result<Vec<PathPoint>, GroupLassoError> {
        if mus.is_empty() {
            return Err(GroupLassoError::InvalidParameter {
                what: "penalty path needs at least one mu".into(),
            });
        }
        if mus.iter().any(|m| !(m.is_finite() && *m >= 0.0)) {
            return Err(GroupLassoError::InvalidParameter {
                what: format!("penalties must be finite and >= 0: {mus:?}"),
            });
        }
        if !(threshold >= 0.0) {
            return Err(GroupLassoError::InvalidParameter {
                what: format!("threshold must be >= 0, got {threshold}"),
            });
        }

        // Process from largest to smallest penalty (sparsest first);
        // duplicates land adjacent in the order and are solved once.
        let mut order: Vec<usize> = (0..mus.len()).collect();
        order.sort_by(|&a, &b| mus[b].total_cmp(&mus[a]));

        let mut results: Vec<Option<PathPoint>> = vec![None; mus.len()];
        let mut prev: Option<usize> = None;
        for &idx in &order {
            if let Some(pidx) = prev {
                if mus[pidx] == mus[idx] {
                    results[idx] = results[pidx].clone();
                    continue;
                }
            }
            let sol = self.solve(mus[idx])?;
            let group_norms = sol.group_norms();
            let budget = group_norms.iter().sum();
            let num_selected = group_norms.iter().filter(|&&n| n > threshold).count();
            let fit = self.problem.smooth_objective(&sol.beta)?;
            results[idx] = Some(PathPoint {
                mu: mus[idx],
                group_norms,
                budget,
                num_selected,
                fit,
            });
            prev = Some(idx);
        }
        Ok(results.into_iter().map(|p| p.expect("all filled")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_constrained;

    fn toy_problem() -> GlProblem {
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
            &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn sweep_reuses_probe_brackets() {
        let p = toy_problem();
        let opts = GlOptions::default();
        // Cold per-λ solve counts.
        let lambdas = [0.3, 0.5, 0.8, 1.2, 1.5];
        let mut cold_solves = 0;
        let mut cold_budgets = Vec::new();
        for &l in &lambdas {
            let mut h = HomotopySolver::new(&p, opts.clone()).unwrap();
            let sol = h.solve_constrained(l).unwrap();
            cold_solves += h.num_solves();
            cold_budgets.push(sol.budget_used);
        }
        // One shared chain across the sweep.
        let mut h = HomotopySolver::new(&p, opts).unwrap();
        let mut warm_budgets = Vec::new();
        for &l in &lambdas {
            warm_budgets.push(h.solve_constrained(l).unwrap().budget_used);
        }
        assert!(
            h.num_solves() < cold_solves,
            "warm sweep took {} solves vs {} cold",
            h.num_solves(),
            cold_solves
        );
        // Same budgets (up to the shared budget tolerance).
        for (w, c) in warm_budgets.iter().zip(&cold_budgets) {
            assert!((w - c).abs() <= 2e-4 * c.max(1e-12), "{w} vs {c}");
        }
    }

    #[test]
    fn matches_standalone_constrained_solver() {
        let p = toy_problem();
        let mut h = HomotopySolver::new(&p, GlOptions::default()).unwrap();
        let a = h.solve_constrained(0.8).unwrap();
        let b = solve_constrained(&p, 0.8, &GlOptions::default()).unwrap();
        assert!((a.budget_used - b.budget_used).abs() < 1e-9);
        assert!((a.mu - b.mu).abs() < 1e-12);
    }

    #[test]
    fn probe_bracket_tightens_with_history() {
        let p = toy_problem();
        let mu_max = p.mu_max();
        let mut h = HomotopySolver::new(&p, GlOptions::default()).unwrap();
        assert_eq!(h.bracket(0.5, mu_max), (0.0, mu_max));
        h.solve(0.4 * mu_max).unwrap();
        h.solve(0.1 * mu_max).unwrap();
        let (lo, hi) = h.bracket(0.5, mu_max);
        assert!(lo > 0.0 || hi < mu_max, "history should tighten the bracket");
        assert!(lo < hi);
    }

    #[test]
    fn num_solves_counts_every_penalized_solve() {
        let p = toy_problem();
        let mut h = HomotopySolver::new(&p, GlOptions::default()).unwrap();
        assert_eq!(h.num_solves(), 0);
        h.solve(0.5).unwrap();
        h.solve(0.1).unwrap();
        assert_eq!(h.num_solves(), 2);
    }

    #[test]
    fn invalid_options_rejected_at_construction() {
        let p = toy_problem();
        let bad = GlOptions {
            max_sweeps: 0,
            ..GlOptions::default()
        };
        assert!(HomotopySolver::new(&p, bad).is_err());
    }
}
