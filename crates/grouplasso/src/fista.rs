//! FISTA (accelerated proximal gradient) solver — an independent
//! cross-check of the BCD solver and a better fit for very large dense
//! problems.

use voltsense_linalg::Matrix;
use voltsense_telemetry as telemetry;

use crate::bcd::{GlOptions, GlSolution};
use crate::problem::{column_norm, GlProblem};
use crate::GroupLassoError;

/// Solves the penalized multi-task group lasso by FISTA.
///
/// Gradient of the smooth part is `βS − Q`; the proximal operator of
/// `μ Σ‖β_m‖₂` is a per-column group soft threshold. The step size is
/// `1/L` with `L = λ_max(S)` estimated by power iteration.
///
/// # Errors
///
/// Same conditions as [`crate::solve_penalized`]; like it, hitting the
/// iteration limit returns a best-effort solution with
/// `converged = false` rather than an error.
pub fn solve_penalized_fista(
    problem: &GlProblem,
    mu: f64,
    options: &GlOptions,
    warm_start: Option<&Matrix>,
) -> Result<GlSolution, GroupLassoError> {
    options.validate()?;
    if !(mu >= 0.0) || !mu.is_finite() {
        return Err(GroupLassoError::InvalidParameter {
            what: format!("penalty mu must be finite and >= 0, got {mu}"),
        });
    }
    // Solver-scope span: attributes the whole solve to `gl.fista` in
    // sampled profiles (matches `gl.bcd.solve_penalized` in bcd.rs).
    let _span = telemetry::span("gl.fista.solve_penalized");
    let k_count = problem.num_targets();
    let m_count = problem.num_candidates();
    let s = problem.s();
    let q = problem.q();

    let lip = spectral_norm_upper(s).max(f64::MIN_POSITIVE);
    let step = 1.0 / lip;

    let mut beta = match warm_start {
        Some(b) => {
            problem.check_beta(b)?;
            b.clone()
        }
        None => Matrix::zeros(k_count, m_count),
    };
    let mut y = beta.clone();
    let mut t = 1.0_f64;

    let mut iterations = 0;
    let converged = loop {
        iterations += 1;
        // Gradient step at the extrapolated point y.
        let grad = {
            let mut g = y.matmul(s)?;
            g -= q;
            g
        };
        let mut next = y.clone();
        for (n, gv) in next.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *n -= step * gv;
        }
        // Proximal map: group soft threshold per column.
        let thresh = mu * step;
        for m in 0..m_count {
            let norm = column_norm(&next, m);
            let scale = if norm <= thresh {
                0.0
            } else {
                1.0 - thresh / norm
            };
            for k in 0..k_count {
                next[(k, m)] *= scale;
            }
        }

        // Convergence on the iterate change.
        let mut max_change = 0.0_f64;
        let mut max_coef = 0.0_f64;
        for (n, b) in next.as_slice().iter().zip(beta.as_slice()) {
            max_change = max_change.max((n - b).abs());
            max_coef = max_coef.max(n.abs());
        }

        // FISTA momentum.
        let t_next = (1.0 + (1.0 + 4.0 * t * t).sqrt()) / 2.0;
        let momentum = (t - 1.0) / t_next;
        let mut y_next = next.clone();
        for ((yv, nv), bv) in y_next
            .as_mut_slice()
            .iter_mut()
            .zip(next.as_slice())
            .zip(beta.as_slice())
        {
            *yv = nv + momentum * (nv - bv);
        }
        beta = next;
        y = y_next;
        t = t_next;

        // Convergence telemetry: objective/KKT are O(K·M²) extras, so they
        // are only evaluated for a full-detail capture — the always-on
        // flight recorder must not pay for them.
        if telemetry::detailed() {
            let smooth = problem.smooth_objective(&beta)?;
            let penalty: f64 =
                (0..m_count).map(|m| column_norm(&beta, m)).sum::<f64>() * mu;
            let kkt = crate::kkt_violation(problem, &beta, mu)?
                / problem.mu_max().max(f64::MIN_POSITIVE);
            let active = (0..m_count).filter(|&m| column_norm(&beta, m) > 0.0).count();
            telemetry::event(
                "fista.iter",
                &[
                    ("objective", smooth + penalty),
                    ("kkt_residual", kkt),
                    ("active_groups", active as f64),
                    ("step", step),
                    ("max_change", max_change),
                ],
            );
        }

        let scale = max_coef.max(1e-12);
        if max_change <= options.tolerance * scale {
            break true;
        }
        if iterations >= options.max_sweeps {
            break false;
        }
    };

    let smooth = problem.smooth_objective(&beta)?;
    let penalty: f64 = (0..m_count).map(|m| column_norm(&beta, m)).sum::<f64>() * mu;
    let kkt_residual = crate::kkt_violation(problem, &beta, mu)?
        / problem.mu_max().max(f64::MIN_POSITIVE);
    telemetry::counter("fista.solves", 1);
    telemetry::histogram("fista.iterations", iterations as f64, "iters");
    Ok(GlSolution {
        beta,
        mu,
        objective: smooth + penalty,
        sweeps: iterations,
        converged,
        kkt_residual,
    })
}

/// Upper estimate of `λ_max(S)` by power iteration with a safety factor.
fn spectral_norm_upper(s: &Matrix) -> f64 {
    let n = s.rows();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect();
    let mut lambda = 0.0;
    for _ in 0..50 {
        let w = s.matvec(&v).expect("square matvec");
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        lambda = norm / v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let inv = 1.0 / norm;
        v = w.into_iter().map(|x| x * inv).collect();
    }
    // 5% headroom keeps the step size safely below 1/λ_max even if power
    // iteration has not fully converged.
    lambda * 1.05
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_penalized;

    fn toy_problem() -> GlProblem {
        let z = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.9, -0.9, 0.7, -0.9, 1.1, -1.0, 0.8, -1.0],
            &[0.3, 0.1, -0.2, 0.4, -0.1, 0.2, -0.3, -0.4],
        ])
        .unwrap();
        let g = Matrix::from_rows(&[
            &[1.0, -1.0, 0.8, -0.8, 1.2, -1.2, 0.9, -0.9],
            &[0.95, -0.95, 0.75, -0.85, 1.15, -1.1, 0.85, -0.95],
        ])
        .unwrap();
        GlProblem::from_data(&z, &g).unwrap()
    }

    #[test]
    fn fista_matches_bcd_objective() {
        let p = toy_problem();
        let opts = GlOptions {
            max_sweeps: 20_000,
            tolerance: 1e-10,
            ..GlOptions::default()
        };
        for &mu in &[0.05, 0.3, 1.0, 2.5] {
            let bcd = solve_penalized(&p, mu, &opts, None).unwrap();
            let fista = solve_penalized_fista(&p, mu, &opts, None).unwrap();
            assert!(
                (bcd.objective - fista.objective).abs() < 1e-5,
                "mu={mu}: bcd {} vs fista {}",
                bcd.objective,
                fista.objective
            );
        }
    }

    #[test]
    fn fista_matches_bcd_support() {
        let p = toy_problem();
        let opts = GlOptions {
            max_sweeps: 20_000,
            tolerance: 1e-10,
            ..GlOptions::default()
        };
        let bcd = solve_penalized(&p, 0.8, &opts, None).unwrap();
        let fista = solve_penalized_fista(&p, 0.8, &opts, None).unwrap();
        assert_eq!(bcd.selected(1e-6), fista.selected(1e-6));
    }

    #[test]
    fn huge_penalty_zeroes_out() {
        let p = toy_problem();
        let sol =
            solve_penalized_fista(&p, p.mu_max() * 1.1, &GlOptions::default(), None).unwrap();
        assert!(sol.beta.max_abs() < 1e-9);
    }

    #[test]
    fn spectral_norm_bound_is_valid() {
        let p = toy_problem();
        let s = p.s();
        let upper = spectral_norm_upper(s);
        // Check against the Frobenius bound and a random quadratic form.
        assert!(upper <= s.frobenius_norm() * 1.05 + 1e-9);
        let v = [0.5, -0.3, 0.8];
        let sv = s.matvec(&v).unwrap();
        let rayleigh = v.iter().zip(&sv).map(|(a, b)| a * b).sum::<f64>()
            / v.iter().map(|x| x * x).sum::<f64>();
        assert!(rayleigh <= upper + 1e-9);
    }

    #[test]
    fn invalid_input_rejected() {
        let p = toy_problem();
        assert!(solve_penalized_fista(&p, -0.1, &GlOptions::default(), None).is_err());
    }
}
