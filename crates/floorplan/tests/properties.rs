//! Property-based tests for geometry and floorplan invariants (testkit
//! harness: 64 deterministic seeded cases per property, greedy shrinking).

use voltsense_floorplan::{ChipConfig, ChipFloorplan, NodeSite, Point, Rect};
use voltsense_testkit::{f64_range, forall, usize_range};

/// Builds the chip config the suite explores; called with shrinkable
/// primitives so failing cases reduce to the fewest, smallest cores.
fn chip_config(cx: usize, cy: usize, core_w: f64, pitch: f64) -> ChipConfig {
    ChipConfig {
        cores_x: cx,
        cores_y: cy,
        core_width: core_w,
        core_height: core_w * 0.8,
        channel_fraction: 0.2,
        core_spacing: 200.0,
        periphery: 200.0,
        grid_pitch: pitch,
    }
}

#[test]
fn rect_center_is_inside() {
    forall!(cases = 64, (x in f64_range(0.0, 500.0), y in f64_range(0.0, 500.0),
                         w in f64_range(1.0, 500.0), h in f64_range(1.0, 500.0)) => {
        let r = Rect::from_origin_size(Point::new(x, y), w, h);
        assert!(r.contains(r.center()));
    });
}

#[test]
fn rect_overlap_is_symmetric() {
    forall!(cases = 64, (ax in f64_range(0.0, 500.0), ay in f64_range(0.0, 500.0),
                         aw in f64_range(1.0, 500.0), ah in f64_range(1.0, 500.0),
                         bx in f64_range(0.0, 500.0), by in f64_range(0.0, 500.0),
                         bw in f64_range(1.0, 500.0), bh in f64_range(1.0, 500.0)) => {
        let a = Rect::from_origin_size(Point::new(ax, ay), aw, ah);
        let b = Rect::from_origin_size(Point::new(bx, by), bw, bh);
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    });
}

#[test]
fn rect_translation_preserves_area() {
    forall!(cases = 64, (x in f64_range(0.0, 500.0), y in f64_range(0.0, 500.0),
                         w in f64_range(1.0, 500.0), h in f64_range(1.0, 500.0),
                         dx in f64_range(-100.0, 100.0), dy in f64_range(-100.0, 100.0)) => {
        let r = Rect::from_origin_size(Point::new(x, y), w, h);
        let t = r.translated(dx, dy);
        assert!((t.area() - r.area()).abs() < 1e-9);
        assert!((t.width() - r.width()).abs() < 1e-12);
    });
}

#[test]
fn distance_is_a_metric() {
    forall!(cases = 64, (ax in f64_range(0.0, 100.0), ay in f64_range(0.0, 100.0),
                         bx in f64_range(0.0, 100.0), by in f64_range(0.0, 100.0),
                         cx in f64_range(0.0, 100.0), cy in f64_range(0.0, 100.0)) => {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
        assert!(a.distance_to(a) == 0.0);
        assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
    });
}

#[test]
fn chip_invariants_hold_for_any_valid_config() {
    forall!(cases = 64, (cx in usize_range(1, 4), cy in usize_range(1, 3),
                         core_w in f64_range(1200.0, 2400.0),
                         pitch in f64_range(80.0, 140.0)) => {
        let cfg = chip_config(cx, cy, core_w, pitch);
        // Some pitches are too coarse for the blocks — that must be a
        // clean error, never a bad floorplan.
        let Ok(chip) = ChipFloorplan::new(&cfg) else { return; };
        // 30 blocks per core, block ids core-major.
        assert_eq!(chip.blocks().len(), 30 * cfg.cores_x * cfg.cores_y);
        for (i, b) in chip.blocks().iter().enumerate() {
            assert_eq!(b.id().0, i);
        }
        // Blocks never overlap.
        for (i, a) in chip.blocks().iter().enumerate() {
            for b in &chip.blocks()[i + 1..] {
                assert!(!a.rect().overlaps(&b.rect()));
            }
        }
        // Every FA node's owner really contains it; candidates + FA = all.
        let lattice = chip.lattice();
        let mut fa = 0usize;
        for (id, site) in lattice.iter() {
            match site {
                NodeSite::FunctionArea(owner) => {
                    fa += 1;
                    let block = chip.block(owner).expect("owner exists");
                    assert!(block.rect().contains(lattice.position(id)));
                }
                NodeSite::BlankArea => {}
            }
        }
        assert_eq!(fa + lattice.candidate_sites().len(), lattice.len());
        // Every block has at least one node (guaranteed by validation).
        for b in chip.blocks() {
            assert!(!lattice.nodes_in_block(b.id()).is_empty());
        }
    });
}

#[test]
fn lattice_neighbors_are_mutual() {
    forall!(cases = 64, (cx in usize_range(1, 4), cy in usize_range(1, 3),
                         core_w in f64_range(1200.0, 2400.0),
                         pitch in f64_range(80.0, 140.0)) => {
        let cfg = chip_config(cx, cy, core_w, pitch);
        let Ok(chip) = ChipFloorplan::new(&cfg) else { return; };
        let lattice = chip.lattice();
        // Sample a handful of nodes.
        let step = (lattice.len() / 7).max(1);
        for i in (0..lattice.len()).step_by(step) {
            let id = voltsense_floorplan::NodeId(i);
            for n in lattice.neighbors(id) {
                let back: Vec<_> = lattice.neighbors(n).collect();
                assert!(back.contains(&id), "neighbor relation not mutual");
            }
        }
    });
}
