//! Property-based tests for geometry and floorplan invariants.

use proptest::prelude::*;
use voltsense_floorplan::{ChipConfig, ChipFloorplan, NodeSite, Point, Rect};

fn rect() -> impl Strategy<Value = Rect> {
    (0.0..500.0f64, 0.0..500.0f64, 1.0..500.0f64, 1.0..500.0f64)
        .prop_map(|(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
}

/// A random but valid chip configuration.
fn chip_config() -> impl Strategy<Value = ChipConfig> {
    (1usize..4, 1usize..3, 1200.0..2400.0f64, 80.0..140.0f64).prop_map(
        |(cx, cy, core_w, pitch)| ChipConfig {
            cores_x: cx,
            cores_y: cy,
            core_width: core_w,
            core_height: core_w * 0.8,
            channel_fraction: 0.2,
            core_spacing: 200.0,
            periphery: 200.0,
            grid_pitch: pitch,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rect_center_is_inside(r in rect()) {
        prop_assert!(r.contains(r.center()));
    }

    #[test]
    fn rect_overlap_is_symmetric(a in rect(), b in rect()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn rect_translation_preserves_area(r in rect(), dx in -100.0..100.0f64, dy in -100.0..100.0f64) {
        let t = r.translated(dx, dy);
        prop_assert!((t.area() - r.area()).abs() < 1e-9);
        prop_assert!((t.width() - r.width()).abs() < 1e-12);
    }

    #[test]
    fn distance_is_a_metric(ax in 0.0..100.0f64, ay in 0.0..100.0f64,
                            bx in 0.0..100.0f64, by in 0.0..100.0f64,
                            cx in 0.0..100.0f64, cy in 0.0..100.0f64) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
        prop_assert!(a.distance_to(a) == 0.0);
        prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
    }

    #[test]
    fn chip_invariants_hold_for_any_valid_config(cfg in chip_config()) {
        // Some pitches are too coarse for the blocks — that must be a
        // clean error, never a bad floorplan.
        let Ok(chip) = ChipFloorplan::new(&cfg) else { return Ok(()); };
        // 30 blocks per core, block ids core-major.
        prop_assert_eq!(chip.blocks().len(), 30 * cfg.cores_x * cfg.cores_y);
        for (i, b) in chip.blocks().iter().enumerate() {
            prop_assert_eq!(b.id().0, i);
        }
        // Blocks never overlap.
        for (i, a) in chip.blocks().iter().enumerate() {
            for b in &chip.blocks()[i + 1..] {
                prop_assert!(!a.rect().overlaps(&b.rect()));
            }
        }
        // Every FA node's owner really contains it; candidates + FA = all.
        let lattice = chip.lattice();
        let mut fa = 0usize;
        for (id, site) in lattice.iter() {
            match site {
                NodeSite::FunctionArea(owner) => {
                    fa += 1;
                    let block = chip.block(owner).expect("owner exists");
                    prop_assert!(block.rect().contains(lattice.position(id)));
                }
                NodeSite::BlankArea => {}
            }
        }
        prop_assert_eq!(fa + lattice.candidate_sites().len(), lattice.len());
        // Every block has at least one node (guaranteed by validation).
        for b in chip.blocks() {
            prop_assert!(!lattice.nodes_in_block(b.id()).is_empty());
        }
    }

    #[test]
    fn lattice_neighbors_are_mutual(cfg in chip_config()) {
        let Ok(chip) = ChipFloorplan::new(&cfg) else { return Ok(()); };
        let lattice = chip.lattice();
        // Sample a handful of nodes.
        let step = (lattice.len() / 7).max(1);
        for i in (0..lattice.len()).step_by(step) {
            let id = voltsense_floorplan::NodeId(i);
            for n in lattice.neighbors(id) {
                let back: Vec<_> = lattice.neighbors(n).collect();
                prop_assert!(back.contains(&id), "neighbor relation not mutual");
            }
        }
    }
}
