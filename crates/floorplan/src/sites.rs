use std::collections::HashMap;
use std::fmt;

use crate::block::{BlockId, FunctionBlock};
use crate::geometry::Point;
use crate::FloorplanError;

/// Identifier of a power-grid lattice node (row-major: `iy * nx + ix`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Classification of a lattice node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeSite {
    /// The node lies inside (or on the edge of) the given function block:
    /// it draws that block's current and is a potential noise-critical
    /// node. Sensors cannot be placed here.
    FunctionArea(BlockId),
    /// The node lies in blank area: a sensor candidate location.
    BlankArea,
}

/// The power-grid node lattice overlaid on the chip, with every node
/// classified as function area or blank area.
///
/// Node `(ix, iy)` sits at `(ix * pitch, iy * pitch)` in die coordinates.
/// Nodes inside a block rectangle belong to that block (ties broken by the
/// earlier block id; blocks never overlap so ties only occur on shared
/// channel boundaries, which do not exist in this layout).
#[derive(Debug, Clone)]
pub struct NodeLattice {
    nx: usize,
    ny: usize,
    pitch: f64,
    sites: Vec<NodeSite>,
    candidates: Vec<NodeId>,
    block_nodes: HashMap<BlockId, Vec<NodeId>>,
}

impl NodeLattice {
    /// Builds the lattice for a `width x height` die at the given pitch and
    /// classifies every node against the placed blocks.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidConfig`] if the pitch is
    /// non-positive/non-finite, the die is degenerate, or some block ends
    /// up with no lattice node (pitch too coarse).
    pub fn build(
        width: f64,
        height: f64,
        pitch: f64,
        blocks: &[FunctionBlock],
    ) -> Result<Self, FloorplanError> {
        if !(pitch > 0.0) || !pitch.is_finite() {
            return Err(FloorplanError::InvalidConfig {
                what: format!("lattice pitch must be positive, got {pitch}"),
            });
        }
        if !(width > 0.0 && height > 0.0) {
            return Err(FloorplanError::InvalidConfig {
                what: format!("die must have positive size, got {width}x{height}"),
            });
        }
        let nx = (width / pitch).floor() as usize + 1;
        let ny = (height / pitch).floor() as usize + 1;
        let mut sites = vec![NodeSite::BlankArea; nx * ny];
        let mut candidates = Vec::new();
        let mut block_nodes: HashMap<BlockId, Vec<NodeId>> = HashMap::new();

        for iy in 0..ny {
            for ix in 0..nx {
                let id = NodeId(iy * nx + ix);
                let p = Point::new(ix as f64 * pitch, iy as f64 * pitch);
                // Blocks don't overlap, so at most one can contain p
                // strictly; boundary points take the first match.
                let owner = blocks.iter().find(|b| b.rect().contains(p));
                match owner {
                    Some(b) => {
                        sites[id.0] = NodeSite::FunctionArea(b.id());
                        block_nodes.entry(b.id()).or_default().push(id);
                    }
                    None => {
                        candidates.push(id);
                    }
                }
            }
        }

        for b in blocks {
            if !block_nodes.contains_key(&b.id()) {
                return Err(FloorplanError::InvalidConfig {
                    what: format!(
                        "block {} ({}) contains no lattice node; reduce grid_pitch",
                        b.id(),
                        b.kind()
                    ),
                });
            }
        }

        Ok(NodeLattice {
            nx,
            ny,
            pitch,
            sites,
            candidates,
            block_nodes,
        })
    }

    /// Nodes per row.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Nodes per column.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` if the lattice has no nodes (cannot occur for a valid build).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lattice pitch (µm).
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// Classification of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn site(&self, id: NodeId) -> NodeSite {
        self.sites[id.0]
    }

    /// Die position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: NodeId) -> Point {
        assert!(id.0 < self.len(), "node {id} out of range");
        let ix = id.0 % self.nx;
        let iy = id.0 / self.nx;
        Point::new(ix as f64 * self.pitch, iy as f64 * self.pitch)
    }

    /// Node at lattice coordinates `(ix, iy)`, if in range.
    pub fn node_at(&self, ix: usize, iy: usize) -> Option<NodeId> {
        (ix < self.nx && iy < self.ny).then(|| NodeId(iy * self.nx + ix))
    }

    /// Lattice coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        assert!(id.0 < self.len(), "node {id} out of range");
        (id.0 % self.nx, id.0 / self.nx)
    }

    /// The 2–4 lattice neighbours of a node (right/left/up/down).
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (ix, iy) = self.coords(id);
        [
            ix.checked_sub(1).and_then(|x| self.node_at(x, iy)),
            self.node_at(ix + 1, iy),
            iy.checked_sub(1).and_then(|y| self.node_at(ix, y)),
            self.node_at(ix, iy + 1),
        ]
        .into_iter()
        .flatten()
    }

    /// All blank-area nodes — the sensor candidate set `M` of the paper.
    pub fn candidate_sites(&self) -> &[NodeId] {
        &self.candidates
    }

    /// Lattice nodes inside a block (empty slice for unknown blocks).
    pub fn nodes_in_block(&self, block: BlockId) -> &[NodeId] {
        self.block_nodes
            .get(&block)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterator over `(NodeId, NodeSite)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeSite)> + '_ {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, &s)| (NodeId(i), s))
    }

    /// Number of function-area nodes.
    pub fn fa_node_count(&self) -> usize {
        self.len() - self.candidates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockKind, FunctionBlock};
    use crate::geometry::Rect;
    use crate::CoreId;

    fn one_block() -> Vec<FunctionBlock> {
        vec![FunctionBlock::new(
            BlockId(0),
            BlockKind::Alu0,
            CoreId(0),
            Rect::new(100.0, 100.0, 300.0, 300.0),
        )]
    }

    #[test]
    fn lattice_dimensions() {
        let l = NodeLattice::build(1000.0, 500.0, 100.0, &one_block()).unwrap();
        assert_eq!(l.nx(), 11);
        assert_eq!(l.ny(), 6);
        assert_eq!(l.len(), 66);
    }

    #[test]
    fn classification_fa_vs_ba() {
        let l = NodeLattice::build(1000.0, 500.0, 100.0, &one_block()).unwrap();
        // Node at (200, 200) is inside the block.
        let inside = l.node_at(2, 2).unwrap();
        assert_eq!(l.site(inside), NodeSite::FunctionArea(BlockId(0)));
        // Node at (0, 0) is blank area.
        let outside = l.node_at(0, 0).unwrap();
        assert_eq!(l.site(outside), NodeSite::BlankArea);
    }

    #[test]
    fn candidates_plus_fa_cover_all() {
        let l = NodeLattice::build(1000.0, 500.0, 100.0, &one_block()).unwrap();
        assert_eq!(l.candidate_sites().len() + l.fa_node_count(), l.len());
    }

    #[test]
    fn block_nodes_are_inside() {
        let blocks = one_block();
        let l = NodeLattice::build(1000.0, 500.0, 100.0, &blocks).unwrap();
        for &nid in l.nodes_in_block(BlockId(0)) {
            assert!(blocks[0].rect().contains(l.position(nid)));
        }
        // 3x3 nodes fall inside [100,300]²: x,y in {100, 200, 300}.
        assert_eq!(l.nodes_in_block(BlockId(0)).len(), 9);
    }

    #[test]
    fn unknown_block_gives_empty() {
        let l = NodeLattice::build(1000.0, 500.0, 100.0, &one_block()).unwrap();
        assert!(l.nodes_in_block(BlockId(42)).is_empty());
    }

    #[test]
    fn neighbors_edge_and_interior() {
        let l = NodeLattice::build(1000.0, 500.0, 100.0, &[]).unwrap();
        let corner = l.node_at(0, 0).unwrap();
        assert_eq!(l.neighbors(corner).count(), 2);
        let interior = l.node_at(5, 3).unwrap();
        assert_eq!(l.neighbors(interior).count(), 4);
    }

    #[test]
    fn position_and_coords_round_trip() {
        let l = NodeLattice::build(1000.0, 500.0, 100.0, &[]).unwrap();
        let id = l.node_at(7, 2).unwrap();
        assert_eq!(l.coords(id), (7, 2));
        let p = l.position(id);
        assert_eq!(p, Point::new(700.0, 200.0));
    }

    #[test]
    fn coarse_pitch_rejected_when_block_missed() {
        // Block is 50 µm wide but pitch is 400: no node can land inside.
        let blocks = vec![FunctionBlock::new(
            BlockId(0),
            BlockKind::Alu0,
            CoreId(0),
            Rect::new(110.0, 110.0, 160.0, 160.0),
        )];
        assert!(NodeLattice::build(1000.0, 500.0, 400.0, &blocks).is_err());
    }

    #[test]
    fn bad_params_rejected() {
        assert!(NodeLattice::build(100.0, 100.0, 0.0, &[]).is_err());
        assert!(NodeLattice::build(100.0, 100.0, f64::NAN, &[]).is_err());
        assert!(NodeLattice::build(0.0, 100.0, 10.0, &[]).is_err());
    }

    #[test]
    fn iter_covers_everything() {
        let l = NodeLattice::build(300.0, 300.0, 100.0, &[]).unwrap();
        assert_eq!(l.iter().count(), 16);
        assert!(l.iter().all(|(_, s)| s == NodeSite::BlankArea));
    }
}
