use std::error::Error;
use std::fmt;

/// Error type for floorplan construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FloorplanError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// A lookup referenced a block or core that does not exist.
    UnknownId {
        /// What kind of identifier failed to resolve (e.g. `"block"`).
        kind: &'static str,
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::InvalidConfig { what } => {
                write!(f, "invalid floorplan configuration: {what}")
            }
            FloorplanError::UnknownId { kind, index } => {
                write!(f, "unknown {kind} id {index}")
            }
        }
    }
}

impl Error for FloorplanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let err = FloorplanError::InvalidConfig {
            what: "grid pitch must be positive".into(),
        };
        assert!(err.to_string().contains("grid pitch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FloorplanError>();
    }
}
