use std::fmt;

use crate::geometry::Rect;
use crate::CoreId;

/// Identifier of a function block, unique across the whole chip.
///
/// Blocks are numbered `core_index * 30 + kind_index`, so the id encodes
/// both the core and the block kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Microarchitectural unit grouping, used for floorplan clustering and for
/// the Fig. 3 placement-map colouring (the paper groups "functionally
/// relative or similar" blocks into units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitGroup {
    /// Fetch, decode, branch prediction, instruction supply.
    Frontend,
    /// Out-of-order engine and arithmetic units — the paper's "blue" hot
    /// execution unit.
    Execution,
    /// Load/store pipeline and first-level data memory.
    LoadStore,
    /// Second-level cache and core uncore.
    Memory,
}

impl UnitGroup {
    /// All groups, in display order.
    pub const ALL: [UnitGroup; 4] = [
        UnitGroup::Frontend,
        UnitGroup::Execution,
        UnitGroup::LoadStore,
        UnitGroup::Memory,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            UnitGroup::Frontend => "frontend",
            UnitGroup::Execution => "execution",
            UnitGroup::LoadStore => "load-store",
            UnitGroup::Memory => "memory",
        }
    }
}

impl fmt::Display for UnitGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

macro_rules! block_kinds {
    ($( $variant:ident => ($name:literal, $group:ident, $density:literal, $gateable:literal) ),+ $(,)?) => {
        /// The 30 function-block types of one core of the modelled
        /// Xeon-E5-like processor.
        ///
        /// Each kind carries a nominal full-activity power density (W/mm²,
        /// plausible for a 22 nm high-performance core) and whether the
        /// block participates in power gating — gating events are the main
        /// source of the large di/dt current swings the paper targets.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[non_exhaustive]
        pub enum BlockKind {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl BlockKind {
            /// All 30 kinds in canonical (floorplan) order.
            pub const ALL: [BlockKind; 30] = [ $( BlockKind::$variant, )+ ];

            /// Human-readable block name.
            pub fn name(&self) -> &'static str {
                match self {
                    $( BlockKind::$variant => $name, )+
                }
            }

            /// Unit group this block belongs to.
            pub fn unit_group(&self) -> UnitGroup {
                match self {
                    $( BlockKind::$variant => UnitGroup::$group, )+
                }
            }

            /// Nominal power density at full activity, W/mm².
            pub fn nominal_power_density(&self) -> f64 {
                match self {
                    $( BlockKind::$variant => $density, )+
                }
            }

            /// `true` if the block can be power gated (source of large
            /// di/dt steps).
            pub fn is_gateable(&self) -> bool {
                match self {
                    $( BlockKind::$variant => $gateable, )+
                }
            }
        }
    };
}

block_kinds! {
    // Frontend (7)
    BranchPredictor   => ("branch predictor",    Frontend,  0.55, false),
    InstructionCache  => ("L1 instruction cache", Frontend, 0.35, false),
    InstructionTlb    => ("instruction TLB",      Frontend, 0.40, false),
    FetchUnit         => ("fetch unit",           Frontend, 0.60, false),
    Decoder           => ("decoder",              Frontend, 0.75, true),
    MicroOpCache      => ("micro-op cache",       Frontend, 0.45, true),
    MicrocodeRom      => ("microcode ROM",        Frontend, 0.20, true),
    // Out-of-order engine and execution (16)
    RenameUnit        => ("rename unit",          Execution, 0.85, false),
    ReorderBuffer     => ("reorder buffer",       Execution, 0.80, false),
    IntIssueQueue     => ("integer issue queue",  Execution, 0.95, false),
    FpIssueQueue      => ("FP issue queue",       Execution, 0.90, true),
    IntRegisterFile   => ("integer register file", Execution, 1.05, false),
    FpRegisterFile    => ("FP register file",     Execution, 0.95, true),
    Alu0              => ("ALU 0",                Execution, 1.30, false),
    Alu1              => ("ALU 1",                Execution, 1.30, true),
    Alu2              => ("ALU 2",                Execution, 1.30, true),
    BranchUnit        => ("branch unit",          Execution, 0.90, false),
    IntMultiplier     => ("integer multiplier",   Execution, 1.20, true),
    IntDivider        => ("integer divider",      Execution, 1.00, true),
    FpAdder           => ("FP adder",             Execution, 1.25, true),
    FpMultiplier      => ("FP multiplier",        Execution, 1.35, true),
    FpDivider         => ("FP divider",           Execution, 1.10, true),
    VectorUnit        => ("vector unit",          Execution, 1.40, true),
    // Load/store (6)
    LoadQueue         => ("load queue",           LoadStore, 0.70, false),
    StoreQueue        => ("store queue",          LoadStore, 0.70, false),
    AddressGen0       => ("address generation 0", LoadStore, 0.95, false),
    AddressGen1       => ("address generation 1", LoadStore, 0.95, true),
    DataCache         => ("L1 data cache",        LoadStore, 0.45, false),
    DataTlb           => ("data TLB",             LoadStore, 0.50, false),
    // Memory (1)
    L2Cache           => ("L2 cache slice",       Memory,    0.18, true),
}

impl BlockKind {
    /// Canonical index of this kind within [`BlockKind::ALL`].
    pub fn index(&self) -> usize {
        BlockKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("every kind is in ALL")
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A placed function block: a block kind instantiated in a core at a
/// concrete die location.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionBlock {
    id: BlockId,
    kind: BlockKind,
    core: CoreId,
    rect: Rect,
}

impl FunctionBlock {
    /// Creates a placed block. Used by [`crate::ChipFloorplan`]; exposed so
    /// tests and alternative floorplans can construct blocks directly.
    pub fn new(id: BlockId, kind: BlockKind, core: CoreId, rect: Rect) -> Self {
        FunctionBlock { id, kind, core, rect }
    }

    /// Chip-unique block id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Microarchitectural kind.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Owning core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Die-coordinates rectangle (µm).
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Block area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.rect.area() / 1.0e6
    }

    /// Nominal full-activity power in watts (density × area).
    pub fn nominal_power(&self) -> f64 {
        self.kind.nominal_power_density() * self.area_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn exactly_thirty_kinds() {
        assert_eq!(BlockKind::ALL.len(), 30);
    }

    #[test]
    fn kinds_are_unique() {
        for (i, a) in BlockKind::ALL.iter().enumerate() {
            for b in &BlockKind::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, k) in BlockKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn every_group_is_populated() {
        for g in UnitGroup::ALL {
            assert!(
                BlockKind::ALL.iter().any(|k| k.unit_group() == g),
                "group {g} has no blocks"
            );
        }
    }

    #[test]
    fn execution_units_are_hottest() {
        // The Fig. 3 narrative depends on the execution unit being the
        // worst-noise cluster, which requires the highest power densities.
        let max_exec = BlockKind::ALL
            .iter()
            .filter(|k| k.unit_group() == UnitGroup::Execution)
            .map(|k| k.nominal_power_density())
            .fold(0.0_f64, f64::max);
        let max_other = BlockKind::ALL
            .iter()
            .filter(|k| k.unit_group() != UnitGroup::Execution)
            .map(|k| k.nominal_power_density())
            .fold(0.0_f64, f64::max);
        assert!(max_exec > max_other);
    }

    #[test]
    fn some_blocks_are_gateable() {
        let gateable = BlockKind::ALL.iter().filter(|k| k.is_gateable()).count();
        assert!(gateable >= 10, "need plenty of gateable blocks for di/dt events");
        assert!(gateable < 30, "not everything should gate");
    }

    #[test]
    fn densities_positive_and_plausible() {
        for k in BlockKind::ALL {
            let d = k.nominal_power_density();
            assert!(d > 0.0 && d < 5.0, "{k}: implausible density {d}");
        }
    }

    #[test]
    fn function_block_power() {
        let rect = Rect::from_origin_size(Point::new(0.0, 0.0), 1000.0, 1000.0); // 1 mm²
        let b = FunctionBlock::new(BlockId(0), BlockKind::Alu0, CoreId(0), rect);
        assert!((b.area_mm2() - 1.0).abs() < 1e-12);
        assert!((b.nominal_power() - 1.30).abs() < 1e-12);
    }

    #[test]
    fn display_impls() {
        assert_eq!(BlockId(3).to_string(), "B3");
        assert_eq!(BlockKind::Alu0.to_string(), "ALU 0");
        assert_eq!(UnitGroup::Execution.to_string(), "execution");
    }
}
