//! Chip, core and function-block geometry for the voltsense workspace.
//!
//! The DAC'15 experiments use a 22 nm, 8-core Xeon-E5-like processor with
//! 30 function blocks per core. This crate models that floorplan
//! parametrically:
//!
//! * [`BlockKind`] — the 30 microarchitectural block types with their unit
//!   grouping (frontend / execution / load-store / memory / uncore) and
//!   nominal power densities.
//! * [`CorePlan`] — the arrangement of the 30 blocks inside one core tile,
//!   separated by blank-area routing channels.
//! * [`ChipFloorplan`] — a grid of cores plus periphery; the union of block
//!   rectangles is the **function area (FA)**, everything else is the
//!   **blank area (BA)** where sensors may be placed.
//! * [`NodeLattice`] — the power-grid node lattice laid over the chip, with
//!   every node classified as FA (inside a block) or BA (sensor candidate).
//!
//! # Example
//!
//! ```
//! use voltsense_floorplan::{ChipFloorplan, ChipConfig};
//!
//! # fn main() -> Result<(), voltsense_floorplan::FloorplanError> {
//! let chip = ChipFloorplan::new(&ChipConfig::small_test())?;
//! assert_eq!(chip.cores().len(), 2);
//! assert_eq!(chip.blocks().len(), 2 * 30);
//! let lattice = chip.lattice();
//! assert!(!lattice.candidate_sites().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod chip;
mod core_plan;
mod error;
mod geometry;
mod sites;

pub use block::{BlockId, BlockKind, FunctionBlock, UnitGroup};
pub use chip::{ChipConfig, ChipFloorplan, CoreId, CoreInstance};
pub use core_plan::CorePlan;
pub use error::FloorplanError;
pub use geometry::{Point, Rect};
pub use sites::{NodeId, NodeLattice, NodeSite};
