use crate::block::BlockKind;
use crate::geometry::{Point, Rect};
use crate::FloorplanError;

/// Number of block columns in the core cell grid.
pub(crate) const GRID_COLS: usize = 6;
/// Number of block rows in the core cell grid.
pub(crate) const GRID_ROWS: usize = 5;

/// Fixed assignment of the 30 block kinds to the 6x5 cell grid of one core,
/// bottom row first. The out-of-order/execution engine occupies the middle
/// rows, so the hot execution cluster of the paper's Fig. 3 sits in the
/// core's centre; the frontend is at the bottom edge and the load-store /
/// L2 blocks at the top.
const LAYOUT: [[BlockKind; GRID_COLS]; GRID_ROWS] = [
    [
        BlockKind::MicrocodeRom,
        BlockKind::Decoder,
        BlockKind::FetchUnit,
        BlockKind::BranchPredictor,
        BlockKind::InstructionTlb,
        BlockKind::InstructionCache,
    ],
    [
        BlockKind::FpDivider,
        BlockKind::FpIssueQueue,
        BlockKind::FpRegisterFile,
        BlockKind::RenameUnit,
        BlockKind::ReorderBuffer,
        BlockKind::MicroOpCache,
    ],
    [
        BlockKind::IntIssueQueue,
        BlockKind::IntMultiplier,
        BlockKind::IntDivider,
        BlockKind::VectorUnit,
        BlockKind::FpAdder,
        BlockKind::FpMultiplier,
    ],
    [
        BlockKind::AddressGen1,
        BlockKind::IntRegisterFile,
        BlockKind::Alu0,
        BlockKind::Alu1,
        BlockKind::Alu2,
        BlockKind::BranchUnit,
    ],
    [
        BlockKind::L2Cache,
        BlockKind::DataCache,
        BlockKind::DataTlb,
        BlockKind::LoadQueue,
        BlockKind::StoreQueue,
        BlockKind::AddressGen0,
    ],
];

/// The intra-core floorplan: positions of the 30 function blocks inside a
/// single core tile, in tile-local coordinates with the origin at the
/// tile's bottom-left corner.
///
/// Blocks are laid out on a 6x5 cell grid; each block occupies the centre
/// of its cell, leaving blank-area routing channels between blocks where
/// sensor candidates live.
///
/// # Example
///
/// ```
/// use voltsense_floorplan::CorePlan;
///
/// # fn main() -> Result<(), voltsense_floorplan::FloorplanError> {
/// let plan = CorePlan::new(3000.0, 2500.0, 0.18)?;
/// assert_eq!(plan.block_rects().len(), 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorePlan {
    width: f64,
    height: f64,
    channel_fraction: f64,
    rects: Vec<(BlockKind, Rect)>,
}

impl CorePlan {
    /// Builds the intra-core plan for a tile of `width x height` µm.
    ///
    /// `channel_fraction` is the fraction of each cell's linear dimension
    /// devoted to blank-area channels (split evenly on both sides of the
    /// block), and must lie in `(0, 0.8)`.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidConfig`] for non-positive
    /// dimensions or an out-of-range channel fraction.
    pub fn new(width: f64, height: f64, channel_fraction: f64) -> Result<Self, FloorplanError> {
        if !(width > 0.0) || !(height > 0.0) {
            return Err(FloorplanError::InvalidConfig {
                what: format!("core tile must have positive size, got {width}x{height}"),
            });
        }
        if !(channel_fraction > 0.0 && channel_fraction < 0.8) {
            return Err(FloorplanError::InvalidConfig {
                what: format!("channel fraction must be in (0, 0.8), got {channel_fraction}"),
            });
        }
        let cell_w = width / GRID_COLS as f64;
        let cell_h = height / GRID_ROWS as f64;
        let margin_x = cell_w * channel_fraction / 2.0;
        let margin_y = cell_h * channel_fraction / 2.0;
        let mut rects = Vec::with_capacity(30);
        for (row, kinds) in LAYOUT.iter().enumerate() {
            for (col, &kind) in kinds.iter().enumerate() {
                let cell = Rect::from_origin_size(
                    Point::new(col as f64 * cell_w, row as f64 * cell_h),
                    cell_w,
                    cell_h,
                );
                let block = Rect::new(
                    cell.x0 + margin_x,
                    cell.y0 + margin_y,
                    cell.x1 - margin_x,
                    cell.y1 - margin_y,
                );
                rects.push((kind, block));
            }
        }
        Ok(CorePlan {
            width,
            height,
            channel_fraction,
            rects,
        })
    }

    /// Core tile width (µm).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Core tile height (µm).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The 30 `(kind, tile-local rect)` pairs in canonical layout order.
    pub fn block_rects(&self) -> &[(BlockKind, Rect)] {
        &self.rects
    }

    /// Fraction of the tile covered by function blocks.
    pub fn fa_utilization(&self) -> f64 {
        let fa: f64 = self.rects.iter().map(|(_, r)| r.area()).sum();
        fa / (self.width * self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn plan() -> CorePlan {
        CorePlan::new(3000.0, 2500.0, 0.18).unwrap()
    }

    #[test]
    fn layout_uses_each_kind_once() {
        let kinds: HashSet<BlockKind> = LAYOUT.iter().flatten().copied().collect();
        assert_eq!(kinds.len(), 30);
    }

    #[test]
    fn thirty_blocks_no_overlap() {
        let p = plan();
        let rects = p.block_rects();
        assert_eq!(rects.len(), 30);
        for (i, (_, a)) in rects.iter().enumerate() {
            for (_, b) in &rects[i + 1..] {
                assert!(!a.overlaps(b), "blocks overlap: {a} vs {b}");
            }
        }
    }

    #[test]
    fn blocks_inside_tile() {
        let p = plan();
        let tile = Rect::new(0.0, 0.0, 3000.0, 2500.0);
        for (_, r) in p.block_rects() {
            assert!(tile.contains(Point::new(r.x0, r.y0)));
            assert!(tile.contains(Point::new(r.x1, r.y1)));
        }
    }

    #[test]
    fn utilization_matches_channel_fraction() {
        let p = plan();
        // Each block covers (1 − cf)² of its cell.
        let expected = (1.0 - 0.18_f64).powi(2);
        assert!((p.fa_utilization() - expected).abs() < 1e-12);
    }

    #[test]
    fn channels_exist_between_blocks() {
        let p = plan();
        // The point exactly between two adjacent cells is blank area.
        let cell_w = 3000.0 / 6.0;
        let boundary = Point::new(cell_w, 1250.0);
        assert!(
            !p.block_rects().iter().any(|(_, r)| r.contains(boundary)),
            "cell boundary should be blank area"
        );
    }

    #[test]
    fn execution_cluster_is_central() {
        use crate::UnitGroup;
        let p = plan();
        let tile_cy = 1250.0;
        let mean_exec_dy: f64 = {
            let ys: Vec<f64> = p
                .block_rects()
                .iter()
                .filter(|(k, _)| k.unit_group() == UnitGroup::Execution)
                .map(|(_, r)| (r.center().y - tile_cy).abs())
                .collect();
            ys.iter().sum::<f64>() / ys.len() as f64
        };
        let mean_frontend_dy: f64 = {
            let ys: Vec<f64> = p
                .block_rects()
                .iter()
                .filter(|(k, _)| k.unit_group() == UnitGroup::Frontend)
                .map(|(_, r)| (r.center().y - tile_cy).abs())
                .collect();
            ys.iter().sum::<f64>() / ys.len() as f64
        };
        assert!(mean_exec_dy < mean_frontend_dy);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CorePlan::new(0.0, 100.0, 0.2).is_err());
        assert!(CorePlan::new(100.0, -1.0, 0.2).is_err());
        assert!(CorePlan::new(100.0, 100.0, 0.0).is_err());
        assert!(CorePlan::new(100.0, 100.0, 0.9).is_err());
        assert!(CorePlan::new(100.0, 100.0, f64::NAN).is_err());
    }
}
