use std::fmt;

use crate::block::{BlockId, FunctionBlock};
use crate::core_plan::CorePlan;
use crate::geometry::{Point, Rect};
use crate::sites::NodeLattice;
use crate::FloorplanError;

/// Identifier of a core on the chip (row-major over the core grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A placed core: id plus its tile rectangle on the die.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreInstance {
    /// Core id.
    pub id: CoreId,
    /// Tile rectangle in die coordinates (µm).
    pub rect: Rect,
}

/// Parameters of the chip floorplan.
///
/// All lengths are micrometres. Use [`ChipConfig::xeon_e5_like`] for the
/// paper-scale 8-core chip or [`ChipConfig::small_test`] for fast tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Cores per row.
    pub cores_x: usize,
    /// Cores per column.
    pub cores_y: usize,
    /// Core tile width (µm).
    pub core_width: f64,
    /// Core tile height (µm).
    pub core_height: f64,
    /// Fraction of each block cell devoted to blank-area channels.
    pub channel_fraction: f64,
    /// Spacing between adjacent core tiles (µm) — blank area.
    pub core_spacing: f64,
    /// Blank-area margin around the core array (µm).
    pub periphery: f64,
    /// Power-grid node pitch (µm).
    pub grid_pitch: f64,
}

impl ChipConfig {
    /// The paper-scale configuration: 8 cores (4x2), 30 blocks each,
    /// ~14 x 6.2 mm die, 200 µm grid pitch.
    pub fn xeon_e5_like() -> Self {
        ChipConfig {
            cores_x: 4,
            cores_y: 2,
            core_width: 3000.0,
            core_height: 2500.0,
            channel_fraction: 0.18,
            core_spacing: 400.0,
            periphery: 400.0,
            grid_pitch: 200.0,
        }
    }

    /// A two-core configuration small enough for unit tests
    /// (coarser pitch, smaller tiles).
    pub fn small_test() -> Self {
        ChipConfig {
            cores_x: 2,
            cores_y: 1,
            core_width: 1500.0,
            core_height: 1250.0,
            channel_fraction: 0.20,
            core_spacing: 250.0,
            periphery: 250.0,
            grid_pitch: 125.0,
        }
    }

    /// Total die width implied by this configuration.
    pub fn die_width(&self) -> f64 {
        2.0 * self.periphery
            + self.cores_x as f64 * self.core_width
            + (self.cores_x.saturating_sub(1)) as f64 * self.core_spacing
    }

    /// Total die height implied by this configuration.
    pub fn die_height(&self) -> f64 {
        2.0 * self.periphery
            + self.cores_y as f64 * self.core_height
            + (self.cores_y.saturating_sub(1)) as f64 * self.core_spacing
    }

    fn validate(&self) -> Result<(), FloorplanError> {
        if self.cores_x == 0 || self.cores_y == 0 {
            return Err(FloorplanError::InvalidConfig {
                what: "core grid must be at least 1x1".into(),
            });
        }
        for (name, v) in [
            ("core_width", self.core_width),
            ("core_height", self.core_height),
            ("core_spacing", self.core_spacing),
            ("periphery", self.periphery),
            ("grid_pitch", self.grid_pitch),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(FloorplanError::InvalidConfig {
                    what: format!("{name} must be finite and non-negative, got {v}"),
                });
            }
        }
        if self.grid_pitch <= 0.0 {
            return Err(FloorplanError::InvalidConfig {
                what: "grid_pitch must be positive".into(),
            });
        }
        // Every block must contain at least one lattice node so each block
        // has a noise-critical node; the block's smallest dimension must
        // exceed one pitch.
        let cell_w = self.core_width / crate::core_plan::GRID_COLS as f64;
        let cell_h = self.core_height / crate::core_plan::GRID_ROWS as f64;
        let block_min =
            (cell_w.min(cell_h)) * (1.0 - self.channel_fraction.max(0.0));
        if block_min <= self.grid_pitch {
            return Err(FloorplanError::InvalidConfig {
                what: format!(
                    "grid_pitch {} too coarse: smallest block dimension is {block_min:.1} µm",
                    self.grid_pitch
                ),
            });
        }
        Ok(())
    }
}

/// The full-chip floorplan: placed cores, placed function blocks, and the
/// overlaid power-grid node lattice with FA/BA classification.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct ChipFloorplan {
    config: ChipConfig,
    cores: Vec<CoreInstance>,
    blocks: Vec<FunctionBlock>,
    lattice: NodeLattice,
}

impl ChipFloorplan {
    /// Builds the floorplan from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidConfig`] if the configuration is
    /// inconsistent (zero cores, non-positive sizes, or a grid pitch too
    /// coarse to give every block a lattice node).
    pub fn new(config: &ChipConfig) -> Result<Self, FloorplanError> {
        config.validate()?;
        let plan = CorePlan::new(
            config.core_width,
            config.core_height,
            config.channel_fraction,
        )?;

        let mut cores = Vec::with_capacity(config.cores_x * config.cores_y);
        let mut blocks = Vec::with_capacity(cores.capacity() * 30);
        for cy in 0..config.cores_y {
            for cx in 0..config.cores_x {
                let core_index = cy * config.cores_x + cx;
                let origin = Point::new(
                    config.periphery + cx as f64 * (config.core_width + config.core_spacing),
                    config.periphery + cy as f64 * (config.core_height + config.core_spacing),
                );
                let rect = Rect::from_origin_size(origin, config.core_width, config.core_height);
                let id = CoreId(core_index);
                cores.push(CoreInstance { id, rect });
                for (kind_index, (kind, local)) in plan.block_rects().iter().enumerate() {
                    blocks.push(FunctionBlock::new(
                        BlockId(core_index * 30 + kind_index),
                        *kind,
                        id,
                        local.translated(origin.x, origin.y),
                    ));
                }
            }
        }

        let lattice = NodeLattice::build(
            config.die_width(),
            config.die_height(),
            config.grid_pitch,
            &blocks,
        )?;

        Ok(ChipFloorplan {
            config: config.clone(),
            cores,
            blocks,
            lattice,
        })
    }

    /// The configuration this floorplan was built from.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Placed cores, in id order.
    pub fn cores(&self) -> &[CoreInstance] {
        &self.cores
    }

    /// Placed function blocks, in [`BlockId`] order
    /// (core-major, then layout order).
    pub fn blocks(&self) -> &[FunctionBlock] {
        &self.blocks
    }

    /// Looks up a block by id.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::UnknownId`] if out of range.
    pub fn block(&self, id: BlockId) -> Result<&FunctionBlock, FloorplanError> {
        self.blocks.get(id.0).ok_or(FloorplanError::UnknownId {
            kind: "block",
            index: id.0,
        })
    }

    /// Looks up a core by id.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::UnknownId`] if out of range.
    pub fn core(&self, id: CoreId) -> Result<&CoreInstance, FloorplanError> {
        self.cores.get(id.0).ok_or(FloorplanError::UnknownId {
            kind: "core",
            index: id.0,
        })
    }

    /// Blocks belonging to one core, in layout order.
    pub fn blocks_of_core(&self, id: CoreId) -> impl Iterator<Item = &FunctionBlock> {
        self.blocks.iter().filter(move |b| b.core() == id)
    }

    /// The power-grid node lattice with FA/BA classification.
    pub fn lattice(&self) -> &NodeLattice {
        &self.lattice
    }

    /// Die width (µm).
    pub fn die_width(&self) -> f64 {
        self.config.die_width()
    }

    /// Die height (µm).
    pub fn die_height(&self) -> f64 {
        self.config.die_height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::NodeSite;

    #[test]
    fn paper_scale_chip_has_8_cores_240_blocks() {
        let chip = ChipFloorplan::new(&ChipConfig::xeon_e5_like()).unwrap();
        assert_eq!(chip.cores().len(), 8);
        assert_eq!(chip.blocks().len(), 240);
    }

    #[test]
    fn block_ids_are_core_major() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        for (i, b) in chip.blocks().iter().enumerate() {
            assert_eq!(b.id().0, i);
            assert_eq!(b.core().0, i / 30);
        }
    }

    #[test]
    fn blocks_inside_their_core() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        for b in chip.blocks() {
            let core = chip.core(b.core()).unwrap();
            assert!(core.rect.contains(Point::new(b.rect().x0, b.rect().y0)));
            assert!(core.rect.contains(Point::new(b.rect().x1, b.rect().y1)));
        }
    }

    #[test]
    fn cores_do_not_overlap() {
        let chip = ChipFloorplan::new(&ChipConfig::xeon_e5_like()).unwrap();
        let cores = chip.cores();
        for (i, a) in cores.iter().enumerate() {
            for b in &cores[i + 1..] {
                assert!(!a.rect.overlaps(&b.rect));
            }
        }
    }

    #[test]
    fn every_block_has_a_lattice_node() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        for b in chip.blocks() {
            assert!(
                !chip.lattice().nodes_in_block(b.id()).is_empty(),
                "block {} has no lattice node",
                b.id()
            );
        }
    }

    #[test]
    fn candidates_are_all_blank_area() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let lattice = chip.lattice();
        for &nid in lattice.candidate_sites() {
            assert_eq!(lattice.site(nid), NodeSite::BlankArea);
        }
    }

    #[test]
    fn lookups_fail_gracefully() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        assert!(chip.block(BlockId(10_000)).is_err());
        assert!(chip.core(CoreId(99)).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ChipConfig::small_test();
        cfg.cores_x = 0;
        assert!(ChipFloorplan::new(&cfg).is_err());

        let mut cfg = ChipConfig::small_test();
        cfg.grid_pitch = 0.0;
        assert!(ChipFloorplan::new(&cfg).is_err());

        // Pitch coarser than a block: some block would get no node.
        let mut cfg = ChipConfig::small_test();
        cfg.grid_pitch = 500.0;
        assert!(ChipFloorplan::new(&cfg).is_err());

        let mut cfg = ChipConfig::small_test();
        cfg.core_width = f64::NAN;
        assert!(ChipFloorplan::new(&cfg).is_err());
    }

    #[test]
    fn die_size_formula() {
        let cfg = ChipConfig::xeon_e5_like();
        // 2*400 + 4*3000 + 3*400 = 800 + 12000 + 1200 = 14000
        assert!((cfg.die_width() - 14_000.0).abs() < 1e-9);
        // 2*400 + 2*2500 + 1*400 = 800 + 5000 + 400 = 6200
        assert!((cfg.die_height() - 6_200.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_of_core_returns_thirty() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        assert_eq!(chip.blocks_of_core(CoreId(1)).count(), 30);
    }
}
