use std::fmt;

/// A point on the die, in micrometres from the bottom-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (µm).
    pub x: f64,
    /// Vertical coordinate (µm).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangle on the die, in micrometres.
///
/// The rectangle is half-open on neither side for containment purposes:
/// [`Rect::contains`] treats all four edges as inside, which is the right
/// convention for classifying lattice nodes that may fall exactly on a
/// block boundary (a node on the edge of a block sees that block's
/// current).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge (µm).
    pub x0: f64,
    /// Bottom edge (µm).
    pub y0: f64,
    /// Right edge (µm).
    pub x1: f64,
    /// Top edge (µm).
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from its corners. Coordinates are normalized so
    /// that `x0 <= x1` and `y0 <= y1`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from its bottom-left corner and size.
    pub fn from_origin_size(origin: Point, width: f64, height: f64) -> Self {
        Rect::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// Width (µm).
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height (µm).
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area (µm²).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// `true` if the two rectangles overlap with positive area (touching
    /// edges do not count as overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Returns this rectangle shrunk by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if the margin would invert the rectangle.
    pub fn shrunk(&self, margin: f64) -> Rect {
        assert!(
            2.0 * margin <= self.width() && 2.0 * margin <= self.height(),
            "margin {margin} too large for rect {self:?}"
        );
        Rect {
            x0: self.x0 + margin,
            y0: self.y0 + margin,
            x1: self.x1 - margin,
            y1: self.y1 - margin,
        }
    }

    /// Returns this rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1}]x[{:.1},{:.1}]",
            self.x0, self.x1, self.y0, self.y1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(r.x0, 1.0);
        assert_eq!(r.y1, 6.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 4.0);
    }

    #[test]
    fn contains_edges() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(2.1, 1.0)));
    }

    #[test]
    fn overlap_excludes_touching() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(!a.overlaps(&b));
        let c = Rect::new(0.5, 0.5, 1.5, 1.5);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn area_and_center() {
        let r = Rect::new(1.0, 2.0, 3.0, 6.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), Point::new(2.0, 4.0));
    }

    #[test]
    fn shrunk_and_translated() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let s = r.shrunk(1.0);
        assert_eq!(s, Rect::new(1.0, 1.0, 9.0, 9.0));
        let t = r.translated(5.0, -2.0);
        assert_eq!(t, Rect::new(5.0, -2.0, 15.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn shrunk_too_much_panics() {
        Rect::new(0.0, 0.0, 1.0, 1.0).shrunk(0.6);
    }

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.0, 2.0)");
        assert!(!Rect::new(0.0, 0.0, 1.0, 1.0).to_string().is_empty());
    }
}
