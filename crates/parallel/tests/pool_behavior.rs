//! Behavioral contract of the thread pool: panic propagation, inline
//! fallback at parallelism 1, order preservation, nested-region safety.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use voltsense_parallel as parallel;
use voltsense_parallel::ThreadPool;

#[test]
fn par_map_preserves_input_order() {
    for threads in [1usize, 2, 4, 7] {
        parallel::with_threads(threads, || {
            let items: Vec<usize> = (0..103).collect();
            let out = parallel::par_map(&items, |&x| x * x);
            let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads={threads}");
        });
    }
}

#[test]
fn for_each_chunk_covers_every_index_once() {
    for threads in [1usize, 3, 4] {
        parallel::with_threads(threads, || {
            let seen: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            parallel::for_each_chunk(seen.len(), 8, |range| {
                for i in range {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                seen.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "threads={threads}: some index not covered exactly once"
            );
        });
    }
}

#[test]
fn for_each_row_block_partitions_rows_disjointly() {
    for threads in [1usize, 2, 5] {
        parallel::with_threads(threads, || {
            let width = 3;
            let rows = 41;
            let mut data = vec![0u32; rows * width];
            parallel::for_each_row_block(&mut data, width, 1, |first_row, block| {
                for (r, row) in block.chunks_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + r) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (0..rows)
                .flat_map(|r| std::iter::repeat(r as u32 + 1).take(width))
                .collect();
            assert_eq!(data, expect, "threads={threads}");
        });
    }
}

#[test]
fn panic_in_a_chunk_propagates_to_the_submitter() {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        parallel::with_threads(4, || {
            parallel::run(8, |i| {
                if i == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        });
    }));
    let payload = caught.expect_err("the chunk panic must surface on the submitting thread");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("chunk 5 exploded"), "unexpected payload: {msg:?}");

    // The pool survives a panicked batch: the next batch completes normally.
    let total = AtomicUsize::new(0);
    parallel::with_threads(4, || {
        parallel::run(8, |i| {
            total.fetch_add(i + 1, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 36);
}

#[test]
fn parallelism_one_runs_inline_on_the_calling_thread() {
    // With parallelism forced to 1 every chunk must run on the submitting
    // thread itself (the VOLTSENSE_THREADS=1 short-circuit) — a private
    // pool shows no worker is ever spawned for it either.
    let pool = ThreadPool::new(1);
    let caller = std::thread::current().id();
    let ran_on_caller = Mutex::new(Vec::new());
    pool.run(4, &|i| {
        ran_on_caller
            .lock()
            .unwrap()
            .push((i, std::thread::current().id() == caller));
    });
    let runs = ran_on_caller.into_inner().unwrap();
    assert_eq!(runs.len(), 4);
    assert!(runs.iter().all(|&(_, inline)| inline), "a chunk left the calling thread");
    assert_eq!(pool.spawned_workers(), 0, "parallelism 1 must not spawn workers");

    parallel::with_threads(1, || {
        let items = vec![1u64, 2, 3];
        let out = parallel::par_map(&items, |&x| {
            (x, std::thread::current().id() == caller)
        });
        assert!(out.iter().all(|&(_, inline)| inline));
    });
}

#[test]
fn nested_parallel_regions_run_inline_without_deadlock() {
    parallel::with_threads(4, || {
        let outer: Vec<usize> = (0..8).collect();
        let out = parallel::par_map(&outer, |&o| {
            // Inner region: on a worker this must run inline; on the
            // submitting thread it may parallelize. Either way the value
            // is deterministic.
            let inner: Vec<usize> = (0..50).collect();
            parallel::par_map(&inner, |&i| o * 100 + i).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|o| (0..50).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(out, expect);
    });
}

#[test]
fn with_threads_can_exceed_the_configured_default() {
    // Even on a 1-core machine the override forces real multi-threaded
    // execution, so thread-count sweeps are exercisable anywhere.
    parallel::with_threads(4, || {
        assert_eq!(parallel::current_threads(), 4);
        let seen = Mutex::new(std::collections::HashSet::new());
        parallel::run(64, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to claim chunks.
            std::thread::yield_now();
        });
        assert!(!seen.lock().unwrap().is_empty());
    });
}

#[test]
fn scoped_telemetry_capture_sees_worker_emitted_signals() {
    use std::sync::Arc;
    use voltsense_telemetry as telemetry;

    let recorder = Arc::new(telemetry::MemoryRecorder::new());
    telemetry::with_scoped(recorder.clone(), || {
        parallel::with_threads(4, || {
            parallel::run(16, |_| {
                telemetry::counter("pool_test.task_signals", 1);
            });
        });
    });
    let snapshot = recorder.snapshot("pool_behavior");
    let counted = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "pool_test.task_signals")
        .map(|&(_, value)| value)
        .unwrap_or(0);
    assert_eq!(
        counted, 16,
        "signals emitted from pool workers must reach the submitter's scoped capture"
    );
}
