//! The scoped thread pool: persistent workers, one batch at a time,
//! panic propagation, inline short-circuit.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use voltsense_telemetry as telemetry;

use crate::{chunk_ranges, in_worker, set_in_worker, MAX_THREADS};

/// One parallel batch: an indexed task run over `0..chunks`, executed
/// cooperatively by the submitting thread and the pool workers.
///
/// The task reference is lifetime-erased to `'static`; this is sound
/// because [`ThreadPool::run`] does not return until every chunk has
/// completed, and a worker never touches the task after its last
/// `fetch_add` returned an out-of-range index.
struct Batch {
    task: &'static (dyn Fn(usize) + Sync),
    /// Thread-scoped telemetry recorder of the submitting thread, if any —
    /// installed around each worker-executed chunk so captures see the
    /// whole parallel region.
    scoped: Option<Arc<dyn telemetry::Recorder>>,
    chunks: usize,
    next: AtomicUsize,
    done: Mutex<BatchDone>,
    done_cv: Condvar,
}

struct BatchDone {
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    /// Claims and executes chunks until the index space is exhausted;
    /// returns how many chunks this thread ran. Panics are recorded, not
    /// propagated — the submitting thread re-raises the first one.
    fn execute(&self, install_scope: bool) -> usize {
        let mut ran = 0usize;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                break;
            }
            let result = match (&self.scoped, install_scope) {
                (Some(r), true) => catch_unwind(AssertUnwindSafe(|| {
                    telemetry::with_scoped(r.clone(), || (self.task)(i))
                })),
                _ => catch_unwind(AssertUnwindSafe(|| (self.task)(i))),
            };
            ran += 1;
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(payload) = result {
                done.panic.get_or_insert(payload);
            }
            done.completed += 1;
            if done.completed == self.chunks {
                self.done_cv.notify_all();
            }
        }
        ran
    }
}

struct PoolState {
    batch: Option<Arc<Batch>>,
    /// Bumped on every publish; workers sleep until it moves so an
    /// exhausted batch is never re-entered.
    generation: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A pool of persistent `std::thread` workers executing statically
/// chunked batches. All batch primitives block until completion, so task
/// closures may freely borrow from the caller's stack.
///
/// Most code uses the process-global pool through the crate-level free
/// functions; constructing a private pool is for tests.
pub struct ThreadPool {
    default_threads: usize,
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes batches: the single-slot publish protocol supports one
    /// batch in flight at a time.
    submit: Mutex<()>,
}

impl ThreadPool {
    /// Creates a pool targeting `threads` parallelism (clamped to
    /// `1..=`[`MAX_THREADS`]). No worker is spawned until a batch first
    /// needs one, so `threads == 1` costs nothing.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            default_threads: threads.clamp(1, MAX_THREADS),
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    batch: None,
                    generation: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            submit: Mutex::new(()),
        }
    }

    /// The parallelism this pool targets by default (the
    /// [`crate::with_threads`] override can exceed it).
    pub fn default_threads(&self) -> usize {
        self.default_threads
    }

    /// Worker threads currently alive.
    pub fn spawned_workers(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The parallelism a batch submitted right now would use: the
    /// thread-local override or this pool's default, and always 1 from
    /// inside a worker.
    fn effective_threads(&self) -> usize {
        if in_worker() {
            return 1;
        }
        crate::override_or(self.default_threads)
    }

    fn ensure_workers(&self, wanted: usize) {
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        while workers.len() < wanted.min(MAX_THREADS - 1) {
            let shared = Arc::clone(&self.shared);
            let name = format!("voltsense-par-{}", workers.len());
            match std::thread::Builder::new().name(name).spawn(move || worker_loop(shared)) {
                Ok(handle) => workers.push(handle),
                // Spawn failure degrades to less parallelism: the caller
                // executes every chunk itself, so the batch still finishes.
                Err(_) => break,
            }
        }
    }

    /// Runs `task(i)` for every `i in 0..chunks`, blocking until all
    /// complete. Chunk indices are claimed atomically but the *work* behind
    /// each index must be a pure function of the index for determinism
    /// (every caller in this workspace partitions disjoint output by
    /// index). Inline (no synchronization) when `chunks <= 1`, effective
    /// parallelism is 1, or the caller is itself a pool worker. If any
    /// chunk panics the first payload is re-raised here after the batch
    /// drains.
    pub fn run(&self, chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        let want = self.effective_threads().min(chunks);
        if chunks == 1 || want <= 1 {
            telemetry::counter("parallel.inline_batches", 1);
            for i in 0..chunks {
                task(i);
            }
            return;
        }
        self.ensure_workers(want - 1);

        let _submit = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the batch is dropped from the publish slot and fully
        // completed (`completed == chunks`) before `run` returns, so the
        // erased reference never outlives the real borrow.
        let task_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(task) };
        let batch = Arc::new(Batch {
            task: task_static,
            scoped: telemetry::scoped_recorder(),
            chunks,
            next: AtomicUsize::new(0),
            done: Mutex::new(BatchDone {
                completed: 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.batch = Some(Arc::clone(&batch));
            st.generation = st.generation.wrapping_add(1);
        }
        self.shared.work_ready.notify_all();

        // The submitting thread works the same batch (its telemetry scope
        // is already installed). While it executes chunks it is flagged as
        // a worker so a nested parallel region inside a chunk runs inline
        // instead of re-entering the (non-reentrant) submit lock.
        let caller_ran = {
            struct Unflag(bool);
            impl Drop for Unflag {
                fn drop(&mut self) {
                    set_in_worker(self.0);
                }
            }
            let _unflag = Unflag(in_worker());
            set_in_worker(true);
            batch.execute(false)
        };

        let panic_payload = {
            let mut done = batch.done.lock().unwrap_or_else(|e| e.into_inner());
            while done.completed < chunks {
                done = batch
                    .done_cv
                    .wait(done)
                    .unwrap_or_else(|e| e.into_inner());
            }
            done.panic.take()
        };
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.batch = None;
        }
        telemetry::counter("parallel.batches", 1);
        telemetry::counter("parallel.tasks", chunks as u64);
        telemetry::counter("parallel.caller_tasks", caller_ran as u64);
        telemetry::counter("parallel.worker_tasks", (chunks - caller_ran) as u64);
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Partitions `0..len` into at most `effective_threads` contiguous
    /// chunks of at least `min_chunk` indices each ([`chunk_ranges`]
    /// boundaries) and runs `f(range)` for each. `min_chunk` is the
    /// work-granularity knob: chunks are never smaller, so tiny inputs run
    /// inline instead of paying dispatch overhead.
    pub fn for_each_chunk(&self, len: usize, min_chunk: usize, f: impl Fn(Range<usize>) + Sync) {
        if len == 0 {
            return;
        }
        let max_parts = len.div_ceil(min_chunk.max(1));
        let parts = self.effective_threads().min(max_parts);
        if parts <= 1 {
            f(0..len);
            return;
        }
        let ranges = chunk_ranges(len, parts);
        self.run(ranges.len(), &|i| f(ranges[i].clone()));
    }

    /// Maps `f` over `items`, returning outputs in input order. Items are
    /// statically chunked; each chunk's outputs are produced in item order
    /// and stitched back by chunk index, so the result equals the serial
    /// `items.iter().map(f).collect()` exactly.
    pub fn par_map<T: Sync, U: Send>(&self, items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
        let parts = self.effective_threads().min(items.len());
        if parts <= 1 {
            return items.iter().map(f).collect();
        }
        let ranges = chunk_ranges(items.len(), parts);
        let slots: Vec<Mutex<Vec<U>>> = ranges.iter().map(|_| Mutex::new(Vec::new())).collect();
        self.run(ranges.len(), &|ci| {
            let part: Vec<U> = items[ranges[ci].clone()].iter().map(&f).collect();
            *slots[ci].lock().unwrap_or_else(|e| e.into_inner()) = part;
        });
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            out.append(&mut slot.into_inner().unwrap_or_else(|e| e.into_inner()));
        }
        out
    }

    /// Splits a row-major buffer (`data.len() / width` rows of `width`
    /// items) into contiguous row blocks of at least `min_rows` rows and
    /// runs `f(first_row, block)` for each. Blocks are disjoint `&mut`
    /// sub-slices, so kernels write their partition directly — no
    /// `unsafe` needed at call sites.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` (with non-empty data) or `data.len()` is not
    /// a multiple of `width`.
    pub fn for_each_row_block<T: Send>(
        &self,
        data: &mut [T],
        width: usize,
        min_rows: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        if data.is_empty() {
            return;
        }
        assert!(
            width > 0 && data.len() % width == 0,
            "row width {width} does not divide buffer length {}",
            data.len()
        );
        let rows = data.len() / width;
        let max_parts = rows.div_ceil(min_rows.max(1));
        let parts = self.effective_threads().min(max_parts);
        if parts <= 1 {
            f(0, data);
            return;
        }
        let ranges = chunk_ranges(rows, parts);
        let mut blocks: Vec<Mutex<Option<(usize, &mut [T])>>> = Vec::with_capacity(ranges.len());
        let mut rest = data;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len() * width);
            blocks.push(Mutex::new(Some((r.start, head))));
            rest = tail;
        }
        self.run(blocks.len(), &|i| {
            let (first_row, block) = blocks[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each block is claimed exactly once");
            f(first_row, block);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    set_in_worker(true);
    // Show up in continuous-profiler samples (as `(idle)` between
    // batches) from the moment the worker exists, not its first span.
    telemetry::profile::register_current_thread();
    let mut last_generation = 0u64;
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != last_generation {
                    if let Some(batch) = &st.batch {
                        last_generation = st.generation;
                        break Arc::clone(batch);
                    }
                    // Generation moved but the batch is already cleared:
                    // remember we saw it so we don't spin.
                    last_generation = st.generation;
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        batch.execute(true);
    }
}
