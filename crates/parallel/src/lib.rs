//! # voltsense-parallel
//!
//! The workspace's in-tree data-parallel runtime: a scoped `std::thread`
//! pool with **deterministic static chunking**, built without external
//! dependencies (DESIGN.md §3 — no rayon).
//!
//! ## Determinism contract
//!
//! Every primitive here partitions work by *index*, never by arrival
//! order: [`chunk_ranges`] computes the same contiguous chunk boundaries
//! for a given `(len, parts)` on every run, and each chunk owns a disjoint
//! slice of the output. Which worker thread executes which chunk is
//! scheduling-dependent, but since chunks never share output and each
//! chunk performs its accumulations in the same order as serial code, the
//! result is **bit-identical** across thread counts (DESIGN.md §8). The
//! linalg kernels and every parallel region in the upper layers are built
//! on this invariant, and property tests pin it.
//!
//! ## Configuration
//!
//! The global pool (used by [`par_map`], [`for_each_chunk`],
//! [`for_each_row_block`], [`run`]) sizes itself from `VOLTSENSE_THREADS`
//! (parsed by [`voltsense_telemetry::env`]), defaulting to
//! `std::thread::available_parallelism()`. `VOLTSENSE_THREADS=1`
//! short-circuits every primitive to inline execution — no worker thread
//! is ever spawned and no synchronization is paid. [`with_threads`]
//! overrides the parallelism for the current thread for the duration of a
//! closure (benchmarks and property tests use it to sweep thread counts
//! in-process; it may exceed the configured default, growing the pool).
//!
//! ## Nesting and panics
//!
//! A parallel primitive invoked *from inside an executing chunk* — on a
//! pool worker or on the submitting thread while it works its own batch —
//! runs inline, so nested parallel regions never deadlock and never
//! oversubscribe. A panic in
//! any chunk is caught, the batch is drained, and the first panic payload
//! is re-raised on the submitting thread.
//!
//! Telemetry: the pool exports `parallel.pool_size` (gauge),
//! `parallel.batches`, `parallel.tasks`, `parallel.caller_tasks`,
//! `parallel.worker_tasks` and `parallel.inline_batches` (counters). A
//! thread-scoped telemetry capture active on the submitting thread is
//! propagated into the workers for the duration of each batch.

mod pool;

pub use pool::ThreadPool;

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::OnceLock;

use voltsense_telemetry as telemetry;

/// Hard cap on pool parallelism — a backstop against a typo'd
/// `VOLTSENSE_THREADS=400`, far above any machine this targets.
pub const MAX_THREADS: usize = 64;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn set_in_worker(v: bool) {
    IN_WORKER.with(|w| w.set(v));
}

/// `true` on a pool worker thread — parallel primitives called there run
/// inline (nested regions neither deadlock nor oversubscribe).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// The parallelism configured for the process: `VOLTSENSE_THREADS` if set
/// to a positive integer, else `available_parallelism()`, clamped to
/// [`MAX_THREADS`].
pub fn configured_threads() -> usize {
    telemetry::env::parse::<usize>("VOLTSENSE_THREADS")
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(MAX_THREADS)
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-global pool, created on first use with
/// [`configured_threads`] parallelism. Workers are spawned lazily, so a
/// `VOLTSENSE_THREADS=1` process never creates a thread.
pub fn pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let threads = configured_threads();
        telemetry::gauge("parallel.pool_size", threads as f64);
        ThreadPool::new(threads)
    })
}

/// The parallelism parallel primitives will use *right now* on this
/// thread: 1 on a pool worker, else the [`with_threads`] override, else
/// the configured default.
pub fn current_threads() -> usize {
    if in_worker() {
        return 1;
    }
    override_or(pool().default_threads())
}

/// The [`with_threads`] override if one is active on this thread, else
/// `default`, clamped to `1..=`[`MAX_THREADS`].
pub(crate) fn override_or(default: usize) -> usize {
    OVERRIDE
        .with(|o| o.get())
        .unwrap_or(default)
        .clamp(1, MAX_THREADS)
}

/// Runs `f` with the current thread's parallelism overridden to
/// `threads`. May exceed the configured default (the pool grows lazily);
/// `1` forces fully inline execution. Restores the previous override even
/// if `f` panics.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Deterministic static chunking: splits `0..len` into at most `parts`
/// contiguous, non-empty ranges whose lengths differ by at most one (the
/// first `len % parts` chunks are one longer). Depends only on
/// `(len, parts)` — never on thread scheduling.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Runs `task(i)` for every `i in 0..chunks` on the global pool,
/// blocking until all complete. See [`ThreadPool::run`].
pub fn run(chunks: usize, task: impl Fn(usize) + Sync) {
    pool().run(chunks, &task);
}

/// Partitions `0..len` into contiguous chunks of at least `min_chunk`
/// indices and runs `f(range)` for each on the global pool. See
/// [`ThreadPool::for_each_chunk`].
pub fn for_each_chunk(len: usize, min_chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    pool().for_each_chunk(len, min_chunk, f);
}

/// Maps `f` over `items` on the global pool, preserving order. See
/// [`ThreadPool::par_map`].
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    pool().par_map(items, f)
}

/// Splits a row-major `data` buffer (rows of `width` items) into
/// contiguous row blocks of at least `min_rows` rows and runs
/// `f(first_row, block)` for each on the global pool. See
/// [`ThreadPool::for_each_row_block`].
pub fn for_each_row_block<T: Send>(
    data: &mut [T],
    width: usize,
    min_rows: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    pool().for_each_row_block(data, width, min_rows, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 2, 3, 7, 64, 65, 1000] {
            for parts in [1usize, 2, 3, 4, 7, 64] {
                let ranges = chunk_ranges(len, parts);
                let mut seen = vec![false; len];
                for r in &ranges {
                    assert!(!r.is_empty(), "empty chunk for len={len} parts={parts}");
                    for i in r.clone() {
                        assert!(!seen[i], "index {i} covered twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "len={len} parts={parts} missed an index");
                if len > 0 {
                    assert!(ranges.len() <= parts.min(len));
                    let min = ranges.iter().map(ExactSizeIterator::len).min().unwrap();
                    let max = ranges.iter().map(ExactSizeIterator::len).max().unwrap();
                    assert!(max - min <= 1, "unbalanced: {ranges:?}");
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_deterministic() {
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = OVERRIDE.with(|o| o.get());
        let caught = std::panic::catch_unwind(|| {
            with_threads(3, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(OVERRIDE.with(|o| o.get()), before);
    }

    #[test]
    fn configured_threads_positive_and_capped() {
        let n = configured_threads();
        assert!(n >= 1 && n <= MAX_THREADS);
    }
}
