//! Prometheus text-exposition encoder tests: name/label escaping, quantile
//! rendering against the exact log-scale histogram percentiles, the
//! empty-registry document, and a full round-trip parse of every sample
//! line the encoder emits.

use voltsense_telemetry::prom::{encode, escape_label_value, sanitize_name};
use voltsense_telemetry::{MemoryRecorder, Recorder, Snapshot};
use voltsense_testkit::{forall, vec_f64};

/// Minimal exposition-line parser (the same grammar `scrape_endpoint`
/// enforces in CI): `name[{labels}] value` → (name, labels, value).
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, f64) {
    let (name_part, value_part) = line.rsplit_once(' ').expect("sample has a value");
    let value = match value_part {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().unwrap_or_else(|_| panic!("bad value {v:?} in {line:?}")),
    };
    let (name, labels) = match name_part.split_once('{') {
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').expect("terminated label set");
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').expect("label has a value");
                let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')).expect("quoted");
                labels.push((k.to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
        None => (name_part.to_string(), Vec::new()),
    };
    assert!(
        name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        }),
        "metric name {name:?} violates the exposition grammar"
    );
    (name, labels, value)
}

fn empty_snapshot(suite: &str) -> Snapshot {
    Snapshot {
        suite: suite.to_string(),
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: Vec::new(),
        spans: Vec::new(),
        events: Vec::new(),
    }
}

#[test]
fn empty_registry_is_a_valid_nonempty_document() {
    let text = encode(&empty_snapshot("nothing_here"));
    assert!(!text.is_empty());
    assert!(text.starts_with("# voltsense"), "leads with the suite comment");
    assert!(text.contains("nothing_here"));
    assert!(text.ends_with('\n'), "exposition format requires a trailing newline");
    // Only the suite comment and the static build-info family — and every
    // non-comment line still parses as a sample.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, _, value) = parse_sample(line);
        assert_eq!(name, "voltsense_build_info", "unexpected sample in empty registry: {line}");
        assert_eq!(value, 1.0);
    }
}

#[test]
fn build_info_gauge_is_always_exposed() {
    let text = encode(&empty_snapshot("build"));
    assert!(text.contains("# TYPE voltsense_build_info gauge"));
    let line = text
        .lines()
        .find(|l| l.starts_with("voltsense_build_info{"))
        .expect("build_info sample present");
    let (name, labels, value) = parse_sample(line);
    assert_eq!(name, "voltsense_build_info");
    assert_eq!(value, 1.0, "info-style gauges always read 1; the payload is in the labels");
    let get = |k: &str| labels.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
    assert_eq!(get("version"), Some(env!("CARGO_PKG_VERSION")));
    assert_eq!(get("debug"), Some(if cfg!(debug_assertions) { "true" } else { "false" }));
}

#[test]
fn suite_comment_cannot_break_out_of_its_line() {
    let text = encode(&empty_snapshot("evil\nfake_metric 1\rmore"));
    // The whole hostile suite name collapses into the single leading
    // comment line; only the static build-info family follows it.
    let mut lines = text.lines();
    let first = lines.next().unwrap();
    assert!(first.starts_with("# voltsense"));
    assert!(first.contains("evilfake_metric 1more"), "newlines in the suite name must be stripped");
    assert!(
        lines.all(|l| l.contains("voltsense_build_info")),
        "nothing but build_info may follow the suite comment"
    );
}

#[test]
fn names_are_sanitized_to_the_prometheus_grammar() {
    assert_eq!(sanitize_name("monitor.observe"), "monitor_observe");
    assert_eq!(sanitize_name("fista/iter time (ms)"), "fista_iter_time__ms_");
    assert_eq!(sanitize_name("9lives"), "_9lives");
    assert_eq!(sanitize_name(""), "_");
    assert_eq!(sanitize_name("already_ok:subsystem_1"), "already_ok:subsystem_1");
    // An encoded document with hostile names still parses line-by-line.
    let mut snap = empty_snapshot("escape");
    snap.counters.push(("weird name{with}braces".to_string(), 7));
    snap.gauges.push(("99 problems".to_string(), 1.5));
    let text = encode(&snap);
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        parse_sample(line);
    }
    assert!(text.contains("weird_name_with_braces_total 7"));
    assert!(text.contains("_99_problems 1.5"));
}

#[test]
fn label_values_escape_backslash_quote_and_newline() {
    assert_eq!(escape_label_value(r"a\b"), r"a\\b");
    assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
    assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    assert_eq!(escape_label_value("plain μs"), "plain μs");
}

#[test]
fn quantiles_render_the_exact_histogram_percentiles() {
    forall!(cases = 32, (values in vec_f64(60, 1e-6, 1e9)) => {
        let rec = MemoryRecorder::new();
        for v in &values {
            rec.histogram_record("solver_time", *v, "ms");
        }
        let snap = rec.snapshot("quantiles");
        let h = snap.histogram("solver_time").unwrap().clone();
        let text = encode(&snap);

        let mut seen = 0;
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, labels, value) = parse_sample(line);
            let quantile = labels.iter().find(|(k, _)| k == "quantile").map(|(_, v)| v.clone());
            match (name.as_str(), quantile.as_deref()) {
                ("solver_time", Some("0.5")) => { assert_eq!(value, h.p50); seen += 1; }
                ("solver_time", Some("0.95")) => { assert_eq!(value, h.p95); seen += 1; }
                ("solver_time", Some("0.99")) => { assert_eq!(value, h.p99); seen += 1; }
                ("solver_time_sum", None) => {
                    assert!((value - h.mean * h.count as f64).abs() <= 1e-9 * value.abs().max(1.0));
                    seen += 1;
                }
                ("solver_time_count", None) => { assert_eq!(value, h.count as f64); seen += 1; }
                ("solver_time_min", None) => { assert_eq!(value, h.min); seen += 1; }
                ("solver_time_max", None) => { assert_eq!(value, h.max); seen += 1; }
                ("voltsense_build_info", None) => assert_eq!(value, 1.0),
                other => panic!("unexpected sample {other:?}"),
            }
            // Every quantile sample carries the unit label.
            if quantile.is_some() {
                assert!(labels.iter().any(|(k, v)| k == "unit" && v == "ms"));
            }
        }
        assert_eq!(seen, 7, "3 quantiles + sum + count + min + max");
        // Percentile ordering is preserved through the rendering.
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99);
    });
}

#[test]
fn every_family_gets_a_help_line_naming_the_raw_signal() {
    let rec = MemoryRecorder::new();
    rec.counter_add("fleet.frames_total", 2);
    rec.gauge_set("fleet.sessions", 3.0);
    rec.histogram_record("fleet.reading_total_ns", 120.0, "ns");
    let snap = rec.snapshot("help");
    let text = encode(&snap);

    // Every # TYPE line is immediately preceded by a # HELP line for the
    // same (sanitized) family name — the conformance shape scrapers and
    // promtool both expect.
    let lines: Vec<&str> = text.lines().collect();
    let mut type_lines = 0;
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            type_lines += 1;
            let name = rest.split_whitespace().next().unwrap();
            assert!(i > 0, "TYPE can never be the first line");
            assert!(
                lines[i - 1].starts_with(&format!("# HELP {name} ")),
                "family {name} must lead with HELP, got {:?}",
                lines[i - 1]
            );
        }
    }
    // build_info + counter + gauge + summary + its _min and _max gauges.
    assert_eq!(type_lines, 6);
    assert!(text.contains("# HELP voltsense_build_info Build metadata of the scraped process."));
    // The help text names the raw dotted signal, not the sanitized name.
    assert!(text.contains("# HELP fleet_frames_total_total voltsense counter \"fleet.frames_total\"."));
    assert!(text.contains("# HELP fleet_sessions voltsense gauge \"fleet.sessions\"."));
    assert!(text
        .contains("# HELP fleet_reading_total_ns voltsense histogram \"fleet.reading_total_ns\" rendered as a summary."));
    assert!(text.contains("# HELP fleet_reading_total_ns_min exact minimum of \"fleet.reading_total_ns\"."));
}

#[test]
fn help_text_escapes_backslash_newline_and_quotes() {
    let mut snap = empty_snapshot("escapes");
    snap.counters.push(("evil\\name\nwith \"quotes\"".to_string(), 1));
    let text = encode(&snap);
    // One logical HELP line: the newline is escaped, not emitted. (Skip
    // the static build_info family's HELP line.)
    let help = text
        .lines()
        .find(|l| l.starts_with("# HELP") && !l.contains("voltsense_build_info"))
        .expect("help line present");
    assert!(help.contains("evil\\\\name\\nwith 'quotes'"), "{help}");
    // And the document still parses line-by-line.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        parse_sample(line);
    }
}

#[test]
fn nonfinite_values_use_the_exposition_spellings() {
    let mut snap = empty_snapshot("nonfinite");
    snap.gauges.push(("g_nan".to_string(), f64::NAN));
    snap.gauges.push(("g_pinf".to_string(), f64::INFINITY));
    snap.gauges.push(("g_ninf".to_string(), f64::NEG_INFINITY));
    let text = encode(&snap);
    assert!(text.contains("g_nan NaN\n"));
    assert!(text.contains("g_pinf +Inf\n"));
    assert!(text.contains("g_ninf -Inf\n"));
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        parse_sample(line);
    }
}

#[test]
fn full_document_round_trips_with_counters_gauges_and_type_lines() {
    let rec = MemoryRecorder::new();
    rec.counter_add("monitor.alarm_events", 3);
    rec.counter_add("monitor.samples", 1000);
    rec.gauge_set("monitor.predicted_min_v", 0.93);
    rec.histogram_record("observe_latency", 12.5, "us");
    let snap = rec.snapshot("roundtrip");
    let text = encode(&snap);

    let mut types = Vec::new();
    let mut samples = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut p = rest.split_whitespace();
            types.push((p.next().unwrap().to_string(), p.next().unwrap().to_string()));
        } else if !line.starts_with('#') {
            samples.push(parse_sample(line));
        }
    }
    // Counter names gain the `_total` suffix; every TYPE line has samples.
    assert!(types.contains(&("monitor_alarm_events_total".into(), "counter".into())));
    assert!(types.contains(&("monitor_samples_total".into(), "counter".into())));
    assert!(types.contains(&("monitor_predicted_min_v".into(), "gauge".into())));
    assert!(types.contains(&("observe_latency".into(), "summary".into())));
    for (name, kind) in &types {
        let n = samples.iter().filter(|(s, _, _)| s == name).count();
        let expected = if kind == "summary" { 3 } else { 1 };
        assert_eq!(n, expected, "TYPE {name} {kind} should have {expected} sample(s)");
    }
    let get = |n: &str| samples.iter().find(|(s, _, _)| s == n).map(|&(_, _, v)| v);
    assert_eq!(get("monitor_alarm_events_total"), Some(3.0));
    assert_eq!(get("monitor_samples_total"), Some(1000.0));
    assert_eq!(get("monitor_predicted_min_v"), Some(0.93));
    assert_eq!(get("observe_latency_count"), Some(1.0));
}
