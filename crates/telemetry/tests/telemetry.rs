//! Tests for the telemetry crate itself: histogram percentile math and
//! merging, span nesting/ordering under threads, no-op recorder identity,
//! and round-tripping the exporters through the in-tree JSON parser.

use std::sync::Arc;

use voltsense_telemetry::{
    self as telemetry, json, Histogram, MemoryRecorder, NoopRecorder, Recorder, SpanId,
};

/// Half a log-bucket: the worst-case relative error of a percentile query.
const HIST_REL_TOL: f64 = 0.05;

fn assert_close_rel(actual: f64, expected: f64, tol: f64, what: &str) {
    let err = (actual - expected).abs() / expected.abs().max(1e-300);
    assert!(
        err <= tol,
        "{what}: got {actual}, expected {expected} (rel err {err:.4} > {tol})"
    );
}

#[test]
fn histogram_percentiles_on_known_data() {
    let mut h = Histogram::new();
    // 1..=10_000 uniformly: p50 = 5000, p95 = 9500, p99 = 9900.
    for v in 1..=10_000 {
        h.record(v as f64);
    }
    assert_eq!(h.count(), 10_000);
    assert_eq!(h.min(), 1.0);
    assert_eq!(h.max(), 10_000.0);
    assert_close_rel(h.mean(), 5000.5, 1e-12, "mean");
    assert_close_rel(h.quantile(0.50), 5000.0, HIST_REL_TOL, "p50");
    assert_close_rel(h.quantile(0.95), 9500.0, HIST_REL_TOL, "p95");
    assert_close_rel(h.quantile(0.99), 9900.0, HIST_REL_TOL, "p99");
    // Extreme quantiles are exact because they clamp to min/max.
    assert_eq!(h.quantile(0.0), 1.0);
    assert_eq!(h.quantile(1.0), 10_000.0);
}

#[test]
fn histogram_quantiles_span_many_octaves() {
    let mut h = Histogram::new();
    // Strongly skewed data across 12 octaves: 99 fast ops and 1 slow one.
    for _ in 0..99 {
        h.record(1e3);
    }
    h.record(4e6);
    assert_close_rel(h.quantile(0.50), 1e3, HIST_REL_TOL, "p50 skewed");
    assert_close_rel(h.quantile(0.99), 1e3, HIST_REL_TOL, "p99 skewed");
    assert_eq!(h.quantile(1.0), 4e6);
}

#[test]
fn histogram_merge_matches_single_histogram() {
    let mut all = Histogram::new();
    let mut left = Histogram::new();
    let mut right = Histogram::new();
    for v in 1..=1000 {
        all.record(v as f64);
        if v % 2 == 0 {
            left.record(v as f64);
        } else {
            right.record(v as f64);
        }
    }
    let mut merged = Histogram::new();
    merged.merge(&left);
    merged.merge(&right);
    assert_eq!(merged.count(), all.count());
    assert_eq!(merged.min(), all.min());
    assert_eq!(merged.max(), all.max());
    assert_close_rel(merged.sum(), all.sum(), 1e-12, "merged sum");
    for q in [0.25, 0.5, 0.9, 0.95, 0.99] {
        assert_eq!(
            merged.quantile(q),
            all.quantile(q),
            "quantile {q} differs after merge"
        );
    }
    // Merging an empty histogram is the identity.
    let before = merged.quantile(0.5);
    merged.merge(&Histogram::new());
    assert_eq!(merged.count(), 1000);
    assert_eq!(merged.quantile(0.5), before);
}

#[test]
fn histogram_handles_nonpositive_values() {
    let mut h = Histogram::new();
    h.record(-5.0);
    h.record(0.0);
    h.record(f64::NAN);
    h.record(8.0);
    assert_eq!(h.count(), 4);
    assert_eq!(h.min(), -5.0);
    assert_eq!(h.max(), 8.0);
    // Ranks 1..=3 fall in the underflow bucket -> exact minimum.
    assert_eq!(h.quantile(0.25), -5.0);
    assert_close_rel(h.quantile(1.0), 8.0, 1e-12, "max rank");
}

#[test]
fn noop_recorder_identity() {
    let noop = NoopRecorder;
    let id = noop.span_begin("anything");
    assert_eq!(id, SpanId::NONE);
    noop.span_end(id);
    noop.counter_add("c", 3);
    noop.gauge_set("g", 1.0);
    noop.histogram_record("h", 2.0, "ns");
    noop.event("e", &[("f", 1.0)]);
    // With no recorder active, the free functions are no-ops and
    // enabled() reports false on this thread.
    assert!(!telemetry::enabled());
    let s = telemetry::span("unrecorded");
    telemetry::counter("unrecorded", 1);
    drop(s);
}

#[test]
fn memory_recorder_counters_gauges_events() {
    let rec = MemoryRecorder::new();
    rec.counter_add("widgets", 2);
    rec.counter_add("widgets", 3);
    rec.gauge_set("level", 1.0);
    rec.gauge_set("level", 4.5);
    rec.histogram_record("latency", 10.0, "ns");
    rec.event("tick", &[("i", 0.0)]);
    rec.event("tick", &[("i", 1.0)]);
    let snap = rec.snapshot("unit");
    assert_eq!(snap.suite, "unit");
    assert_eq!(snap.counter("widgets"), Some(5));
    assert_eq!(snap.gauge("level"), Some(4.5));
    assert_eq!(snap.histogram("latency").unwrap().count, 1);
    assert_eq!(snap.event_series("tick", "i"), vec![0.0, 1.0]);
}

#[test]
fn span_nesting_is_tracked_per_thread() {
    let rec = Arc::new(MemoryRecorder::new());
    telemetry::with_scoped(rec.clone(), || {
        let _outer = telemetry::span("outer");
        {
            let _inner = telemetry::span("inner");
            telemetry::counter("work", 1);
        }
    });
    let snap = rec.snapshot("unit");
    assert_eq!(snap.spans.len(), 2);
    let outer = snap.spans.iter().position(|s| s.name == "outer").unwrap();
    let inner = &snap.spans[snap.spans.iter().position(|s| s.name == "inner").unwrap()];
    assert_eq!(inner.parent, Some(outer), "inner span must parent to outer");
    assert!(snap.spans[outer].parent.is_none());
    // Inner is contained in outer.
    assert!(inner.start_ns >= snap.spans[outer].start_ns);
    assert!(inner.end_ns <= snap.spans[outer].end_ns);
    // Span durations feed histograms automatically.
    assert_eq!(snap.histogram("outer").unwrap().count, 1);
    assert_eq!(snap.histogram("inner").unwrap().unit, "ns");
}

#[test]
fn spans_from_multiple_threads_do_not_interleave_parents() {
    let rec = Arc::new(MemoryRecorder::new());
    let mut handles = Vec::new();
    for t in 0..4 {
        let rec = rec.clone();
        handles.push(std::thread::spawn(move || {
            telemetry::with_scoped(rec, move || {
                let _outer = telemetry::span(thread_span_name(t));
                let _inner = telemetry::span("t.inner");
            });
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = rec.snapshot("unit");
    assert_eq!(snap.spans.len(), 8);
    for inner in snap.spans.iter().filter(|s| s.name == "t.inner") {
        let parent = inner.parent.expect("inner span lost its parent");
        let parent = &snap.spans[parent];
        // The parent must be the outer span from the *same* thread.
        assert_eq!(parent.thread, inner.thread, "cross-thread parenting");
        assert_ne!(parent.name, "t.inner");
    }
    // Four distinct dense thread indices were assigned.
    let mut threads: Vec<usize> = snap.spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), 4);
}

fn thread_span_name(t: usize) -> &'static str {
    ["t0.outer", "t1.outer", "t2.outer", "t3.outer"][t]
}

#[test]
fn scoped_recorder_shadows_and_pops_on_panic() {
    let outer = Arc::new(MemoryRecorder::new());
    let inner = Arc::new(MemoryRecorder::new());
    telemetry::with_scoped(outer.clone(), || {
        telemetry::counter("hits", 1);
        let inner2 = inner.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            telemetry::with_scoped(inner2, || {
                telemetry::counter("hits", 10);
                panic!("boom");
            })
        }));
        assert!(result.is_err());
        // The panicked scope was popped; we are back on the outer recorder.
        telemetry::counter("hits", 1);
    });
    assert_eq!(outer.snapshot("unit").counter("hits"), Some(2));
    assert_eq!(inner.snapshot("unit").counter("hits"), Some(10));
}

#[test]
fn json_snapshot_roundtrips_through_parser() {
    let rec = MemoryRecorder::new();
    telemetry::with_scoped(Arc::new(NoopRecorder), || {});
    rec.counter_add("cg.solves", 7);
    rec.gauge_set("monitor.failed_sensors", 2.0);
    rec.histogram_record("cg.iterations", 12.0, "iters");
    rec.event("fista.iter", &[("objective", 1.25), ("kkt_residual", 1e-7)]);
    {
        let id = rec.span_begin("methodology.fit");
        rec.span_end(id);
    }
    let snap = rec.snapshot("roundtrip \"quoted\"");
    let doc = json::parse(&snap.to_json()).expect("snapshot JSON must parse");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("voltsense-metrics-v1")
    );
    assert_eq!(
        doc.get("suite").and_then(|v| v.as_str()),
        Some("roundtrip \"quoted\"")
    );
    let metrics = doc.get("metrics").and_then(|v| v.as_array()).unwrap();
    let kinds: Vec<&str> = metrics
        .iter()
        .filter_map(|m| m.get("kind").and_then(|k| k.as_str()))
        .collect();
    assert!(kinds.contains(&"counter"));
    assert!(kinds.contains(&"gauge"));
    assert!(kinds.contains(&"histogram"));
    for m in metrics {
        assert!(m.get("name").and_then(|v| v.as_str()).is_some());
        assert!(m.get("value").and_then(|v| v.as_f64()).is_some());
        assert!(m.get("unit").and_then(|v| v.as_str()).is_some());
    }
    assert_eq!(doc.get("spans").and_then(|v| v.as_array()).unwrap().len(), 1);
    let events = doc.get("events").and_then(|v| v.as_array()).unwrap();
    assert_eq!(events.len(), 1);
    let fields = events[0].get("fields").unwrap();
    assert_eq!(fields.get("objective").and_then(|v| v.as_f64()), Some(1.25));
}

#[test]
fn chrome_trace_roundtrips_through_parser() {
    let rec = MemoryRecorder::new();
    let outer = rec.span_begin("fit");
    let inner = rec.span_begin("refit");
    rec.span_end(inner);
    rec.span_end(outer);
    rec.event("cg.iter", &[("residual", 0.5)]);
    let trace = rec.snapshot("unit").to_chrome_trace();
    let doc = json::parse(&trace).expect("chrome trace must parse");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    assert_eq!(events.len(), 3);
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .count();
    assert_eq!(complete, 2, "both spans export as complete events");
    for e in events {
        assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
    }
}

#[test]
fn non_finite_event_fields_export_as_null() {
    let rec = MemoryRecorder::new();
    rec.event("weird", &[("v", f64::NAN), ("w", f64::INFINITY)]);
    let snap = rec.snapshot("unit");
    let doc = json::parse(&snap.to_json()).expect("NaN fields must not break JSON");
    let events = doc.get("events").and_then(|v| v.as_array()).unwrap();
    let fields = events[0].get("fields").unwrap();
    assert_eq!(fields.get("v"), Some(&json::Value::Null));
    json::parse(&snap.to_chrome_trace()).expect("NaN fields must not break the trace");
}

#[test]
fn env_helper_parses_boolish_spellings() {
    use voltsense_telemetry::env;
    for v in ["1", "true", "TRUE", "on", "Yes", " on "] {
        assert!(env::is_truthy(v), "{v:?} should be truthy");
        assert!(!env::is_falsy(v), "{v:?} should not be falsy");
    }
    for v in ["0", "false", "OFF", "no", ""] {
        assert!(env::is_falsy(v), "{v:?} should be falsy");
        assert!(!env::is_truthy(v), "{v:?} should not be truthy");
    }
    // A path-like value is neither: init_from_env treats it as a prefix.
    assert!(!env::is_truthy("results/run1"));
    assert!(!env::is_falsy("results/run1"));
}

#[test]
fn json_parser_rejects_malformed_documents() {
    for bad in ["", "{", "[1,", "{\"a\": }", "tru", "\"unterminated", "{}extra", "nan"] {
        assert!(json::parse(bad).is_err(), "{bad:?} should fail to parse");
    }
    // And accepts the fiddly corners we rely on.
    assert_eq!(json::parse("-1.5e-3").unwrap().as_f64(), Some(-0.0015));
    assert_eq!(
        json::parse("\"a\\u0041\\n\"").unwrap().as_str(),
        Some("aA\n")
    );
    assert_eq!(json::parse("[]").unwrap().as_array().map(|a| a.len()), Some(0));
}
