//! Property tests for the log-bucketed histogram's quantile estimate.
//!
//! The histogram stores positive samples in base-2 log buckets with 8
//! subbuckets per octave, so any value in a bucket is within a factor of
//! `2^(1/16)` of the bucket's geometric center — a ≤ ~4.43% relative
//! error bound on every interior quantile. The properties pin that
//! bracket, the exact extreme ranks, merge consistency, and the
//! single-sample edge.

use voltsense_telemetry::Histogram;
use voltsense_testkit::{f64_range, forall, vec_f64};

/// One bucket's maximal relative deviation from its geometric center:
/// `2^(1/16) - 1`, plus float slop.
const BUCKET_REL_WIDTH: f64 = 0.0443;
const SLOP: f64 = 1e-9;

/// The rank the histogram targets: `ceil(q * n)` clamped to `[1, n]`,
/// 1-indexed into the sorted samples.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as f64;
    let target = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

#[test]
fn quantile_brackets_exact_sample_quantile() {
    forall!(cases = 128, (values in vec_f64(50, 1e-3, 1e3),
                          q in f64_range(0.0, 1.0)) => {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = exact_quantile(&sorted, q);
        let est = hist.quantile(q);
        let rel = (est - exact).abs() / exact;
        assert!(
            rel <= BUCKET_REL_WIDTH + SLOP,
            "q={q}: estimate {est} vs exact {exact} (rel err {rel:.5} > bucket width)"
        );
    });
}

#[test]
fn extreme_quantiles_are_exact() {
    forall!(cases = 64, (values in vec_f64(20, 1e-3, 1e3)) => {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // min and max ranks are tracked exactly, not bucketed.
        assert_eq!(hist.quantile(0.0), sorted[0]);
        assert_eq!(hist.quantile(1.0), sorted[sorted.len() - 1]);
    });
}

#[test]
fn merge_matches_recording_everything_into_one() {
    forall!(cases = 64, (a in vec_f64(17, 1e-3, 1e3),
                         b in vec_f64(31, 1e-3, 1e3)) => {
        let mut left = Histogram::new();
        for &v in &a {
            left.record(v);
        }
        let mut right = Histogram::new();
        for &v in &b {
            right.record(v);
        }
        left.merge(&right);

        let mut all = Histogram::new();
        for &v in a.iter().chain(&b) {
            all.record(v);
        }
        assert_eq!(left.count(), all.count());
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
        // Bucket counts are integers, so the merged quantiles must agree
        // bit-for-bit with the all-in-one histogram at every rank.
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(left.quantile(q), all.quantile(q), "q={q}");
        }
    });
}

#[test]
fn single_sample_answers_every_quantile() {
    forall!(cases = 64, (v in f64_range(1e-3, 1e3)) => {
        let mut hist = Histogram::new();
        hist.record(v);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(hist.quantile(q), v, "q={q}");
        }
    });
}
