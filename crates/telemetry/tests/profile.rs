//! Integration tests for the continuous profiler: span-stack sampling,
//! collapsed/JSON export, allocation accounting with per-span
//! attribution, and the `alloc_gate!` facility itself.
//!
//! These tests drive `sample_once` directly (deterministic: the sampled
//! stack is whatever spans this thread holds open at the call), so they
//! hold regardless of the background sampler thread's timing.

voltsense_telemetry::install_counting_allocator!();

use std::hint::black_box;

use voltsense_telemetry::json::{self, Value};
use voltsense_telemetry::{alloc_gate, profile, span};

#[test]
fn sampler_folds_the_live_span_stack() {
    let guard = profile::start(50.0);
    let profiler = guard.profiler().clone();

    {
        let _outer = span("test.outer");
        let _inner = span("test.inner");
        profiler.sample_once();
        profiler.sample_once();
    }

    let collapsed = profiler.to_collapsed();
    let nested = collapsed
        .lines()
        .find(|l| l.starts_with("test.outer;test.inner "))
        .unwrap_or_else(|| panic!("no nested stack in:\n{collapsed}"));
    let count: u64 = nested.rsplit(' ').next().unwrap().parse().expect("count");
    assert!(count >= 2, "expected >= 2 samples, got {count} in:\n{collapsed}");

    // With the spans dropped, further samples of this thread are idle.
    let idle_before = profiler
        .to_collapsed()
        .lines()
        .find_map(|l| l.strip_prefix("(idle) ").map(|c| c.parse::<u64>().unwrap()))
        .unwrap_or(0);
    profiler.sample_once();
    let idle_after = profiler
        .to_collapsed()
        .lines()
        .find_map(|l| l.strip_prefix("(idle) ").map(|c| c.parse::<u64>().unwrap()))
        .unwrap_or(0);
    assert!(idle_after > idle_before, "idle {idle_before} -> {idle_after}");

    // The JSON document round-trips through the in-tree parser and
    // reports the same stack.
    let doc = json::parse(&profiler.to_json()).expect("profile JSON parses");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-profile-v1"));
    assert_eq!(doc.get("hz").and_then(Value::as_f64), Some(50.0));
    let Some(Value::Array(stacks)) = doc.get("stacks") else {
        panic!("stacks missing");
    };
    assert!(stacks.iter().any(|s| {
        matches!(s.get("stack"), Some(Value::Array(frames))
            if frames.iter().filter_map(Value::as_str).eq(["test.outer", "test.inner"]))
    }));
}

#[test]
fn sampler_survives_spans_dropped_out_of_order_and_deep_stacks() {
    let guard = profile::start(50.0);
    let profiler = guard.profiler().clone();

    // Deeper than MAX_DEPTH: the overflow is truncated, not UB; the
    // sampled stack ends in the `(truncated)` pseudo-frame.
    let spans: Vec<_> = (0..profile::MAX_DEPTH + 4).map(|_| span("test.deep")).collect();
    profiler.sample_once();
    drop(spans);

    let collapsed = profiler.to_collapsed();
    let deep = collapsed
        .lines()
        .find(|l| l.contains("test.deep"))
        .unwrap_or_else(|| panic!("no deep stack in:\n{collapsed}"));
    assert!(
        deep.contains("(truncated)"),
        "overflowed stack should be marked truncated: {deep}"
    );
}

#[test]
fn allocation_accounting_attributes_to_the_innermost_span() {
    assert!(
        profile::allocator_installed(),
        "install_counting_allocator! at the test-crate root must take effect"
    );
    let guard = profile::start(50.0);
    let profiler = guard.profiler().clone();

    let _counting = profile::enable_counting();
    let (bytes_before, calls_before, _, _) = profile::thread_alloc_totals();
    {
        let _span = span("test.alloc_site");
        black_box(Vec::<u8>::with_capacity(4096));
    }
    let (bytes_after, calls_after, dealloc_bytes, dealloc_calls) =
        profile::thread_alloc_totals();
    assert!(calls_after > calls_before, "allocation not counted");
    assert!(bytes_after >= bytes_before + 4096, "allocated bytes not counted");
    assert!(dealloc_calls > 0 && dealloc_bytes > 0, "drop not counted");

    // The JSON alloc section names the span the allocation happened under.
    let doc = json::parse(&profiler.to_json()).expect("profile JSON parses");
    let alloc = doc.get("alloc").expect("alloc section");
    assert!(
        matches!(alloc.get("allocator_installed"), Some(Value::Bool(true))),
        "allocator_installed should be true"
    );
    let rendered = profiler.to_json();
    assert!(
        rendered.contains("\"test.alloc_site\""),
        "per-span attribution missing from:\n{rendered}"
    );
}

#[test]
fn alloc_gate_passes_on_an_allocation_free_body() {
    let mut acc = 0u64;
    alloc_gate!("test.noop", 32, || {
        acc = acc.wrapping_mul(31).wrapping_add(7);
        black_box(acc);
    });
}

#[test]
fn alloc_gate_catches_a_steady_state_allocation() {
    let result = std::panic::catch_unwind(|| {
        alloc_gate!("test.leaky", 4, || {
            black_box(Vec::<u8>::with_capacity(64));
        });
    });
    assert!(result.is_err(), "gate must fail a body that allocates every iteration");
}
