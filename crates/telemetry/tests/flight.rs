//! Property suite pinning the flight recorder's ring-buffer semantics:
//! bounded capacity, oldest-first eviction, deterministic decimation
//! bookkeeping, and aggregate exactness against the unsampled
//! `MemoryRecorder`.

use std::sync::Arc;

use voltsense_telemetry::{
    flight, incident, Detail, FlightRecorder, MemoryRecorder, Recorder,
};
use voltsense_testkit::{forall, u64_range, usize_range, vec_f64};

/// Names used to interleave event streams; `&'static str` as the API requires.
const NAMES: [&'static str; 3] = ["stream.a", "stream.b", "stream.c"];

#[test]
fn ring_never_exceeds_capacity_and_evicts_oldest_first() {
    forall!(cases = 64, (
        capacity in usize_range(1, 48),
        pushes in usize_range(0, 400),
    ) => {
        let rec = FlightRecorder::new(capacity);
        for i in 0..pushes {
            rec.event(NAMES[i % NAMES.len()], &[("i", i as f64)]);
        }
        let ring = rec.ring_events();
        assert!(ring.len() <= capacity, "{} events in a capacity-{capacity} ring", ring.len());
        // Admission sequence numbers are strictly increasing and the
        // retained window is exactly the *latest* admitted suffix.
        for pair in ring.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "out-of-order ring: {:?}", ring);
        }
        let admitted: u64 = rec.sampler_stats().iter().map(|(_, s)| s.kept).sum();
        if let Some(last) = ring.last() {
            assert_eq!(last.seq + 1, admitted, "ring does not end at the newest admission");
        }
        if admitted >= capacity as u64 {
            assert_eq!(ring.len(), capacity, "ring should be full once admissions exceed capacity");
        } else {
            assert_eq!(ring.len(), admitted as usize);
        }
    });
}

#[test]
fn decimation_is_deterministic_and_only_thins_high_rate_names() {
    forall!(cases = 48, (
        capacity in usize_range(1, 64),
        n in usize_range(0, 600),
    ) => {
        let rec = FlightRecorder::new(capacity);
        for i in 0..n {
            rec.event("hot.loop", &[("i", i as f64)]);
        }
        let stats = rec.sampler_stats();
        if n == 0 {
            assert!(stats.is_empty());
        } else {
            let (_, s) = stats[0];
            assert_eq!(s.seen, n as u64);
            // Every occurrence below the capacity is kept verbatim.
            if n <= capacity {
                assert_eq!(s.kept, n as u64, "no decimation below one ring's worth");
                assert_eq!(s.stride, ((n / capacity) as u64 + 1).next_power_of_two());
            }
            // Replaying the same load admits exactly the same events
            // (timestamps aside — those are wall-clock).
            let rec2 = FlightRecorder::new(capacity);
            for i in 0..n {
                rec2.event("hot.loop", &[("i", i as f64)]);
            }
            let key = |e: &voltsense_telemetry::RingEvent| (e.seq, e.name, e.fields.clone());
            assert_eq!(
                rec.ring_events().iter().map(key).collect::<Vec<_>>(),
                rec2.ring_events().iter().map(key).collect::<Vec<_>>()
            );
        }
    });
}

#[test]
fn aggregates_match_the_unsampled_memory_recorder_exactly() {
    forall!(cases = 48, (
        values in vec_f64(40, 1e-3, 1e6),
        deltas in vec_f64(20, 0.0, 100.0),
        capacity in usize_range(1, 8),
    ) => {
        // A tiny ring so events are heavily decimated — aggregates must
        // still be exact because they are never sampled.
        let fr = FlightRecorder::new(capacity);
        let mr = MemoryRecorder::new();
        for v in &values {
            fr.histogram_record("h", *v, "V");
            mr.histogram_record("h", *v, "V");
            fr.event("e", &[("v", *v)]);
            mr.event("e", &[("v", *v)]);
        }
        for d in &deltas {
            let d = *d as u64;
            fr.counter_add("c", d);
            mr.counter_add("c", d);
        }
        fr.gauge_set("g", values[0]);
        mr.gauge_set("g", values[0]);

        let fs = fr.snapshot("flight");
        let ms = mr.snapshot("memory");
        assert_eq!(fs.counter("c"), ms.counter("c"));
        assert_eq!(fs.gauge("g"), ms.gauge("g"));
        let (fh, mh) = (fs.histogram("h").unwrap(), ms.histogram("h").unwrap());
        assert_eq!(fh.count, mh.count);
        assert_eq!(fh.min, mh.min);
        assert_eq!(fh.max, mh.max);
        assert_eq!(fh.mean, mh.mean);
        assert_eq!(fh.p50, mh.p50);
        assert_eq!(fh.p95, mh.p95);
        assert_eq!(fh.p99, mh.p99);
    });
}

#[test]
fn span_durations_feed_exact_histograms_without_parent_tracking() {
    let rec = FlightRecorder::new(4);
    for _ in 0..10 {
        let id = rec.span_begin("work");
        rec.span_end(id);
    }
    let snap = rec.snapshot("spans");
    let h = snap.histogram("work").expect("span duration histogram");
    assert_eq!(h.count, 10, "every span close lands in the histogram");
    assert!(snap.spans.is_empty(), "flight recorder keeps no span records");
    // Closing an unknown or NONE id is a no-op, not a panic.
    rec.span_end(voltsense_telemetry::SpanId::NONE);
    rec.span_end(voltsense_telemetry::SpanId(9999));
}

#[test]
fn flight_recorder_reports_sampled_detail() {
    let rec = Arc::new(FlightRecorder::new(16));
    assert_eq!(rec.detail(), Detail::Sampled);
    voltsense_telemetry::with_scoped(rec.clone(), || {
        assert!(voltsense_telemetry::enabled());
        assert!(
            !voltsense_telemetry::detailed(),
            "expensive diagnostics must stay off under the flight recorder"
        );
    });
    let mem: Arc<MemoryRecorder> = Arc::new(MemoryRecorder::new());
    voltsense_telemetry::with_scoped(mem, || {
        assert!(voltsense_telemetry::detailed());
    });
}

#[test]
fn incident_write_freezes_ring_and_metrics() {
    forall!(cases = 16, (
        capacity in usize_range(1, 32),
        n in usize_range(1, 120),
        failed in usize_range(0, 5),
        seed in u64_range(0, 1 << 20),
    ) => {
        let rec = Arc::new(FlightRecorder::new(capacity));
        for i in 0..n {
            rec.event("monitor.observe", &[("sample", i as f64)]);
            rec.counter_add("monitor.alarm_events", 1);
            rec.histogram_record("latency", (seed % 97 + i as u64) as f64, "steps");
        }
        let failed_sensors: Vec<usize> = (0..failed).collect();
        let dir = std::env::temp_dir().join(format!("voltsense_incident_{seed}_{capacity}_{n}"));
        let path = incident::write(
            &incident::Incident {
                kind: "alarm",
                fields: &[("predicted_min", 0.83), ("threshold", 0.85)],
                failed_sensors: &failed_sensors,
                gated_sensors: &[],
            },
            &rec,
            &dir,
        )
        .expect("incident write");
        let text = std::fs::read_to_string(&path).expect("read incident back");
        let doc = voltsense_telemetry::json::parse(&text).expect("incident JSON parses");
        let _ = std::fs::remove_dir_all(&dir);
        use voltsense_telemetry::json::Value;
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-incident-v1"));
        assert_eq!(doc.get("kind").and_then(Value::as_str), Some("alarm"));
        let ring = doc.get("ring").and_then(Value::as_array).expect("ring array");
        assert_eq!(ring.len(), rec.ring_events().len(), "ring serialized in full");
        assert!(ring.len() <= capacity);
        let failed_out = doc.get("failed_sensors").and_then(Value::as_array).unwrap();
        assert_eq!(failed_out.len(), failed);
        let metrics = doc.get("metrics").expect("embedded metrics snapshot");
        assert_eq!(
            metrics.get("schema").and_then(Value::as_str),
            Some("voltsense-metrics-v1")
        );
        assert_eq!(
            metrics.get("metrics").and_then(Value::as_array).map(<[Value]>::len),
            Some(2),
            "embedded snapshot carries exactly the counter and the histogram"
        );
    });
}

#[test]
fn report_is_a_noop_without_a_registered_flight_recorder_and_capped_with_one() {
    // This test owns the process-global flight registry and the incident
    // env knobs; it is the only test in this binary that touches them.
    incident::reset_caps();
    let dir = std::env::temp_dir().join("voltsense_incident_cap_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("VOLTSENSE_INCIDENT_DIR", &dir);
    std::env::set_var("VOLTSENSE_INCIDENT_MAX", "3");

    // No registered recorder yet: report must decline without writing.
    assert!(flight::current().is_none(), "another test installed a flight recorder");
    assert!(incident::report(&incident::Incident::new("cap_test")).is_none());
    assert!(!dir.exists(), "a declined report must not create the incident dir");

    flight::install(Arc::new(FlightRecorder::new(8)));
    let incident = incident::Incident::new("cap_test");
    let mut written = 0;
    for _ in 0..10 {
        if incident::report(&incident).is_some() {
            written += 1;
        }
    }
    assert_eq!(written, 3, "per-kind cap must bound incident files");
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(files, 3);
    let _ = std::fs::remove_dir_all(&dir);
    std::env::remove_var("VOLTSENSE_INCIDENT_DIR");
    std::env::remove_var("VOLTSENSE_INCIDENT_MAX");
}
