//! Live endpoint round-trip: bind `telemetry::serve` on an OS-assigned
//! port, scrape it over a real `TcpStream`, and check every route.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use voltsense_telemetry::json::{self, Value};
use voltsense_telemetry::serve::{serve, SnapshotSource};
use voltsense_telemetry::{FlightRecorder, Recorder};

/// One HTTP request against the server; returns (status line, headers, body).
fn request(addr: std::net::SocketAddr, head: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(head.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

#[test]
fn endpoint_serves_metrics_snapshot_and_healthz() {
    let rec = Arc::new(FlightRecorder::new(64));
    rec.counter_add("scrapes.seen", 2);
    rec.gauge_set("monitor.alarm_active", 0.0);
    rec.histogram_record("observe", 4.2, "us");
    rec.event("monitor.observe", &[("sample", 1.0)]);
    let source_rec = rec.clone();
    let source: SnapshotSource = Arc::new(move || source_rec.snapshot("serve_test"));
    // Port 0: the OS assigns; Server::addr reports what was bound.
    let mut server = serve("127.0.0.1:0", source).expect("bind");
    let addr = server.addr();
    assert_eq!(addr.ip().to_string(), "127.0.0.1");
    assert_ne!(addr.port(), 0);

    // --- /metrics -----------------------------------------------------
    let (status, headers, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        headers.contains("text/plain; version=0.0.4"),
        "exposition content type, got: {headers}"
    );
    assert!(body.contains("# TYPE scrapes_seen_total counter"));
    assert!(body.contains("scrapes_seen_total 2"));
    assert!(body.contains("monitor_alarm_active 0"));
    assert!(body.contains("observe{quantile=\"0.5\",unit=\"us\"}"));

    // --- /snapshot (rendered live: mutate between scrapes) ------------
    rec.counter_add("scrapes.seen", 1);
    let (status, headers, body) = get(addr, "/snapshot");
    assert!(status.contains("200"), "{status}");
    assert!(headers.contains("application/json"));
    let doc = json::parse(&body).expect("snapshot parses");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-metrics-v1"));
    assert_eq!(doc.get("suite").and_then(Value::as_str), Some("serve_test"));
    let metrics = doc.get("metrics").and_then(Value::as_array).unwrap();
    let counter = metrics
        .iter()
        .find(|m| m.get("name").and_then(Value::as_str) == Some("scrapes.seen"))
        .expect("counter in snapshot");
    assert_eq!(counter.get("value").and_then(Value::as_f64), Some(3.0), "snapshot is live");
    assert_eq!(
        doc.get("events").and_then(Value::as_array).map(<[Value]>::len),
        Some(1),
        "ring event present"
    );

    // --- /healthz, 404, 405 -------------------------------------------
    let (status, _, body) = get(addr, "/healthz");
    assert!(status.contains("200"));
    assert_eq!(body, "ok\n");
    let (status, _, _) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, _, _) = request(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(status.contains("405"), "{status}");

    // --- shutdown ------------------------------------------------------
    server.stop();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
            || TcpStream::connect(addr)
                .and_then(|mut s| {
                    s.set_read_timeout(Some(Duration::from_millis(500)))?;
                    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")?;
                    let mut out = String::new();
                    s.read_to_string(&mut out).map(|_| out)
                })
                .map_or(true, |out| out.is_empty()),
        "stopped server must not answer"
    );
}

#[test]
fn trace_and_slo_routes_serve_empty_documents_when_uninstalled() {
    // No TraceBuffer / SloTracker is installed in this test binary, so
    // both routes must answer valid, schema-tagged empty documents
    // rather than 404 — a scraper can always rely on the shape.
    let source: SnapshotSource = Arc::new(|| FlightRecorder::new(1).snapshot("routes"));
    let server = serve("127.0.0.1:0", source).expect("bind");
    let addr = server.addr();

    let (status, headers, body) = get(addr, "/trace");
    assert!(status.contains("200"), "{status}");
    assert!(headers.contains("application/json"), "{headers}");
    let doc = json::parse(&body).expect("trace document parses");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-trace-v1"));
    assert_eq!(
        doc.get("tenants").and_then(Value::as_array).map(<[Value]>::len),
        Some(0),
        "no buffer installed → no tenants"
    );

    let (status, headers, body) = get(addr, "/slo");
    assert!(status.contains("200"), "{status}");
    assert!(headers.contains("application/json"), "{headers}");
    let doc = json::parse(&body).expect("slo document parses");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-slo-v1"));
    assert_eq!(
        doc.get("tenants").and_then(Value::as_array).map(<[Value]>::len),
        Some(0),
    );

    // The 404 route list advertises the observability routes.
    let (status, _, body) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    assert!(body.contains("/trace") && body.contains("/slo"), "{body}");
}

#[test]
fn stalled_head_gets_408_instead_of_wedging_the_loop() {
    // Per-connection deadline is read per request, so a short budget here
    // only affects connections opened while this test runs.
    std::env::set_var("VOLTSENSE_TELEMETRY_READ_DEADLINE_MS", "400");
    let source: SnapshotSource = Arc::new(|| FlightRecorder::new(1).snapshot("loris"));
    let server = serve("127.0.0.1:0", source).expect("bind");
    let addr = server.addr();

    // A slow-loris client: send a partial request line, then stall.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(b"GET /metri").expect("send partial head");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.contains("408"), "expected 408, got: {response}");

    // The loop is not wedged: a well-formed scrape still answers.
    let (status, _, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");
    std::env::remove_var("VOLTSENSE_TELEMETRY_READ_DEADLINE_MS");
}

#[test]
fn oversized_head_gets_413_not_processed() {
    let source: SnapshotSource = Arc::new(|| FlightRecorder::new(1).snapshot("oversize"));
    let server = serve("127.0.0.1:0", source).expect("bind");
    let addr = server.addr();

    // Exactly MAX_HEAD bytes with no terminator: the server consumes all
    // of it (no unread data to RST on) and must refuse rather than parse.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(&vec![b'a'; 8 * 1024]).expect("send oversized head");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.contains("413"), "expected 413, got: {response}");

    // Follow-up request on a fresh connection still works.
    let (status, _, _) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
}

#[test]
fn bare_port_binds_loopback() {
    let source: SnapshotSource = Arc::new(|| FlightRecorder::new(1).snapshot("loopback"));
    // Bare "0": loopback by default — the documented security posture.
    let server = serve("0", source).expect("bind");
    assert!(server.addr().ip().is_loopback());
}

#[test]
fn root_serves_endpoint_index() {
    let source: SnapshotSource = Arc::new(|| FlightRecorder::new(1).snapshot("index"));
    let server = serve("127.0.0.1:0", source).expect("bind");
    let addr = server.addr();

    let (status, headers, body) = get(addr, "/");
    assert!(status.contains("200"), "{status}");
    assert!(headers.contains("application/json"), "{headers}");
    let doc = json::parse(&body).expect("index parses");
    assert_eq!(doc.get("service").and_then(Value::as_str), Some("voltsense-telemetry"));
    let Some(Value::Array(endpoints)) = doc.get("endpoints") else {
        panic!("\"endpoints\" is not an array: {body}");
    };
    // Every served route documents itself in the index.
    for path in ["/metrics", "/snapshot", "/trace", "/slo", "/profile", "/healthz"] {
        assert!(
            endpoints
                .iter()
                .any(|e| e.get("path").and_then(Value::as_str) == Some(path)),
            "index lacks {path}: {body}"
        );
    }

    // An unknown route still 404s (the index is "/" exactly, not a prefix).
    let (status, _, _) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
}

#[test]
fn profile_route_serves_json_and_collapsed() {
    use voltsense_telemetry::profile::{self, Profiler};

    let source: SnapshotSource = Arc::new(|| FlightRecorder::new(1).snapshot("profile"));
    let server = serve("127.0.0.1:0", source).expect("bind");
    let addr = server.addr();

    // With no profiler installed the route still answers with a valid
    // empty document (never 404 — scrapers can rely on the schema).
    let (status, headers, body) = get(addr, "/profile");
    assert!(status.contains("200"), "{status}");
    assert!(headers.contains("application/json"), "{headers}");
    let doc = json::parse(&body).expect("empty profile parses");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-profile-v1"));
    assert_eq!(doc.get("samples").and_then(Value::as_f64), Some(0.0));

    // Install a profiler; the route serves it live.
    profile::install(Arc::new(Profiler::new(42.0)));
    let (status, _, body) = get(addr, "/profile");
    assert!(status.contains("200"), "{status}");
    let doc = json::parse(&body).expect("profile parses");
    assert_eq!(doc.get("hz").and_then(Value::as_f64), Some(42.0));

    // Collapsed format: empty profile, empty text — but still 200 and
    // text/plain.
    let (status, headers, body) = get(addr, "/profile?format=collapsed");
    assert!(status.contains("200"), "{status}");
    assert!(headers.contains("text/plain"), "{headers}");
    assert!(body.is_empty(), "no samples yet, got: {body}");

    // Unknown query on a known path is a 404, not a silent default.
    let (status, _, _) = get(addr, "/profile?format=svg");
    assert!(status.contains("404"), "{status}");
}
