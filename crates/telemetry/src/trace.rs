//! Deterministic per-reading tracing with a tail-sampling buffer.
//!
//! Every reading that flows through the fleet gets a 64-bit trace ID
//! derived *purely* from its identity (`tenant`, `chip`, `seq`) by a
//! splitmix64-style mixer — no clocks, no entropy. Chaos replays of the
//! same seeded schedule therefore produce byte-identical trace IDs, and a
//! duplicated frame maps onto the *same* ID as its original, which is what
//! lets the buffer deduplicate chaos-injected duplicates instead of
//! double-counting them (DESIGN.md §7.7).
//!
//! A completed trace is a [`TraceRecord`]: the ID triple plus a
//! [`StageNs`] breakdown of the five pipeline stages
//! `decode → shard → predict → decide → respond`. Records land in a
//! fixed-capacity [`TraceBuffer`] that tail-samples per tenant:
//!
//! * the **slowest-N** records by total duration are always kept (these
//!   are the traces you actually want when a p99 blows up), and
//! * a deterministic **1-in-k** sample (`seq % k == 0`) is kept in a
//!   bounded ring as an unbiased baseline. Keying the sample on the
//!   sequence number — not on arrival order — keeps membership identical
//!   under chaos reordering and across `VOLTSENSE_THREADS` settings.
//!
//! The buffer renders as a `voltsense-trace-v1` JSON document on the
//! `GET /trace` route ([`crate::serve`]) and is embedded into incident
//! snapshots ([`crate::incident`]). A process-global replaceable registry
//! ([`install`] / [`current`]) connects the fleet server's buffer to both,
//! mirroring [`crate::flight`].
//!
//! Tracing is on by default and costs a handful of `Instant::now` calls
//! plus one short mutex hold per reading; `VOLTSENSE_TRACE=0` (or
//! [`set_enabled`]) turns every timing site into a no-op.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::export::push_json_string;

/// The five pipeline stages of one reading, in wire order.
pub const STAGES: [&str; 5] = ["decode", "shard", "predict", "decide", "respond"];

/// Schema identifier of the `GET /trace` document.
pub const SCHEMA: &str = "voltsense-trace-v1";

/// splitmix64 finalizer: the standard 64-bit avalanche mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the trace ID for one reading. Pure function of the identity
/// triple — two deliveries of the same reading (chaos duplicates, replays
/// of a seeded schedule) always get the same ID. Never returns 0 so that
/// 0 can serve as an "untraced" sentinel on the wire.
#[inline]
pub fn trace_id(tenant: u64, chip: u64, seq: u64) -> u64 {
    let id = mix64(
        mix64(tenant ^ 0x9e37_79b9_7f4a_7c15)
            .wrapping_add(mix64(chip ^ 0x85eb_ca6b_c2b2_ae35))
            .wrapping_add(mix64(seq ^ 0xc2b2_ae3d_27d4_eb4f)),
    );
    if id == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        id
    }
}

/// Derive the span ID for `stage` (an index into [`STAGES`]) of `trace`.
/// Deterministic like [`trace_id`]; exported so external consumers can
/// reconstruct span identities without a lookup table.
#[inline]
pub fn span_id(trace: u64, stage: usize) -> u64 {
    let id = mix64(trace ^ mix64(stage as u64 + 1));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Identity of one reading plus its trace ID: everything needed to stamp
/// stage spans. Constructed by the fleet client (which puts the ID on the
/// wire) and by the server (which re-derives it for legacy frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 64-bit trace ID, as produced by [`trace_id`].
    pub trace_id: u64,
    /// Tenant that owns the reading.
    pub tenant: u64,
    /// Chip the reading came from.
    pub chip: u64,
    /// Per-chip sequence number.
    pub seq: u64,
}

impl TraceContext {
    /// Build the context for one reading, deriving the ID.
    pub fn derive(tenant: u64, chip: u64, seq: u64) -> Self {
        TraceContext {
            trace_id: trace_id(tenant, chip, seq),
            tenant,
            chip,
            seq,
        }
    }
}

/// Nanosecond durations of the five pipeline stages of one reading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNs {
    /// Wire bytes → decoded frame.
    pub decode: u64,
    /// Queue wait between enqueue on the shard and the drain pass.
    pub shard: u64,
    /// Monitor observe (model prediction) time.
    pub predict: u64,
    /// Post-prediction decision assembly (ladder + frame build).
    pub decide: u64,
    /// Response frame write to the connection.
    pub respond: u64,
}

impl StageNs {
    /// Total end-to-end duration: the sum of all five stages.
    pub fn total(&self) -> u64 {
        self.decode
            .saturating_add(self.shard)
            .saturating_add(self.predict)
            .saturating_add(self.decide)
            .saturating_add(self.respond)
    }

    /// The stage durations in [`STAGES`] order.
    pub fn as_array(&self) -> [u64; 5] {
        [self.decode, self.shard, self.predict, self.decide, self.respond]
    }
}

/// One completed trace: identity plus stage breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Identity of the reading (tenant/chip/seq + trace ID).
    pub ctx: TraceContext,
    /// Per-stage durations.
    pub stages: StageNs,
}

impl TraceRecord {
    /// Total end-to-end duration of this trace.
    pub fn total_ns(&self) -> u64 {
        self.stages.total()
    }
}

/// Tail-sampling policy knobs for a [`TraceBuffer`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// How many slowest records to keep per tenant.
    pub slowest_per_tenant: usize,
    /// Keep every reading whose `seq % sample_every == 0` in the sampled
    /// ring (deterministic 1-in-k sample).
    pub sample_every: u64,
    /// Capacity of the per-tenant sampled ring.
    pub sampled_capacity: usize,
    /// How many recently-seen trace IDs to remember per tenant for
    /// duplicate suppression under chaos replay.
    pub dedup_window: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            slowest_per_tenant: 8,
            sample_every: 64,
            sampled_capacity: 16,
            dedup_window: 256,
        }
    }
}

/// Per-tenant tail-sampling state.
struct TenantTraces {
    /// Slowest records, sorted ascending by total duration; at most
    /// `slowest_per_tenant` entries.
    slowest: Vec<TraceRecord>,
    /// Deterministic 1-in-k sample ring (newest at the back).
    sampled: VecDeque<TraceRecord>,
    /// Recently admitted trace IDs, oldest at the front.
    recent: VecDeque<u64>,
    /// Completed traces admitted (deduplicated count).
    recorded: u64,
    /// Deliveries suppressed as duplicates of a recently seen ID.
    deduped: u64,
}

impl TenantTraces {
    fn new() -> Self {
        TenantTraces {
            slowest: Vec::new(),
            sampled: VecDeque::new(),
            recent: VecDeque::new(),
            recorded: 0,
            deduped: 0,
        }
    }

    /// Admit `id` into the dedupe window; `false` if it was already there.
    fn admit(&mut self, id: u64, window: usize) -> bool {
        if self.recent.contains(&id) {
            self.deduped += 1;
            return false;
        }
        self.recent.push_back(id);
        while self.recent.len() > window.max(1) {
            self.recent.pop_front();
        }
        true
    }
}

/// Aggregate admission statistics for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantTraceStats {
    /// Traces admitted (after duplicate suppression).
    pub recorded: u64,
    /// Deliveries suppressed as duplicates.
    pub deduped: u64,
}

/// Fixed-capacity tail-sampling trace buffer (see module docs).
pub struct TraceBuffer {
    cfg: TraceConfig,
    tenants: Mutex<BTreeMap<u64, TenantTraces>>,
}

impl TraceBuffer {
    /// An empty buffer with the given policy.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceBuffer {
            cfg,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The policy this buffer was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Admit a trace ID *without* a completed record (used for readings
    /// that never produce a decision, e.g. `Busy` rejections, so SLO
    /// events can still be deduplicated against chaos replays). Returns
    /// `false` if the ID was delivered before within the dedupe window.
    pub fn admit(&self, tenant: u64, id: u64) -> bool {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .entry(tenant)
            .or_insert_with(TenantTraces::new)
            .admit(id, self.cfg.dedup_window)
    }

    /// Record a completed trace. Returns `false` (and keeps nothing) when
    /// the trace ID was already seen within the dedupe window — chaos
    /// duplicates and reordered re-deliveries collapse onto their first
    /// delivery. On `true` the record is tail-sampled: it always competes
    /// for the slowest-N set, and additionally enters the sampled ring
    /// when `seq % sample_every == 0`.
    pub fn record(&self, rec: TraceRecord) -> bool {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let t = tenants.entry(rec.ctx.tenant).or_insert_with(TenantTraces::new);
        if !t.admit(rec.ctx.trace_id, self.cfg.dedup_window) {
            return false;
        }
        t.recorded += 1;
        // Slowest-N: sorted ascending, binary-insert, drop the fastest.
        let total = rec.total_ns();
        let at = t.slowest.partition_point(|r| r.total_ns() <= total);
        if at > 0 || t.slowest.len() < self.cfg.slowest_per_tenant {
            t.slowest.insert(at, rec);
            if t.slowest.len() > self.cfg.slowest_per_tenant {
                t.slowest.remove(0);
            }
        }
        if self.cfg.sample_every > 0 && rec.ctx.seq % self.cfg.sample_every == 0 {
            t.sampled.push_back(rec);
            while t.sampled.len() > self.cfg.sampled_capacity.max(1) {
                t.sampled.pop_front();
            }
        }
        true
    }

    /// Tenant IDs with any recorded state.
    pub fn tenants(&self) -> Vec<u64> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants.keys().copied().collect()
    }

    /// The slowest-N records for `tenant`, slowest first.
    pub fn slowest(&self, tenant: u64) -> Vec<TraceRecord> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .get(&tenant)
            .map(|t| t.slowest.iter().rev().copied().collect())
            .unwrap_or_default()
    }

    /// The deterministic 1-in-k sample for `tenant`, oldest first.
    pub fn sampled(&self, tenant: u64) -> Vec<TraceRecord> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .get(&tenant)
            .map(|t| t.sampled.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Admission statistics for `tenant`.
    pub fn stats(&self, tenant: u64) -> TenantTraceStats {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .get(&tenant)
            .map(|t| TenantTraceStats {
                recorded: t.recorded,
                deduped: t.deduped,
            })
            .unwrap_or_default()
    }

    /// The *exact* total-duration quantile for `tenant`, when the
    /// slowest-N set still covers that rank. With `count` admitted records
    /// the rank-from-the-top of quantile `q` (under the histogram's
    /// `ceil(q·count)` convention, see [`crate::Histogram::quantile`]) is
    /// `count − ceil(q·count) + 1`; if that many records are retained the
    /// answer is exact, otherwise `None` — the caller cannot cross-check.
    pub fn exact_quantile(&self, tenant: u64, q: f64) -> Option<u64> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let t = tenants.get(&tenant)?;
        let count = t.recorded;
        if count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let from_top = (count - target + 1) as usize;
        if from_top > t.slowest.len() {
            return None;
        }
        Some(t.slowest[t.slowest.len() - from_top].total_ns())
    }

    /// Render the whole buffer as a `voltsense-trace-v1` JSON document.
    pub fn to_json(&self) -> String {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(SCHEMA);
        out.push_str("\",\n  \"stages\": [");
        for (i, s) in STAGES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, s);
        }
        out.push_str("],\n  \"config\": {");
        out.push_str(&format!(
            "\"slowest_per_tenant\": {}, \"sample_every\": {}, \"sampled_capacity\": {}, \"dedup_window\": {}",
            self.cfg.slowest_per_tenant, self.cfg.sample_every, self.cfg.sampled_capacity, self.cfg.dedup_window
        ));
        out.push_str("},\n  \"tenants\": [");
        for (i, (tenant, t)) in tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"tenant\": ");
            out.push_str(&tenant.to_string());
            out.push_str(&format!(
                ", \"recorded\": {}, \"deduped\": {},\n     \"slowest\": [",
                t.recorded, t.deduped
            ));
            for (j, rec) in t.slowest.iter().rev().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n       ");
                push_record(&mut out, rec);
            }
            out.push_str("],\n     \"sampled\": [");
            for (j, rec) in t.sampled.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n       ");
                push_record(&mut out, rec);
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// One trace record as a JSON object. Trace/span IDs render as fixed-width
/// hex strings: 64-bit integers do not survive JSON number parsing intact.
fn push_record(out: &mut String, rec: &TraceRecord) {
    out.push_str(&format!(
        "{{\"trace_id\": \"{:016x}\", \"tenant\": {}, \"chip\": {}, \"seq\": {}, \"total_ns\": {}, \"stages\": {{",
        rec.ctx.trace_id, rec.ctx.tenant, rec.ctx.chip, rec.ctx.seq, rec.total_ns()
    ));
    let durations = rec.stages.as_array();
    for (i, (stage, ns)) in STAGES.iter().zip(durations).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\"{stage}\": {{\"span_id\": \"{:016x}\", \"ns\": {ns}}}",
            span_id(rec.ctx.trace_id, i)
        ));
    }
    out.push_str("}}");
}

/// The `voltsense-trace-v1` document of an empty buffer; what `/trace`
/// serves before any buffer is [`install`]ed.
pub fn empty_json() -> String {
    TraceBuffer::new(TraceConfig::default()).to_json()
}

/// Process-global trace buffer registry, read by the `/trace` route and by
/// incident snapshots. Replaceable like [`crate::flight::install`] so each
/// fleet server (and each test) can wire its own buffer.
static TRACES: Mutex<Option<Arc<TraceBuffer>>> = Mutex::new(None);

/// Register `buffer` as the process trace buffer (replacing any previous
/// one) and return the one installed before.
pub fn install(buffer: Arc<TraceBuffer>) -> Option<Arc<TraceBuffer>> {
    TRACES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .replace(buffer)
}

/// The registered trace buffer, if any.
pub fn current() -> Option<Arc<TraceBuffer>> {
    TRACES.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Tri-state cache for the `VOLTSENSE_TRACE` knob: 0 = unread, 1 = off,
/// 2 = on. Reading an env var per reading would be a syscall on the hot
/// path; one relaxed atomic load is free.
static TRACE_ENABLED: AtomicU8 = AtomicU8::new(0);

/// Is per-reading tracing enabled? Defaults to on; `VOLTSENSE_TRACE=0`
/// (or any falsy value) disables every timing site. Cached after the
/// first call; [`set_enabled`] overrides the cache in-process.
#[inline]
pub fn enabled() -> bool {
    match TRACE_ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = !crate::env::value("VOLTSENSE_TRACE").is_some_and(|v| crate::env::is_falsy(&v));
            TRACE_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        1 => false,
        _ => true,
    }
}

/// Override the tracing switch in-process (used by the overhead probe in
/// `fleet_soak` to measure traced vs untraced throughput in one run).
pub fn set_enabled(on: bool) {
    TRACE_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tenant: u64, chip: u64, seq: u64, total: u64) -> TraceRecord {
        TraceRecord {
            ctx: TraceContext::derive(tenant, chip, seq),
            stages: StageNs {
                decode: total / 5,
                shard: total / 5,
                predict: total / 5,
                decide: total / 5,
                respond: total - 4 * (total / 5),
            },
        }
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        for tenant in 0..8u64 {
            for chip in 0..8u64 {
                for seq in 0..8u64 {
                    let a = trace_id(tenant, chip, seq);
                    let b = trace_id(tenant, chip, seq);
                    assert_eq!(a, b);
                    assert_ne!(a, 0);
                    for stage in 0..STAGES.len() {
                        assert_ne!(span_id(a, stage), 0);
                    }
                }
            }
        }
        // Distinct identities map to distinct IDs in a small neighbourhood.
        let mut seen = std::collections::HashSet::new();
        for tenant in 0..8u64 {
            for chip in 0..8u64 {
                for seq in 0..8u64 {
                    assert!(seen.insert(trace_id(tenant, chip, seq)));
                }
            }
        }
    }

    #[test]
    fn slowest_n_keeps_the_tail() {
        let buf = TraceBuffer::new(TraceConfig {
            slowest_per_tenant: 3,
            sample_every: 0,
            sampled_capacity: 4,
            dedup_window: 64,
        });
        for seq in 0..10u64 {
            assert!(buf.record(rec(1, 0, seq, 100 * (seq + 1))));
        }
        let slowest: Vec<u64> = buf.slowest(1).iter().map(TraceRecord::total_ns).collect();
        assert_eq!(slowest, vec![1000, 900, 800]);
        assert_eq!(buf.stats(1).recorded, 10);
    }

    #[test]
    fn sampling_is_keyed_on_seq() {
        let buf = TraceBuffer::new(TraceConfig {
            slowest_per_tenant: 2,
            sample_every: 4,
            sampled_capacity: 100,
            dedup_window: 64,
        });
        for seq in 0..20u64 {
            buf.record(rec(7, 1, seq, 50));
        }
        let sampled: Vec<u64> = buf.sampled(7).iter().map(|r| r.ctx.seq).collect();
        assert_eq!(sampled, vec![0, 4, 8, 12, 16]);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let buf = TraceBuffer::new(TraceConfig::default());
        assert!(buf.record(rec(3, 0, 5, 100)));
        assert!(!buf.record(rec(3, 0, 5, 100)));
        assert!(!buf.admit(3, trace_id(3, 0, 5)));
        assert!(buf.admit(3, trace_id(3, 0, 6)));
        let stats = buf.stats(3);
        assert_eq!(stats.recorded, 1);
        assert_eq!(stats.deduped, 2);
    }

    #[test]
    fn dedup_window_expires() {
        let buf = TraceBuffer::new(TraceConfig {
            dedup_window: 2,
            ..TraceConfig::default()
        });
        assert!(buf.record(rec(1, 0, 1, 10)));
        assert!(buf.record(rec(1, 0, 2, 10)));
        assert!(buf.record(rec(1, 0, 3, 10))); // evicts seq 1 from the window
        assert!(buf.record(rec(1, 0, 1, 10))); // admitted again
    }

    #[test]
    fn exact_quantile_from_tail() {
        let buf = TraceBuffer::new(TraceConfig {
            slowest_per_tenant: 4,
            ..TraceConfig::default()
        });
        for seq in 0..100u64 {
            buf.record(rec(1, 0, seq, 10 * (seq + 1)));
        }
        // p99 rank under ceil(q·count): target 99 → 2nd from top → 990.
        assert_eq!(buf.exact_quantile(1, 0.99), Some(990));
        assert_eq!(buf.exact_quantile(1, 1.0), Some(1000));
        // p50 rank is far outside the 4 retained records.
        assert_eq!(buf.exact_quantile(1, 0.5), None);
    }

    #[test]
    fn json_document_parses_and_has_all_stages() {
        let buf = TraceBuffer::new(TraceConfig::default());
        buf.record(rec(2, 9, 64, 12345));
        let doc = crate::json::parse(&buf.to_json()).expect("valid json");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        let tenants = doc.get("tenants").and_then(|v| v.as_array()).unwrap();
        assert_eq!(tenants.len(), 1);
        let slowest = tenants[0].get("slowest").and_then(|v| v.as_array()).unwrap();
        assert_eq!(slowest.len(), 1);
        let stages = slowest[0].get("stages").unwrap();
        for stage in STAGES {
            assert!(stages.get(stage).is_some(), "missing stage {stage}");
        }
        // The sampled ring holds seq 64 too (64 % 64 == 0).
        let sampled = tenants[0].get("sampled").and_then(|v| v.as_array()).unwrap();
        assert_eq!(sampled.len(), 1);
        // Empty-registry document is also valid.
        let empty = crate::json::parse(&empty_json()).expect("valid empty json");
        assert_eq!(
            empty.get("tenants").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(0)
        );
    }
}
