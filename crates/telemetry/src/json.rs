//! Minimal JSON parser — just enough to validate telemetry exports and
//! bench reports in tests and the CI smoke without external crates.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Not built for speed or for hostile
//! input beyond returning an error.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON document"));
    }
    Ok(value)
}

/// Parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our exports;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of unescaped bytes in one go
                    // and validate it as UTF-8 once. Stopping on the raw
                    // bytes for `"` and `\` is safe: UTF-8 continuation
                    // bytes are always >= 0x80.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| ParseError {
                            offset: start,
                            message: "invalid UTF-8 in string",
                        })?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}
