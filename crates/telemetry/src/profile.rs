//! Continuous in-process profiling: a wall-clock span-stack sampler and an
//! allocation accountant, both zero-dependency and cheap enough to leave on
//! in production (DESIGN.md §7).
//!
//! ## Span-stack sampler
//!
//! Every [`crate::span`] pushes its `&'static str` name onto a per-thread
//! *published* stack (a fixed-capacity seqlock-protected array) and pops it
//! on drop. A background sampler thread ([`start`] /
//! `VOLTSENSE_PROFILE=1`) walks the thread registry at
//! `VOLTSENSE_PROFILE_HZ` (default 99 Hz — deliberately co-prime with
//! common periodic work so samples don't alias), snapshotting each stack
//! with a lock-free seqlock read and folding the result into
//! collapsed-stack counts. The fold is exported two ways:
//!
//! * `GET /profile` — the `voltsense-profile-v1` JSON document;
//! * `GET /profile?format=collapsed` — flamegraph-compatible text, one
//!   `frame;frame;leaf count` line per distinct stack (feed it straight
//!   into `flamegraph.pl` / speedscope / inferno).
//!
//! The writer side (push/pop) is two relaxed stores around a release
//! fence; when no profiler is running, [`push_frame`] is a single relaxed
//! atomic load. Threads register lazily on their first span; pool workers
//! register eagerly so they show up even while idle.
//!
//! ## Allocation accountant
//!
//! [`CountingAlloc`] wraps the system allocator and, when enabled, counts
//! alloc/dealloc bytes and calls per thread, attributing each allocation
//! to the innermost active span of the allocating thread. Binaries opt in
//! with [`crate::install_counting_allocator!`]; the disabled path costs
//! one relaxed atomic load per allocator call. On top of it,
//! [`assert_zero_alloc`] (and the [`crate::alloc_gate!`] macro) pins
//! *zero steady-state allocations* on hot kernels: warm up once, then
//! assert that N further iterations perform no allocator calls at all.
//!
//! ## Safety model
//!
//! The sampler reads other threads' stacks concurrently with pushes and
//! pops. Each slot uses the standard seqlock protocol: the writer bumps a
//! version counter to odd, publishes frames with relaxed stores behind a
//! release fence, then bumps the version to even with a release store;
//! the reader copies raw `(ptr, len)` words under an acquire/validate
//! pair and only *reinterprets* them as `&'static str` after the version
//! check proves the copy was not torn. Frame names come exclusively from
//! `&'static str` span names, so a validated `(ptr, len)` pair is always
//! a live, immutable string.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::{fmt_f64, push_json_string};

/// Frames beyond this depth are still *counted* (so pops stay symmetric)
/// but not published; the sampler renders such stacks with a
/// `(truncated)` leaf. 32 comfortably covers the deepest span nesting in
/// the workspace (fit → solver → sweep → kernel is depth 4–6).
pub const MAX_DEPTH: usize = 32;

/// Open-addressing slots in the per-thread allocation-site table. Distinct
/// span names per thread rarely exceed a dozen; overflow lands in the
/// thread's `(other)` bucket rather than being dropped.
const ALLOC_SITES: usize = 64;

/// Linear-probe window before an allocation falls into `(other)`.
const SITE_PROBES: usize = 8;

/// One published stack frame: the raw parts of a `&'static str` span name,
/// stored as two machine words so the seqlock writer needs no wide atomic.
struct Frame {
    ptr: AtomicPtr<u8>,
    len: AtomicUsize,
}

impl Frame {
    const fn empty() -> Self {
        Frame {
            ptr: AtomicPtr::new(ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }
}

/// Per-span-name allocation attribution entry (keyed by name pointer —
/// `&'static str` literals are stable for the process lifetime).
struct AllocSite {
    name_ptr: AtomicPtr<u8>,
    name_len: AtomicUsize,
    bytes: AtomicU64,
    calls: AtomicU64,
}

impl AllocSite {
    const fn empty() -> Self {
        AllocSite {
            name_ptr: AtomicPtr::new(ptr::null_mut()),
            name_len: AtomicUsize::new(0),
            bytes: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        }
    }
}

/// The shared per-thread slot: published span stack (seqlock) plus
/// allocation counters. Owned jointly by the thread (via TLS) and the
/// global registry; the sampler only ever reads.
struct ThreadSlot {
    /// Seqlock version: odd while the owning thread is mutating.
    version: AtomicU64,
    /// Logical stack depth (may exceed [`MAX_DEPTH`]).
    depth: AtomicUsize,
    frames: [Frame; MAX_DEPTH],
    /// Thread name, fixed before the slot is shared.
    name: String,
    /// Set by the TLS destructor; the sampler skips and prunes such slots.
    retired: AtomicBool,
    // -- allocation accounting (written by owner, read by reporters) --
    alloc_bytes: AtomicU64,
    alloc_calls: AtomicU64,
    dealloc_bytes: AtomicU64,
    dealloc_calls: AtomicU64,
    /// Bytes/calls that missed the site table (depth 0, overflow, ...).
    other_bytes: AtomicU64,
    other_calls: AtomicU64,
    sites: [AllocSite; ALLOC_SITES],
}

impl ThreadSlot {
    fn new(name: String) -> Self {
        ThreadSlot {
            version: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: [const { Frame::empty() }; MAX_DEPTH],
            name,
            retired: AtomicBool::new(false),
            alloc_bytes: AtomicU64::new(0),
            alloc_calls: AtomicU64::new(0),
            dealloc_bytes: AtomicU64::new(0),
            dealloc_calls: AtomicU64::new(0),
            other_bytes: AtomicU64::new(0),
            other_calls: AtomicU64::new(0),
            sites: [const { AllocSite::empty() }; ALLOC_SITES],
        }
    }

    /// Attribute one allocation of `size` bytes to the innermost active
    /// span. Called only from the owning thread (plain reads of own
    /// depth/frames are race-free); must not allocate.
    fn attribute_alloc(&self, size: usize) {
        self.alloc_bytes.fetch_add(size as u64, Ordering::Relaxed);
        self.alloc_calls.fetch_add(1, Ordering::Relaxed);
        let depth = self.depth.load(Ordering::Relaxed);
        if depth == 0 || depth > MAX_DEPTH {
            self.other_bytes.fetch_add(size as u64, Ordering::Relaxed);
            self.other_calls.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let name_ptr = self.frames[depth - 1].ptr.load(Ordering::Relaxed);
        let name_len = self.frames[depth - 1].len.load(Ordering::Relaxed);
        if name_ptr.is_null() {
            self.other_bytes.fetch_add(size as u64, Ordering::Relaxed);
            self.other_calls.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Open addressing keyed by name pointer; claim empty entries with
        // a CAS so a torn claim can never mix two names.
        let hash = (name_ptr as usize >> 3).wrapping_mul(0x9E37_79B9);
        for probe in 0..SITE_PROBES {
            let site = &self.sites[(hash + probe) % ALLOC_SITES];
            let cur = site.name_ptr.load(Ordering::Relaxed);
            if cur == name_ptr {
                site.bytes.fetch_add(size as u64, Ordering::Relaxed);
                site.calls.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if cur.is_null() {
                match site.name_ptr.compare_exchange(
                    ptr::null_mut(),
                    name_ptr,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        site.name_len.store(name_len, Ordering::Relaxed);
                        site.bytes.fetch_add(size as u64, Ordering::Relaxed);
                        site.calls.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(raced) if raced == name_ptr => {
                        site.bytes.fetch_add(size as u64, Ordering::Relaxed);
                        site.calls.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => continue,
                }
            }
        }
        self.other_bytes.fetch_add(size as u64, Ordering::Relaxed);
        self.other_calls.fetch_add(1, Ordering::Relaxed);
    }
}

/// Global registry of live (and recently-retired) thread slots.
static SLOTS: Mutex<Vec<Arc<ThreadSlot>>> = Mutex::new(Vec::new());

/// Refcount of consumers that need span stacks *published* (the sampler,
/// plus each enabled counting window). Zero → [`push_frame`] is one
/// relaxed load and no slot is touched.
static FRAMES_ENABLED: AtomicUsize = AtomicUsize::new(0);

/// Refcount of enabled allocation-counting windows.
static ALLOC_ENABLED: AtomicUsize = AtomicUsize::new(0);

/// Latched to `true` by the first call through [`CountingAlloc`]; lets
/// [`allocator_installed`] distinguish "wrapper not installed" from
/// "counting disabled".
static ALLOC_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Totals folded in from retired (exited) threads so their allocation
/// history survives slot pruning.
static RETIRED_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static RETIRED_ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static RETIRED_DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static RETIRED_DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Raw pointer to this thread's slot for the allocator fast path.
    /// Const-initialised `Cell` with no destructor: safe to touch from
    /// inside the global allocator (no lazy init, no registration, no
    /// recursion). Nulled before the owning holder drops its `Arc`.
    static SLOT_PTR: Cell<*const ThreadSlot> = const { Cell::new(ptr::null()) };
    /// Owning handle; registers on first use, retires on thread exit.
    static SLOT: SlotHolder = SlotHolder::register();
}

struct SlotHolder {
    slot: Arc<ThreadSlot>,
}

impl SlotHolder {
    fn register() -> Self {
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
        let slot = Arc::new(ThreadSlot::new(name));
        SLOTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(slot.clone());
        SLOT_PTR.with(|p| p.set(Arc::as_ptr(&slot)));
        SlotHolder { slot }
    }
}

impl Drop for SlotHolder {
    fn drop(&mut self) {
        // Disable the allocator fast path first: after this store no
        // allocation on this thread can reach the slot, so folding its
        // totals below observes final values.
        let _ = SLOT_PTR.try_with(|p| p.set(ptr::null()));
        RETIRED_ALLOC_BYTES.fetch_add(self.slot.alloc_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        RETIRED_ALLOC_CALLS.fetch_add(self.slot.alloc_calls.load(Ordering::Relaxed), Ordering::Relaxed);
        RETIRED_DEALLOC_BYTES
            .fetch_add(self.slot.dealloc_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        RETIRED_DEALLOC_CALLS
            .fetch_add(self.slot.dealloc_calls.load(Ordering::Relaxed), Ordering::Relaxed);
        self.slot.retired.store(true, Ordering::Release);
    }
}

/// Force-register the current thread with the profiler so it appears in
/// samples (as `(idle)`) even before its first span. Pool workers call
/// this on startup; ordinary threads register lazily on their first span.
pub fn register_current_thread() {
    let _ = SLOT.try_with(|_| ());
}

/// Publish `name` as a new innermost frame on this thread's span stack.
/// Returns `true` iff a frame was pushed (the caller must then call
/// [`pop_frame`] exactly once). One relaxed load when no profiler or
/// counting window is active.
#[inline]
pub(crate) fn push_frame(name: &'static str) -> bool {
    if FRAMES_ENABLED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    push_frame_slow(name)
}

#[cold]
fn push_frame_slow(name: &'static str) -> bool {
    // `try_with`: spans may fire during TLS teardown, after this thread's
    // holder was destroyed — such spans simply go unprofiled.
    SLOT.try_with(|holder| {
        let slot = &*holder.slot;
        let v = slot.version.load(Ordering::Relaxed);
        slot.version.store(v.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let depth = slot.depth.load(Ordering::Relaxed);
        if depth < MAX_DEPTH {
            slot.frames[depth]
                .ptr
                .store(name.as_ptr() as *mut u8, Ordering::Relaxed);
            slot.frames[depth].len.store(name.len(), Ordering::Relaxed);
        }
        slot.depth.store(depth + 1, Ordering::Relaxed);
        slot.version.store(v.wrapping_add(2), Ordering::Release);
    })
    .is_ok()
}

/// Pop the innermost frame pushed by [`push_frame`]. Must be called
/// exactly once per `true` return from `push_frame`, on the same thread.
pub(crate) fn pop_frame() {
    // The fast-path pointer survives until the holder's destructor nulls
    // it, and a successful push proves the holder existed; after teardown
    // the pop degrades to a no-op, keeping drop paths panic-free.
    let slot_ptr = SLOT_PTR.try_with(Cell::get).unwrap_or(ptr::null());
    if slot_ptr.is_null() {
        return;
    }
    // SAFETY: non-null ⇒ the holder (which owns an Arc) is still alive on
    // this very thread, so the slot outlives this call.
    let slot = unsafe { &*slot_ptr };
    let v = slot.version.load(Ordering::Relaxed);
    slot.version.store(v.wrapping_add(1), Ordering::Relaxed);
    fence(Ordering::Release);
    let depth = slot.depth.load(Ordering::Relaxed);
    slot.depth.store(depth.saturating_sub(1), Ordering::Relaxed);
    slot.version.store(v.wrapping_add(2), Ordering::Release);
}

// ---------------------------------------------------------------------------
// Allocation accountant
// ---------------------------------------------------------------------------

/// A `#[global_allocator]` wrapper that counts allocations per thread when
/// a counting window ([`enable_counting`]) is open. Install it in a binary
/// or test crate with [`crate::install_counting_allocator!`]; while no
/// window is open every call costs one extra relaxed atomic load.
pub struct CountingAlloc<A = System> {
    inner: A,
}

impl CountingAlloc<System> {
    /// The system allocator wrapped for counting.
    pub const fn system() -> Self {
        CountingAlloc { inner: System }
    }
}

impl<A> CountingAlloc<A> {
    /// Wrap an arbitrary inner allocator.
    pub const fn new(inner: A) -> Self {
        CountingAlloc { inner }
    }
}

/// Record one allocation on the current thread. Never allocates.
#[cold]
fn record_alloc(size: usize) {
    let slot_ptr = SLOT_PTR.try_with(Cell::get).unwrap_or(ptr::null());
    if slot_ptr.is_null() {
        // Unregistered thread: keep process-level totals at least.
        RETIRED_ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        RETIRED_ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // SAFETY: see `pop_frame` — non-null means the owning holder is alive.
    unsafe { &*slot_ptr }.attribute_alloc(size);
}

/// Record one deallocation on the current thread. Never allocates.
#[cold]
fn record_dealloc(size: usize) {
    let slot_ptr = SLOT_PTR.try_with(Cell::get).unwrap_or(ptr::null());
    if slot_ptr.is_null() {
        RETIRED_DEALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        RETIRED_DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let slot = unsafe { &*slot_ptr };
    slot.dealloc_bytes.fetch_add(size as u64, Ordering::Relaxed);
    slot.dealloc_calls.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn note_installed() {
    // A load-then-rare-store keeps the disabled path read-only.
    if !ALLOC_INSTALLED.load(Ordering::Relaxed) {
        ALLOC_INSTALLED.store(true, Ordering::Relaxed);
    }
}

// SAFETY: delegates every allocation verbatim to the inner allocator; the
// bookkeeping around it never allocates and never observes the returned
// memory.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_installed();
        let p = unsafe { self.inner.alloc(layout) };
        if ALLOC_ENABLED.load(Ordering::Relaxed) != 0 && !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        note_installed();
        if ALLOC_ENABLED.load(Ordering::Relaxed) != 0 {
            record_dealloc(layout.size());
        }
        unsafe { self.inner.dealloc(p, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_installed();
        let p = unsafe { self.inner.alloc_zeroed(layout) };
        if ALLOC_ENABLED.load(Ordering::Relaxed) != 0 && !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_installed();
        let q = unsafe { self.inner.realloc(p, layout, new_size) };
        if ALLOC_ENABLED.load(Ordering::Relaxed) != 0 && !q.is_null() {
            // A successful realloc is one dealloc of the old block plus one
            // alloc of the new one — a grow-in-place still churns the
            // allocator, which is exactly what the gates police.
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        q
    }
}

/// Install [`CountingAlloc`] as the global allocator of the current crate
/// (binary or integration-test target). Required before
/// [`crate::profile::assert_zero_alloc`] / [`crate::alloc_gate!`] can run.
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        #[global_allocator]
        static VOLTSENSE_COUNTING_ALLOCATOR: $crate::profile::CountingAlloc =
            $crate::profile::CountingAlloc::system();
    };
}

/// Is a [`CountingAlloc`] actually routing this process's allocations?
/// Performs (at most) one probe allocation to find out.
pub fn allocator_installed() -> bool {
    if ALLOC_INSTALLED.load(Ordering::Relaxed) {
        return true;
    }
    // Force one allocator round trip the optimiser cannot elide.
    let probe: Vec<u64> = Vec::with_capacity(std::hint::black_box(8));
    drop(std::hint::black_box(probe));
    ALLOC_INSTALLED.load(Ordering::Relaxed)
}

/// Open counting window: while any [`CountingGuard`] is alive, allocator
/// calls are counted and attributed. Windows are refcounted, so
/// concurrent gates (cargo's parallel test threads) compose.
pub struct CountingGuard(());

/// Open an allocation-counting window (frames are published too, so
/// attribution by innermost span works while the window is open).
pub fn enable_counting() -> CountingGuard {
    FRAMES_ENABLED.fetch_add(1, Ordering::SeqCst);
    ALLOC_ENABLED.fetch_add(1, Ordering::SeqCst);
    CountingGuard(())
}

impl Drop for CountingGuard {
    fn drop(&mut self) {
        ALLOC_ENABLED.fetch_sub(1, Ordering::SeqCst);
        FRAMES_ENABLED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Alloc/dealloc totals of the current thread since it registered.
/// Returns `(alloc_bytes, alloc_calls, dealloc_bytes, dealloc_calls)`.
pub fn thread_alloc_totals() -> (u64, u64, u64, u64) {
    SLOT.try_with(|holder| {
        let s = &holder.slot;
        (
            s.alloc_bytes.load(Ordering::Relaxed),
            s.alloc_calls.load(Ordering::Relaxed),
            s.dealloc_bytes.load(Ordering::Relaxed),
            s.dealloc_calls.load(Ordering::Relaxed),
        )
    })
    .unwrap_or((0, 0, 0, 0))
}

/// Assert that `f` performs **zero** allocator calls (alloc, dealloc, or
/// realloc) on this thread at steady state.
///
/// Protocol: `f` is called once *outside* the measured window to warm any
/// lazily-grown buffers, then `iters` times inside it. Panics with a
/// per-iteration breakdown if any allocator traffic is observed, and
/// panics up front if no [`CountingAlloc`] is installed (the gate would
/// otherwise pass vacuously).
pub fn assert_zero_alloc<F: FnMut()>(label: &str, iters: usize, mut f: F) {
    assert!(
        allocator_installed(),
        "alloc_gate '{label}': no CountingAlloc installed — add \
         `voltsense_telemetry::install_counting_allocator!();` at the \
         crate root of this test target"
    );
    register_current_thread();
    let _window = enable_counting();
    // Warmup: first call may legitimately size scratch buffers.
    f();
    let (ab0, ac0, db0, dc0) = thread_alloc_totals();
    for _ in 0..iters.max(1) {
        f();
    }
    let (ab1, ac1, db1, dc1) = thread_alloc_totals();
    let (allocs, bytes) = (ac1 - ac0, ab1 - ab0);
    let (deallocs, dbytes) = (dc1 - dc0, db1 - db0);
    assert!(
        allocs == 0 && deallocs == 0,
        "alloc_gate '{label}': expected zero steady-state allocations over \
         {iters} iterations, observed {allocs} allocations ({bytes} bytes) \
         and {deallocs} deallocations ({dbytes} bytes) — \
         {per_alloc:.2} allocs/iter",
        per_alloc = allocs as f64 / iters.max(1) as f64,
    );
}

/// Zero-allocation tripwire for hot paths; sugar over
/// [`profile::assert_zero_alloc`](assert_zero_alloc):
///
/// ```ignore
/// voltsense_telemetry::install_counting_allocator!();
/// voltsense_telemetry::alloc_gate!("bcd.sweep", 16, || sweep(&mut state));
/// ```
#[macro_export]
macro_rules! alloc_gate {
    ($label:expr, $iters:expr, $body:expr) => {
        $crate::profile::assert_zero_alloc($label, $iters, $body)
    };
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// Default sampling rate. 99 Hz is the classic profiler choice: co-prime
/// with 100 Hz/1 kHz timers so periodic work is not systematically hit
/// (or missed) at the same phase.
pub const DEFAULT_HZ: f64 = 99.0;

/// Folded profile state, filled by the sampler thread and rendered by
/// [`Profiler::to_json`] / [`Profiler::to_collapsed`].
#[derive(Default)]
struct ProfileStore {
    /// Collapsed stack → sample count.
    stacks: HashMap<Vec<&'static str>, u64>,
    /// Thread name → samples observed on that thread (any depth).
    threads: HashMap<String, u64>,
}

/// The profile accumulator: sample counts folded by collapsed stack.
/// Create via [`start`] (which also spawns the sampler thread) or
/// [`Profiler::new`] + [`Profiler::sample_once`] in tests.
pub struct Profiler {
    hz: f64,
    /// Total sampling passes over the registry.
    passes: AtomicU64,
    /// Thread-samples observed with an empty span stack.
    idle: AtomicU64,
    /// Seqlock reads abandoned after retries (stack mutating too fast).
    unstable: AtomicU64,
    store: Mutex<ProfileStore>,
}

impl Profiler {
    /// An empty profile that would sample at `hz`.
    pub fn new(hz: f64) -> Self {
        Profiler {
            hz,
            passes: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            unstable: AtomicU64::new(0),
            store: Mutex::new(ProfileStore::default()),
        }
    }

    /// Snapshot every registered thread's span stack once and fold the
    /// results. Also prunes slots of exited threads. Public so tests can
    /// drive the sampler deterministically without the background thread.
    pub fn sample_once(&self) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        // Copy the registry out so stacks are read without holding its
        // lock (thread registration must never wait on a sampling pass).
        let slots: Vec<Arc<ThreadSlot>> = {
            let mut reg = SLOTS.lock().unwrap_or_else(|e| e.into_inner());
            reg.retain(|s| !s.retired.load(Ordering::Acquire));
            reg.clone()
        };
        let mut raw = [(ptr::null::<u8>(), 0usize); MAX_DEPTH];
        for slot in &slots {
            match read_stack_raw(slot, &mut raw) {
                StackRead::Unstable => {
                    self.unstable.fetch_add(1, Ordering::Relaxed);
                }
                StackRead::Stable { depth, truncated } => {
                    let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
                    *store.threads.entry(slot.name.clone()).or_insert(0) += 1;
                    if depth == 0 {
                        self.idle.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let mut stack: Vec<&'static str> = Vec::with_capacity(depth + 1);
                    for &(p, len) in &raw[..depth] {
                        // SAFETY: the seqlock validated this (ptr, len)
                        // pair as a consistently-published span name, and
                        // span names are `&'static str`.
                        stack.push(unsafe {
                            std::str::from_utf8_unchecked(std::slice::from_raw_parts(p, len))
                        });
                    }
                    if truncated {
                        stack.push("(truncated)");
                    }
                    *store.stacks.entry(stack).or_insert(0) += 1;
                }
            }
        }
    }

    /// Total thread-samples folded so far (including idle ones).
    pub fn samples(&self) -> u64 {
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        store.threads.values().sum()
    }

    /// Flamegraph-compatible collapsed-stack text: one
    /// `frame;frame;leaf count` line per distinct stack, ordered by
    /// descending count then lexicographically (deterministic output).
    /// Idle thread-samples fold into a single `(idle)` pseudo-frame.
    pub fn to_collapsed(&self) -> String {
        let mut lines: Vec<(u64, String)> = {
            let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
            store
                .stacks
                .iter()
                .map(|(stack, &count)| (count, stack.join(";")))
                .collect()
        };
        let idle = self.idle.load(Ordering::Relaxed);
        if idle > 0 {
            lines.push((idle, "(idle)".to_string()));
        }
        lines.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut out = String::with_capacity(lines.len() * 48);
        for (count, folded) in lines {
            out.push_str(&folded);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The `voltsense-profile-v1` JSON document: sampler metadata, folded
    /// stacks (same order as [`to_collapsed`]), per-thread sample counts,
    /// and the allocation-accountant state.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"voltsense-profile-v1\",\n");
        out.push_str(&format!("  \"hz\": {},\n", fmt_f64(self.hz)));
        out.push_str(&format!("  \"passes\": {},\n", self.passes.load(Ordering::Relaxed)));
        out.push_str(&format!("  \"samples\": {},\n", self.samples()));
        out.push_str(&format!("  \"idle_samples\": {},\n", self.idle.load(Ordering::Relaxed)));
        out.push_str(&format!(
            "  \"unstable_reads\": {},\n",
            self.unstable.load(Ordering::Relaxed)
        ));

        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let mut threads: Vec<(&String, &u64)> = store.threads.iter().collect();
        threads.sort_by(|a, b| a.0.cmp(b.0));
        out.push_str("  \"threads\": [");
        for (i, (name, samples)) in threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            push_json_string(&mut out, name);
            out.push_str(&format!(", \"samples\": {samples}}}"));
        }
        out.push_str("\n  ],\n");

        let mut stacks: Vec<(u64, &Vec<&'static str>)> =
            store.stacks.iter().map(|(s, &c)| (c, s)).collect();
        stacks.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        out.push_str("  \"stacks\": [");
        for (i, (count, stack)) in stacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"stack\": [");
            for (j, frame) in stack.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_json_string(&mut out, frame);
            }
            out.push_str(&format!("], \"count\": {count}}}"));
        }
        out.push_str("\n  ],\n");
        drop(store);

        out.push_str(&alloc_json());
        out.push_str("\n}\n");
        out
    }
}

/// Outcome of one seqlock stack read.
enum StackRead {
    Stable { depth: usize, truncated: bool },
    Unstable,
}

/// Copy a slot's published stack into `raw` under the seqlock protocol.
/// The `(ptr, len)` words are only reinterpreted as strings by the caller
/// *after* a stable read is confirmed.
fn read_stack_raw(slot: &ThreadSlot, raw: &mut [(*const u8, usize); MAX_DEPTH]) -> StackRead {
    for _ in 0..4 {
        let v1 = slot.version.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            std::hint::spin_loop();
            continue;
        }
        let logical_depth = slot.depth.load(Ordering::Relaxed);
        let depth = logical_depth.min(MAX_DEPTH);
        for (i, entry) in raw.iter_mut().enumerate().take(depth) {
            entry.0 = slot.frames[i].ptr.load(Ordering::Relaxed);
            entry.1 = slot.frames[i].len.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        let v2 = slot.version.load(Ordering::Relaxed);
        if v1 == v2 {
            // A torn pre-validation read can leave garbage words, but a
            // *validated* read cannot: every (ptr, len) was published
            // complete before the even version became visible. Null
            // frames (never-written padding) only occur past `depth`.
            return StackRead::Stable {
                depth,
                truncated: logical_depth > MAX_DEPTH,
            };
        }
    }
    StackRead::Unstable
}

/// Render the allocation-accountant section of the profile document.
fn alloc_json() -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("  \"alloc\": {\n");
    out.push_str(&format!(
        "    \"counting\": {},\n    \"allocator_installed\": {},\n",
        ALLOC_ENABLED.load(Ordering::Relaxed) != 0,
        ALLOC_INSTALLED.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "    \"retired\": {{\"alloc_bytes\": {}, \"alloc_calls\": {}, \"dealloc_bytes\": {}, \"dealloc_calls\": {}}},\n",
        RETIRED_ALLOC_BYTES.load(Ordering::Relaxed),
        RETIRED_ALLOC_CALLS.load(Ordering::Relaxed),
        RETIRED_DEALLOC_BYTES.load(Ordering::Relaxed),
        RETIRED_DEALLOC_CALLS.load(Ordering::Relaxed)
    ));
    let slots: Vec<Arc<ThreadSlot>> = SLOTS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    out.push_str("    \"threads\": [");
    let mut first = true;
    for slot in &slots {
        let calls = slot.alloc_calls.load(Ordering::Relaxed);
        let dcalls = slot.dealloc_calls.load(Ordering::Relaxed);
        if calls == 0 && dcalls == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n      {\"name\": ");
        push_json_string(&mut out, &slot.name);
        out.push_str(&format!(
            ", \"alloc_bytes\": {}, \"alloc_calls\": {calls}, \"dealloc_bytes\": {}, \"dealloc_calls\": {dcalls}, \"sites\": [",
            slot.alloc_bytes.load(Ordering::Relaxed),
            slot.dealloc_bytes.load(Ordering::Relaxed)
        ));
        let mut sites: Vec<(String, u64, u64)> = Vec::new();
        for site in &slot.sites {
            let p = site.name_ptr.load(Ordering::Relaxed);
            if p.is_null() {
                continue;
            }
            let len = site.name_len.load(Ordering::Relaxed);
            if len == 0 {
                // The claiming thread has CASed the pointer but not yet
                // stored the length; skip this in-flight entry.
                continue;
            }
            // SAFETY: (ptr, len) is a fully-published `&'static str` span
            // name — the length store follows the successful claim and we
            // only read entries whose length is visible.
            let name =
                unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(p, len)) };
            sites.push((
                name.to_string(),
                site.bytes.load(Ordering::Relaxed),
                site.calls.load(Ordering::Relaxed),
            ));
        }
        let other_calls = slot.other_calls.load(Ordering::Relaxed);
        if other_calls > 0 {
            sites.push(("(other)".to_string(), slot.other_bytes.load(Ordering::Relaxed), other_calls));
        }
        sites.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (j, (name, bytes, calls)) in sites.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"span\": ");
            push_json_string(&mut out, name);
            out.push_str(&format!(", \"bytes\": {bytes}, \"calls\": {calls}}}"));
        }
        out.push_str("]}");
    }
    out.push_str("\n    ]\n  }");
    out
}

/// The `voltsense-profile-v1` document of an idle profiler; what
/// `GET /profile` serves before [`install`] / [`start`].
pub fn empty_json() -> String {
    Profiler::new(DEFAULT_HZ).to_json()
}

/// Process-global profiler registry, read by the `/profile` route and by
/// incident snapshots. Replaceable like [`crate::flight::install`].
static PROFILER: Mutex<Option<Arc<Profiler>>> = Mutex::new(None);

/// Register `profiler` as the process profiler (replacing any previous
/// one) and return the one installed before.
pub fn install(profiler: Arc<Profiler>) -> Option<Arc<Profiler>> {
    PROFILER
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .replace(profiler)
}

/// The registered profiler, if any.
pub fn current() -> Option<Arc<Profiler>> {
    PROFILER.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Handle to a running sampler thread; sampling stops (and the frame
/// refcount drops) when this is dropped. The profiler itself stays
/// [`install`]ed so late scrapes and incident snapshots still see the
/// final profile.
pub struct SamplerGuard {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    profiler: Arc<Profiler>,
}

impl SamplerGuard {
    /// The profiler being filled by this sampler.
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.profiler
    }
}

impl Drop for SamplerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        FRAMES_ENABLED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Start the continuous sampler at `hz`: installs a fresh [`Profiler`] as
/// the process profiler, enables frame publishing, registers the current
/// thread, and spawns the background sampling thread.
pub fn start(hz: f64) -> SamplerGuard {
    let hz = if hz.is_finite() && hz > 0.0 { hz } else { DEFAULT_HZ };
    let profiler = Arc::new(Profiler::new(hz));
    install(profiler.clone());
    register_current_thread();
    FRAMES_ENABLED.fetch_add(1, Ordering::SeqCst);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let sampler = profiler.clone();
    let period = Duration::from_secs_f64(1.0 / hz);
    let thread = std::thread::Builder::new()
        .name("voltsense-profile-sampler".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                sampler.sample_once();
                std::thread::sleep(period);
            }
        })
        .ok();
    SamplerGuard {
        stop,
        thread,
        profiler,
    }
}

/// Start the sampler if `VOLTSENSE_PROFILE` is truthy, at
/// `VOLTSENSE_PROFILE_HZ` (default 99). Called by
/// [`crate::init_always_on`]; binaries can also call it directly.
pub fn start_from_env() -> Option<SamplerGuard> {
    let raw = crate::env::value("VOLTSENSE_PROFILE")?;
    if !crate::env::is_truthy(&raw) {
        return None;
    }
    let hz = crate::env::parse::<f64>("VOLTSENSE_PROFILE_HZ").unwrap_or(DEFAULT_HZ);
    eprintln!("[telemetry] span-stack sampler on at {hz} Hz (GET /profile)");
    Some(start(hz))
}
