//! Incident snapshots: freeze the flight recorder the moment something
//! goes wrong.
//!
//! When an [`EmergencyMonitor`](../../voltsense_core/monitor/index.html)
//! asserts an alarm, trips a plausibility gate, hot-swaps a fallback
//! model, or degrades beyond recovery, it calls [`report`]. If a
//! [`FlightRecorder`](crate::FlightRecorder) is registered
//! ([`crate::flight::install`] / [`crate::init_always_on`]), the last-N
//! window of ring events plus a full exact-metrics snapshot is written as
//! one timestamped `voltsense-incident-v1` JSON file — so every emergency
//! is explainable after the fact *without* tracing having been
//! pre-enabled. With no flight recorder registered, `report` is a no-op.
//!
//! Files land in `VOLTSENSE_INCIDENT_DIR` (default
//! `<results dir>/incidents/`), named
//! `incident_<unix_ms>_<seq>_<kind>.json`. A per-kind cap
//! (`VOLTSENSE_INCIDENT_MAX`, default 16 per process) bounds disk use
//! even if an incident kind fires on every sample.
//!
//! Schema `voltsense-incident-v1`:
//!
//! ```json
//! {
//!   "schema": "voltsense-incident-v1",
//!   "kind": "alarm",
//!   "seq": 0,
//!   "at_unix_ms": 1754550000000,
//!   "fields": {"predicted_min": 0.83, "threshold": 0.85},
//!   "failed_sensors": [2],
//!   "gated_sensors": [],
//!   "sampling": [{"name": "cg.iter", "seen": 9000, "kept": 5120, "stride": 4}],
//!   "ring": [{"seq": 0, "name": "...", "at_ns": 1, "fields": {...}}, ...],
//!   "metrics": { "schema": "voltsense-metrics-v1", ... },
//!   "traces": { "schema": "voltsense-trace-v1", ... }
//! }
//! ```
//!
//! `traces` is the registered trace buffer ([`crate::trace::current`]) at
//! the moment of the incident, or `null` when none is installed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::export::{fmt_f64, push_json_string};
use crate::flight::{self, FlightRecorder};

/// Default per-kind cap on incident files written by one process.
pub const DEFAULT_MAX_PER_KIND: u64 = 16;

/// Everything the reporting site knows about the moment of the incident.
/// All fields but `kind` may be empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct Incident<'a> {
    /// Short machine-readable cause: `alarm`, `plausibility_gate`,
    /// `hot_swap`, `degraded_beyond_recovery`, …
    pub kind: &'static str,
    /// Numeric context (predicted minimum, threshold, sample index, …).
    pub fields: &'a [(&'static str, f64)],
    /// Sensors attributed as permanently failed at this moment.
    pub failed_sensors: &'a [usize],
    /// Sensors gated out of the triggering sample.
    pub gated_sensors: &'a [usize],
}

impl<'a> Incident<'a> {
    pub fn new(kind: &'static str) -> Self {
        Incident {
            kind,
            ..Incident::default()
        }
    }
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static PER_KIND: Mutex<Option<BTreeMap<&'static str, u64>>> = Mutex::new(None);

/// Snapshot the registered flight recorder into an incident file.
///
/// Returns the written path, or `None` when no flight recorder is
/// registered, the per-kind cap is exhausted, or the write fails (a
/// monitor must keep monitoring even when the disk does not cooperate;
/// the failure is logged to stderr).
pub fn report(incident: &Incident) -> Option<PathBuf> {
    let recorder = flight::current()?;
    {
        let mut guard = PER_KIND.lock().unwrap_or_else(|e| e.into_inner());
        let counts = guard.get_or_insert_with(BTreeMap::new);
        let n = counts.entry(incident.kind).or_insert(0);
        let max = crate::env::parse::<u64>("VOLTSENSE_INCIDENT_MAX").unwrap_or(DEFAULT_MAX_PER_KIND);
        if *n >= max {
            return None;
        }
        *n += 1;
    }
    let dir = crate::env::value("VOLTSENSE_INCIDENT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| crate::env::results_dir().join("incidents"));
    match write(incident, &recorder, &dir) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("[telemetry] failed to write {} incident: {e}", incident.kind);
            crate::counter("incident.write_failures", 1);
            None
        }
    }
}

/// Serialize and write one incident file into `dir` (created if missing).
/// Applies no cap — [`report`] is the rate-limited entry point.
pub fn write(
    incident: &Incident,
    recorder: &FlightRecorder,
    dir: &Path,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let path = dir.join(format!("incident_{unix_ms}_{seq:04}_{}.json", incident.kind));
    std::fs::write(&path, render(incident, recorder, seq, unix_ms))?;
    Ok(path)
}

/// The `voltsense-incident-v1` document for one incident.
fn render(incident: &Incident, recorder: &FlightRecorder, seq: u64, unix_ms: u64) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n  \"schema\": \"voltsense-incident-v1\",\n  \"kind\": ");
    push_json_string(&mut out, incident.kind);
    out.push_str(&format!(",\n  \"seq\": {seq},\n  \"at_unix_ms\": {unix_ms},\n  \"fields\": {{"));
    for (i, (k, v)) in incident.fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(&mut out, k);
        out.push_str(": ");
        out.push_str(&fmt_f64(*v));
    }
    out.push_str("},\n  \"failed_sensors\": ");
    push_usize_array(&mut out, incident.failed_sensors);
    out.push_str(",\n  \"gated_sensors\": ");
    push_usize_array(&mut out, incident.gated_sensors);

    out.push_str(",\n  \"sampling\": [");
    for (i, (name, stat)) in recorder.sampler_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": ");
        push_json_string(&mut out, name);
        out.push_str(&format!(
            ", \"seen\": {}, \"kept\": {}, \"stride\": {}}}",
            stat.seen, stat.kept, stat.stride
        ));
    }
    out.push_str("\n  ],\n  \"ring\": [");
    for (i, e) in recorder.ring_events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"seq\": ");
        out.push_str(&e.seq.to_string());
        out.push_str(", \"name\": ");
        push_json_string(&mut out, e.name);
        out.push_str(&format!(", \"at_ns\": {}, \"fields\": {{", e.at_ns));
        for (j, (k, v)) in e.fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, k);
            out.push_str(": ");
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("}}");
    }
    // The metrics snapshot is itself a complete `voltsense-metrics-v1`
    // document; embed it verbatim as a nested object.
    out.push_str("\n  ],\n  \"metrics\": ");
    out.push_str(recorder.snapshot(incident.kind).to_json().trim_end());
    // Likewise the trace buffer (`voltsense-trace-v1`), when one is
    // registered: the slowest traces at the moment of the incident are
    // exactly the request-level evidence a burn-rate page needs.
    out.push_str(",\n  \"traces\": ");
    match crate::trace::current() {
        Some(traces) => out.push_str(traces.to_json().trim_end()),
        None => out.push_str("null"),
    }
    // And the continuous profile (`voltsense-profile-v1`) when a sampler
    // is running: where the cycles and allocations were going when the
    // incident fired, without re-running anything.
    out.push_str(",\n  \"profile\": ");
    match crate::profile::current() {
        Some(profile) => out.push_str(profile.to_json().trim_end()),
        None => out.push_str("null"),
    }
    out.push_str("\n}\n");
    out
}

fn push_usize_array(out: &mut String, values: &[usize]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Reset the per-kind caps and (test-only) make subsequent reports write
/// again. Exposed for integration tests that exercise `report` repeatedly
/// in one process.
pub fn reset_caps() {
    *PER_KIND.lock().unwrap_or_else(|e| e.into_inner()) = None;
}
