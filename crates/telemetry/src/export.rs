//! Immutable snapshots of a capture and the three exporters: JSON snapshot
//! (`voltsense-metrics-v1` schema, shared with `testkit::BenchTimer`
//! reports), Chrome trace-event file, and a plain-text summary table.

/// Percentile summary of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSummary {
    pub name: String,
    pub unit: String,
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// One span interval. Times are nanoseconds since the recorder's epoch.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Index into the snapshot's span list of the enclosing span.
    pub parent: Option<usize>,
    pub thread: usize,
}

impl SpanSummary {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One timestamped event with its numeric fields.
#[derive(Debug, Clone)]
pub struct EventSummary {
    pub name: String,
    pub at_ns: u64,
    pub thread: usize,
    pub fields: Vec<(String, f64)>,
}

impl EventSummary {
    /// Value of a named field, if present.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

/// Immutable copy of everything a recorder captured.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub suite: String,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSummary>,
    pub spans: Vec<SpanSummary>,
    pub events: Vec<EventSummary>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// All events with the given name, in record order.
    pub fn events_named<'a>(&'a self, name: &str) -> Vec<&'a EventSummary> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// The given field of every event with the given name, in record order.
    pub fn event_series(&self, name: &str, field: &str) -> Vec<f64> {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| e.field(field))
            .collect()
    }

    /// Serialize to the `voltsense-metrics-v1` JSON schema (see DESIGN.md §7).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"voltsense-metrics-v1\",\n  \"suite\": ");
        push_json_string(&mut out, &self.suite);
        out.push_str(",\n  \"metrics\": [\n");
        let mut first = true;
        for (name, value) in &self.counters {
            push_metric_sep(&mut out, &mut first);
            out.push_str("    {\"kind\": \"counter\", \"name\": ");
            push_json_string(&mut out, name);
            out.push_str(", \"value\": ");
            out.push_str(&fmt_f64(*value as f64));
            out.push_str(", \"unit\": \"count\"}");
        }
        for (name, value) in &self.gauges {
            push_metric_sep(&mut out, &mut first);
            out.push_str("    {\"kind\": \"gauge\", \"name\": ");
            push_json_string(&mut out, name);
            out.push_str(", \"value\": ");
            out.push_str(&fmt_f64(*value));
            out.push_str(", \"unit\": \"value\"}");
        }
        for h in &self.histograms {
            push_metric_sep(&mut out, &mut first);
            out.push_str("    {\"kind\": \"histogram\", \"name\": ");
            push_json_string(&mut out, &h.name);
            out.push_str(", \"value\": ");
            out.push_str(&fmt_f64(h.p50));
            out.push_str(", \"unit\": ");
            push_json_string(&mut out, &h.unit);
            out.push_str(&format!(
                ", \"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count,
                fmt_f64(h.min),
                fmt_f64(h.max),
                fmt_f64(h.mean),
                fmt_f64(h.p50),
                fmt_f64(h.p95),
                fmt_f64(h.p99)
            ));
        }
        out.push_str("\n  ],\n  \"spans\": [\n");
        let mut first = true;
        for s in &self.spans {
            push_metric_sep(&mut out, &mut first);
            out.push_str("    {\"name\": ");
            push_json_string(&mut out, &s.name);
            out.push_str(&format!(
                ", \"start_ns\": {}, \"dur_ns\": {}, \"thread\": {}, \"parent\": ",
                s.start_ns,
                s.duration_ns(),
                s.thread
            ));
            match s.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"events\": [\n");
        let mut first = true;
        for e in &self.events {
            push_metric_sep(&mut out, &mut first);
            out.push_str("    {\"name\": ");
            push_json_string(&mut out, &e.name);
            out.push_str(&format!(", \"at_ns\": {}, \"thread\": {}, \"fields\": {{", e.at_ns, e.thread));
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_json_string(&mut out, k);
                out.push_str(": ");
                out.push_str(&fmt_f64(*v));
            }
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serialize to the Chrome trace-event format understood by
    /// `chrome://tracing` and <https://ui.perfetto.dev>. Spans become
    /// complete (`"ph": "X"`) events; telemetry events become instant
    /// (`"ph": "i"`) events carrying their fields as args.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        for s in &self.spans {
            push_metric_sep(&mut out, &mut first);
            out.push_str("  {\"name\": ");
            push_json_string(&mut out, &s.name);
            out.push_str(&format!(
                ", \"cat\": \"voltsense\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
                fmt_f64(s.start_ns as f64 / 1e3),
                fmt_f64(s.duration_ns() as f64 / 1e3),
                s.thread + 1
            ));
        }
        for e in &self.events {
            push_metric_sep(&mut out, &mut first);
            out.push_str("  {\"name\": ");
            push_json_string(&mut out, &e.name);
            out.push_str(&format!(
                ", \"cat\": \"voltsense\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{",
                fmt_f64(e.at_ns as f64 / 1e3),
                e.thread + 1
            ));
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_json_string(&mut out, k);
                out.push_str(": ");
                out.push_str(&fmt_f64(*v));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Render a fixed-width human-readable summary.
    pub fn to_summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry summary · suite {}\n", self.suite));
        if !self.counters.is_empty() {
            out.push_str(&format!("  {:<36} {:>14}\n", "counter", "total"));
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<36} {value:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("  {:<36} {:>14}\n", "gauge", "value"));
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<36} {value:>14.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "  {:<36} {:>5} {:>10} {:>10} {:>10} {:>10} {:>6}\n",
                "histogram", "count", "p50", "p95", "p99", "max", "unit"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<36} {:>5} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>6}\n",
                    h.name, h.count, h.p50, h.p95, h.p99, h.max, h.unit
                ));
            }
        }
        out.push_str(&format!(
            "  {} spans, {} events captured\n",
            self.spans.len(),
            self.events.len()
        ));
        out
    }
}

fn push_metric_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float as a JSON number. JSON has no NaN/Infinity; map them to
/// `null` so exports always parse.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
