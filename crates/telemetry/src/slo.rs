//! Per-tenant SLO definitions and multi-window error-budget burn rates.
//!
//! Two SLIs per tenant, both fed by the fleet server (DESIGN.md §7.7):
//!
//! * **latency** — a decision responded within
//!   [`SloConfig::latency_threshold_ns`] end-to-end (decode → respond,
//!   the exact total the trace buffer records);
//! * **availability** — a reading answered with a decision rather than
//!   shed with `Busy`.
//!
//! Each SLI feeds two sliding windows (5 minutes of 15-second buckets and
//! 1 hour of 1-minute buckets). The burn rate of a window is
//! `bad_fraction / (1 − objective)`: 1.0 means the error budget is being
//! consumed exactly at the sustainable rate, 14.4 (the classic fast-burn
//! threshold) means a 30-day budget would be gone in ~2 days. A tenant
//! **pages** when *both* windows of either SLI burn above
//! [`SloConfig::fast_burn`] — the short window proves it is happening now,
//! the long window proves it is not a blip — and un-pages with hysteresis
//! only once both fall below `fast_burn × hysteresis`. The rising edge
//! fires a `slo_fast_burn` incident snapshot ([`crate::incident::report`]).
//!
//! Time is injectable (`*_at` methods take nanoseconds since the tracker's
//! epoch) so burn-rate math is exactly testable; production call sites use
//! the `Instant`-based wrappers. A process-global replaceable registry
//! ([`install`] / [`current`]) connects the fleet server's tracker to the
//! `GET /slo` route, mirroring [`crate::flight`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::export::fmt_f64;
use crate::incident::{self, Incident};

/// Schema identifier of the `GET /slo` document.
pub const SCHEMA: &str = "voltsense-slo-v1";

/// The short (fast-burn) window: 5 minutes of 15-second buckets.
const SHORT_BUCKET_NS: u64 = 15_000_000_000;
const SHORT_BUCKETS: usize = 20;
/// The long (confirmation) window: 1 hour of 1-minute buckets.
const LONG_BUCKET_NS: u64 = 60_000_000_000;
const LONG_BUCKETS: usize = 60;

/// Per-tenant SLO definition plus paging policy.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// A decision slower than this end-to-end is a latency SLI miss.
    pub latency_threshold_ns: u64,
    /// Fraction of decisions that must meet the latency threshold.
    pub latency_objective: f64,
    /// Fraction of readings that must be answered with a decision
    /// (not shed with `Busy`).
    pub availability_objective: f64,
    /// Page when both windows of either SLI burn above this rate.
    pub fast_burn: f64,
    /// Un-page only once both windows fall below `fast_burn × hysteresis`.
    pub hysteresis: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_threshold_ns: 5_000_000, // 5 ms
            latency_objective: 0.999,
            availability_objective: 0.999,
            fast_burn: 14.4,
            hysteresis: 0.5,
        }
    }
}

/// One bucket of a sliding window. `epoch` is the absolute bucket index
/// (`now / bucket_ns`); a stale bucket is reset in place when its ring
/// slot is reused, so expiry needs no background sweeper.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    epoch: u64,
    good: u64,
    bad: u64,
}

/// A fixed-bucket sliding window over (good, bad) event counts.
#[derive(Debug, Clone)]
struct Window {
    bucket_ns: u64,
    buckets: Vec<Bucket>,
}

impl Window {
    fn new(bucket_ns: u64, len: usize) -> Self {
        Window {
            bucket_ns,
            buckets: vec![Bucket::default(); len],
        }
    }

    fn record(&mut self, now_ns: u64, good: bool) {
        let epoch = now_ns / self.bucket_ns;
        let len = self.buckets.len() as u64;
        let slot = &mut self.buckets[(epoch % len) as usize];
        if slot.epoch != epoch {
            *slot = Bucket {
                epoch,
                good: 0,
                bad: 0,
            };
        }
        if good {
            slot.good += 1;
        } else {
            slot.bad += 1;
        }
    }

    /// Total (good, bad) over the live span of the window at `now_ns`.
    fn totals(&self, now_ns: u64) -> (u64, u64) {
        let epoch = now_ns / self.bucket_ns;
        let oldest = epoch.saturating_sub(self.buckets.len() as u64 - 1);
        let mut good = 0;
        let mut bad = 0;
        for b in &self.buckets {
            if b.epoch >= oldest && b.epoch <= epoch {
                good += b.good;
                bad += b.bad;
            }
        }
        (good, bad)
    }
}

/// Short/long window pair for one SLI.
#[derive(Debug, Clone)]
struct Sli {
    short: Window,
    long: Window,
}

impl Sli {
    fn new() -> Self {
        Sli {
            short: Window::new(SHORT_BUCKET_NS, SHORT_BUCKETS),
            long: Window::new(LONG_BUCKET_NS, LONG_BUCKETS),
        }
    }

    fn record(&mut self, now_ns: u64, good: bool) {
        self.short.record(now_ns, good);
        self.long.record(now_ns, good);
    }

    fn burns(&self, now_ns: u64, objective: f64) -> (f64, f64) {
        (
            burn_rate(self.short.totals(now_ns), objective),
            burn_rate(self.long.totals(now_ns), objective),
        )
    }
}

/// `bad_fraction / (1 − objective)`; 0 with no events or a ≥1 objective
/// (a 100% objective has no budget to burn — any failure is an incident,
/// not a rate).
fn burn_rate((good, bad): (u64, u64), objective: f64) -> f64 {
    let total = good + bad;
    let budget = 1.0 - objective;
    if total == 0 || !(budget > 0.0) {
        return 0.0;
    }
    (bad as f64 / total as f64) / budget
}

struct TenantSlo {
    latency: Sli,
    availability: Sli,
    paging: bool,
    pages: u64,
    /// Second-resolution memo of the last fast-burn evaluation, so the
    /// hot path sums window buckets at most once a second per tenant.
    last_eval_s: u64,
}

impl TenantSlo {
    fn new() -> Self {
        TenantSlo {
            latency: Sli::new(),
            availability: Sli::new(),
            paging: false,
            pages: 0,
            last_eval_s: u64::MAX,
        }
    }
}

/// Burn-rate summary for one tenant at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloBurn {
    /// Latency SLI burn over the 5-minute window.
    pub latency_short: f64,
    /// Latency SLI burn over the 1-hour window.
    pub latency_long: f64,
    /// Availability SLI burn over the 5-minute window.
    pub availability_short: f64,
    /// Availability SLI burn over the 1-hour window.
    pub availability_long: f64,
    /// Whether the tenant is currently paging.
    pub paging: bool,
}

impl SloBurn {
    /// Is either SLI fast-burning (both of its windows above `threshold`)?
    pub fn fast_burn(&self, threshold: f64) -> bool {
        (self.latency_short >= threshold && self.latency_long >= threshold)
            || (self.availability_short >= threshold && self.availability_long >= threshold)
    }

    /// Are all windows below `threshold` (used for hysteresis de-assert)?
    fn all_below(&self, threshold: f64) -> bool {
        self.latency_short < threshold
            && self.latency_long < threshold
            && self.availability_short < threshold
            && self.availability_long < threshold
    }
}

/// Per-tenant SLO tracker (see module docs).
pub struct SloTracker {
    cfg: SloConfig,
    epoch: Instant,
    tenants: Mutex<BTreeMap<u64, TenantSlo>>,
}

impl SloTracker {
    /// An empty tracker with the given SLO definition.
    pub fn new(cfg: SloConfig) -> Self {
        SloTracker {
            cfg,
            epoch: Instant::now(),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The SLO definition this tracker enforces.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Nanoseconds since this tracker's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a decision answered for `tenant` in `latency_ns` end-to-end.
    pub fn record_decision(&self, tenant: u64, latency_ns: u64) {
        self.record_decision_at(self.now_ns(), tenant, latency_ns);
    }

    /// Record a reading shed with `Busy` for `tenant`.
    pub fn record_busy(&self, tenant: u64) {
        self.record_busy_at(self.now_ns(), tenant);
    }

    /// [`Self::record_decision`] at an explicit instant (tests).
    pub fn record_decision_at(&self, now_ns: u64, tenant: u64, latency_ns: u64) {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let t = tenants.entry(tenant).or_insert_with(TenantSlo::new);
        t.latency
            .record(now_ns, latency_ns <= self.cfg.latency_threshold_ns);
        t.availability.record(now_ns, true);
        self.evaluate(tenant, t, now_ns);
    }

    /// [`Self::record_busy`] at an explicit instant (tests).
    pub fn record_busy_at(&self, now_ns: u64, tenant: u64) {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let t = tenants.entry(tenant).or_insert_with(TenantSlo::new);
        t.availability.record(now_ns, false);
        self.evaluate(tenant, t, now_ns);
    }

    /// Re-evaluate paging state, memoised to once per second per tenant.
    fn evaluate(&self, tenant: u64, t: &mut TenantSlo, now_ns: u64) {
        let now_s = now_ns / 1_000_000_000;
        if t.last_eval_s == now_s {
            return;
        }
        t.last_eval_s = now_s;
        let burn = burn_of(t, now_ns, &self.cfg);
        if !t.paging && burn.fast_burn(self.cfg.fast_burn) {
            t.paging = true;
            t.pages += 1;
            crate::counter("fleet.slo.pages_total", 1);
            incident::report(&Incident {
                kind: "slo_fast_burn",
                fields: &[
                    ("tenant", tenant as f64),
                    ("latency_burn_5m", burn.latency_short),
                    ("latency_burn_1h", burn.latency_long),
                    ("availability_burn_5m", burn.availability_short),
                    ("availability_burn_1h", burn.availability_long),
                    ("fast_burn_threshold", self.cfg.fast_burn),
                ],
                ..Incident::default()
            });
        } else if t.paging && burn.all_below(self.cfg.fast_burn * self.cfg.hysteresis) {
            t.paging = false;
        }
    }

    /// Burn rates for `tenant` right now, if it has any events.
    pub fn burn(&self, tenant: u64) -> Option<SloBurn> {
        self.burn_at(self.now_ns(), tenant)
    }

    /// [`Self::burn`] at an explicit instant (tests).
    pub fn burn_at(&self, now_ns: u64, tenant: u64) -> Option<SloBurn> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants.get(&tenant).map(|t| burn_of(t, now_ns, &self.cfg))
    }

    /// (good, bad) availability totals over the 1-hour window — lets
    /// chaos-replay tests assert events were not double-counted.
    pub fn availability_counts(&self, tenant: u64) -> (u64, u64) {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .get(&tenant)
            .map(|t| t.availability.long.totals(self.now_ns()))
            .unwrap_or_default()
    }

    /// (good, bad) latency totals over the 1-hour window.
    pub fn latency_counts(&self, tenant: u64) -> (u64, u64) {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .get(&tenant)
            .map(|t| t.latency.long.totals(self.now_ns()))
            .unwrap_or_default()
    }

    /// Total fast-burn pages fired across all tenants.
    pub fn pages(&self) -> u64 {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants.values().map(|t| t.pages).sum()
    }

    /// Tenant IDs with any recorded events.
    pub fn tenants(&self) -> Vec<u64> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants.keys().copied().collect()
    }

    /// Publish `fleet.slo.tenant.<id>.*` burn-rate gauges (sanitised to
    /// `fleet_slo_tenant_<id>_*` on `/metrics`) plus paging state.
    pub fn publish_gauges(&self) {
        if !crate::enabled() {
            return;
        }
        let now_ns = self.now_ns();
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        for (tenant, t) in tenants.iter() {
            let burn = burn_of(t, now_ns, &self.cfg);
            crate::gauge(slo_metric(*tenant, "latency_burn_5m"), burn.latency_short);
            crate::gauge(slo_metric(*tenant, "latency_burn_1h"), burn.latency_long);
            crate::gauge(
                slo_metric(*tenant, "availability_burn_5m"),
                burn.availability_short,
            );
            crate::gauge(
                slo_metric(*tenant, "availability_burn_1h"),
                burn.availability_long,
            );
            crate::gauge(slo_metric(*tenant, "paging"), if t.paging { 1.0 } else { 0.0 });
        }
    }

    /// Render the tracker as a `voltsense-slo-v1` JSON document.
    pub fn to_json(&self) -> String {
        let now_ns = self.now_ns();
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(SCHEMA);
        out.push_str("\",\n  \"config\": {");
        out.push_str(&format!(
            "\"latency_threshold_ns\": {}, \"latency_objective\": {}, \"availability_objective\": {}, \"fast_burn\": {}, \"hysteresis\": {}",
            self.cfg.latency_threshold_ns,
            fmt_f64(self.cfg.latency_objective),
            fmt_f64(self.cfg.availability_objective),
            fmt_f64(self.cfg.fast_burn),
            fmt_f64(self.cfg.hysteresis),
        ));
        out.push_str("},\n  \"tenants\": [");
        for (i, (tenant, t)) in tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let burn = burn_of(t, now_ns, &self.cfg);
            let (lat_good, lat_bad) = t.latency.long.totals(now_ns);
            let (av_good, av_bad) = t.availability.long.totals(now_ns);
            out.push_str(&format!(
                "\n    {{\"tenant\": {tenant}, \"paging\": {}, \"pages\": {},\n     \
                 \"latency\": {{\"burn_5m\": {}, \"burn_1h\": {}, \"good_1h\": {lat_good}, \"bad_1h\": {lat_bad}}},\n     \
                 \"availability\": {{\"burn_5m\": {}, \"burn_1h\": {}, \"good_1h\": {av_good}, \"bad_1h\": {av_bad}}}}}",
                t.paging,
                t.pages,
                fmt_f64(burn.latency_short),
                fmt_f64(burn.latency_long),
                fmt_f64(burn.availability_short),
                fmt_f64(burn.availability_long),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn burn_of(t: &TenantSlo, now_ns: u64, cfg: &SloConfig) -> SloBurn {
    let (latency_short, latency_long) = t.latency.burns(now_ns, cfg.latency_objective);
    let (availability_short, availability_long) =
        t.availability.burns(now_ns, cfg.availability_objective);
    SloBurn {
        latency_short,
        latency_long,
        availability_short,
        availability_long,
        paging: t.paging,
    }
}

/// Interned `fleet.slo.tenant.<id>.<metric>` names: the [`crate::Recorder`]
/// trait takes `&'static str`, tenant IDs are dynamic, and the set of
/// (tenant, metric) pairs is small and long-lived, so leaking each name
/// once is the right trade (same pattern as the fleet crate's per-tenant
/// metrics).
fn slo_metric(tenant: u64, metric: &'static str) -> &'static str {
    static NAMES: Mutex<BTreeMap<(u64, &'static str), &'static str>> = Mutex::new(BTreeMap::new());
    let mut names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    names
        .entry((tenant, metric))
        .or_insert_with(|| Box::leak(format!("fleet.slo.tenant.{tenant}.{metric}").into_boxed_str()))
}

/// The `voltsense-slo-v1` document of an empty tracker; what `/slo`
/// serves before any tracker is [`install`]ed.
pub fn empty_json() -> String {
    SloTracker::new(SloConfig::default()).to_json()
}

/// Process-global SLO tracker registry, read by the `GET /slo` route.
/// Replaceable like [`crate::flight::install`].
static SLO: Mutex<Option<Arc<SloTracker>>> = Mutex::new(None);

/// Register `tracker` as the process SLO tracker (replacing any previous
/// one) and return the one installed before.
pub fn install(tracker: Arc<SloTracker>) -> Option<Arc<SloTracker>> {
    SLO.lock().unwrap_or_else(|e| e.into_inner()).replace(tracker)
}

/// The registered SLO tracker, if any.
pub fn current() -> Option<Arc<SloTracker>> {
    SLO.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn cfg() -> SloConfig {
        SloConfig {
            latency_threshold_ns: 1_000_000,
            latency_objective: 0.9,
            availability_objective: 0.9,
            fast_burn: 2.0,
            hysteresis: 0.5,
        }
    }

    #[test]
    fn burn_rate_math_is_exact() {
        let slo = SloTracker::new(cfg());
        // 8 fast + 2 slow decisions at t=1s: bad fraction 0.2, budget 0.1.
        for i in 0..10u64 {
            let latency = if i < 8 { 500_000 } else { 5_000_000 };
            slo.record_decision_at(S, 1, latency);
        }
        let burn = slo.burn_at(S, 1).unwrap();
        assert!((burn.latency_short - 2.0).abs() < 1e-12, "{burn:?}");
        assert!((burn.latency_long - 2.0).abs() < 1e-12);
        assert_eq!(burn.availability_short, 0.0);
        assert_eq!(slo.latency_counts(1), (8, 2));
    }

    #[test]
    fn busy_burns_availability_only() {
        let slo = SloTracker::new(cfg());
        slo.record_decision_at(S, 7, 100);
        slo.record_busy_at(S, 7);
        let burn = slo.burn_at(S, 7).unwrap();
        assert!((burn.availability_short - 5.0).abs() < 1e-12);
        assert_eq!(burn.latency_short, 0.0);
        assert_eq!(slo.availability_counts(7), (1, 1));
    }

    #[test]
    fn short_window_rolls_off() {
        let slo = SloTracker::new(cfg());
        for _ in 0..10 {
            slo.record_busy_at(S, 3);
        }
        // 10 minutes later the 5m window is clean but the 1h window burns.
        let burn = slo.burn_at(600 * S, 3).unwrap();
        assert_eq!(burn.availability_short, 0.0);
        assert!(burn.availability_long > 0.0);
        // Two hours later everything has rolled off.
        let burn = slo.burn_at(7200 * S, 3).unwrap();
        assert_eq!(burn.availability_long, 0.0);
    }

    #[test]
    fn fast_burn_pages_once_with_hysteresis() {
        let slo = SloTracker::new(cfg());
        // All-bad traffic: availability burn = 1.0/0.1 = 10 > 2.0 on both
        // windows → page exactly once despite repeated evaluations.
        for i in 0..30u64 {
            slo.record_busy_at(S + i * S, 9);
        }
        assert_eq!(slo.pages(), 1);
        assert!(slo.burn_at(31 * S, 9).unwrap().paging);
        // Heavy good traffic much later: burns decay below the
        // de-assert threshold and paging clears, without a second page.
        for i in 0..2000u64 {
            slo.record_decision_at(400 * S + i * 1_000_000, 9, 100);
        }
        let burn = slo.burn_at(402 * S, 9).unwrap();
        // The 1h window still remembers the busies but the fraction is
        // tiny now: 30/2030 / 0.1 ≈ 0.148 < 1.0 (= 2.0 × 0.5).
        assert!(!burn.paging, "{burn:?}");
        assert_eq!(slo.pages(), 1);
    }

    #[test]
    fn perfect_traffic_never_burns() {
        let slo = SloTracker::new(SloConfig::default());
        for i in 0..100u64 {
            slo.record_decision_at(S + i, 4, 1000);
        }
        let burn = slo.burn_at(S + 100, 4).unwrap();
        assert_eq!(burn.latency_short, 0.0);
        assert_eq!(burn.availability_long, 0.0);
        assert!(!burn.paging);
        assert_eq!(slo.pages(), 0);
    }

    #[test]
    fn json_document_parses() {
        let slo = SloTracker::new(cfg());
        slo.record_decision_at(S, 1, 100);
        slo.record_busy_at(S, 2);
        let doc = crate::json::parse(&slo.to_json()).expect("valid json");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        let tenants = doc.get("tenants").and_then(|v| v.as_array()).unwrap();
        assert_eq!(tenants.len(), 2);
        assert!(tenants[0].get("latency").and_then(|l| l.get("burn_5m")).is_some());
        assert!(tenants[1]
            .get("availability")
            .and_then(|a| a.get("burn_1h"))
            .and_then(|v| v.as_f64())
            .is_some());
        let empty = crate::json::parse(&empty_json()).expect("valid empty json");
        assert_eq!(
            empty.get("tenants").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(0)
        );
    }
}
