//! The `Recorder` trait, the zero-cost no-op recorder, and the thread-safe
//! in-memory recorder used for real captures.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::histogram::Histogram;

/// Opaque handle returned by [`Recorder::span_begin`] and consumed by
/// [`Recorder::span_end`]. `SpanId(0)` is the reserved "no span" handle that
/// every recorder must ignore on `span_end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);
}

/// How much signal a recorder wants from instrumentation sites.
///
/// Some diagnostics are *expensive to compute* (a full objective
/// evaluation per solver iteration costs more than the iteration).
/// Call sites guard those behind [`crate::detailed`], which is only true
/// for `Full`-detail recorders — an always-on [`crate::FlightRecorder`]
/// reports `Sampled` and never pays for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detail {
    /// Bounded-memory, always-on recording: cheap signals only.
    Sampled,
    /// Diagnostic capture: compute everything, keep everything.
    Full,
}

/// Sink for telemetry signals. Implementations must be cheap to call and
/// safe to share across threads; instrumented code never checks which
/// recorder is installed.
///
/// All names are `&'static str` by design: instrumentation sites name their
/// signals with literals, which keeps the hot path free of allocation.
pub trait Recorder: Send + Sync {
    /// Open a wall-clock span. The returned id must be passed to
    /// [`Recorder::span_end`] on the same thread to close it.
    fn span_begin(&self, name: &'static str) -> SpanId;
    /// Close a span opened by [`Recorder::span_begin`]. Ignores
    /// [`SpanId::NONE`] and unknown ids.
    fn span_end(&self, id: SpanId);
    /// Add `delta` to a monotonically increasing counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Set a point-in-time gauge.
    fn gauge_set(&self, name: &'static str, value: f64);
    /// Record one observation into a log-scale histogram.
    fn histogram_record(&self, name: &'static str, value: f64, unit: &'static str);
    /// Record a timestamped event with numeric fields (e.g. one solver
    /// iteration with its objective and residual).
    fn event(&self, name: &'static str, fields: &[(&'static str, f64)]);
    /// How much signal this recorder wants (default: everything).
    fn detail(&self) -> Detail {
        Detail::Full
    }
}

/// Recorder that drops everything. Every method is an empty inlineable body,
/// so instrumentation dispatched here costs a virtual call at most — and the
/// crate-level helpers skip even that when telemetry is disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn span_begin(&self, _name: &'static str) -> SpanId {
        SpanId::NONE
    }
    #[inline]
    fn span_end(&self, _id: SpanId) {}
    #[inline]
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    #[inline]
    fn gauge_set(&self, _name: &'static str, _value: f64) {}
    #[inline]
    fn histogram_record(&self, _name: &'static str, _value: f64, _unit: &'static str) {}
    #[inline]
    fn event(&self, _name: &'static str, _fields: &[(&'static str, f64)]) {}
}

/// One closed (or still-open) span as stored by [`MemoryRecorder`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub name: &'static str,
    /// Nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Nanoseconds since the recorder was created; `None` while open.
    pub end_ns: Option<u64>,
    /// Index into the span list of the enclosing span on the same thread.
    pub parent: Option<usize>,
    /// Dense per-recorder thread index (0 = first thread seen).
    pub thread: usize,
}

/// One timestamped event as stored by [`MemoryRecorder`].
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub name: &'static str,
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    pub thread: usize,
    pub fields: Vec<(&'static str, f64)>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, (Histogram, &'static str)>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    /// Thread registry: position = dense thread index used in records.
    threads: Vec<ThreadId>,
    /// Per-thread stack of open span indices (keyed by dense thread index).
    stacks: Vec<Vec<usize>>,
}

impl Inner {
    fn thread_index(&mut self, id: ThreadId) -> usize {
        if let Some(pos) = self.threads.iter().position(|&t| t == id) {
            pos
        } else {
            self.threads.push(id);
            self.stacks.push(Vec::new());
            self.threads.len() - 1
        }
    }
}

/// Thread-safe in-memory recorder. All signals go through one mutex; this is
/// deliberate — telemetry is only ever enabled for diagnostic runs, and the
/// mutex keeps span parenting, ordering, and merges trivially correct.
///
/// Span durations are automatically folded into a histogram named after the
/// span (unit `ns`), so every instrumented region gets percentile stats for
/// free.
pub struct MemoryRecorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryRecorder {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this mutex can only come from allocation
        // failure; recovering the data beats poisoning the whole capture.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copy the current state into an immutable [`Snapshot`](crate::export::Snapshot).
    /// Spans still open at snapshot time are reported with the snapshot
    /// instant as their end.
    pub fn snapshot(&self, suite: &str) -> crate::export::Snapshot {
        use crate::export::{HistogramSummary, Snapshot, SpanSummary};
        let now = self.now_ns();
        let inner = self.lock();
        Snapshot {
            suite: suite.to_string(),
            counters: inner.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            gauges: inner.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&name, (h, unit))| HistogramSummary {
                    name: name.to_string(),
                    unit: unit.to_string(),
                    count: h.count(),
                    min: h.min(),
                    max: h.max(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                })
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|s| SpanSummary {
                    name: s.name.to_string(),
                    start_ns: s.start_ns,
                    end_ns: s.end_ns.unwrap_or(now),
                    parent: s.parent,
                    thread: s.thread,
                })
                .collect(),
            events: inner
                .events
                .iter()
                .map(|e| crate::export::EventSummary {
                    name: e.name.to_string(),
                    at_ns: e.at_ns,
                    thread: e.thread,
                    fields: e
                        .fields
                        .iter()
                        .map(|&(k, v)| (k.to_string(), v))
                        .collect(),
                })
                .collect(),
        }
    }
}

impl Recorder for MemoryRecorder {
    fn span_begin(&self, name: &'static str) -> SpanId {
        let start_ns = self.now_ns();
        let mut inner = self.lock();
        let thread = inner.thread_index(std::thread::current().id());
        let parent = inner.stacks[thread].last().copied();
        let index = inner.spans.len();
        inner.spans.push(SpanRecord {
            name,
            start_ns,
            end_ns: None,
            parent,
            thread,
        });
        inner.stacks[thread].push(index);
        SpanId(index as u64 + 1)
    }

    fn span_end(&self, id: SpanId) {
        if id == SpanId::NONE {
            return;
        }
        let end_ns = self.now_ns();
        let index = (id.0 - 1) as usize;
        let mut inner = self.lock();
        if index >= inner.spans.len() || inner.spans[index].end_ns.is_some() {
            return;
        }
        inner.spans[index].end_ns = Some(end_ns);
        let (name, start_ns, thread) = {
            let s = &inner.spans[index];
            (s.name, s.start_ns, s.thread)
        };
        // Remove from the open stack; tolerate out-of-order closes.
        if let Some(pos) = inner.stacks[thread].iter().rposition(|&i| i == index) {
            inner.stacks[thread].remove(pos);
        }
        let duration = end_ns.saturating_sub(start_ns) as f64;
        inner
            .histograms
            .entry(name)
            .or_insert_with(|| (Histogram::new(), "ns"))
            .0
            .record(duration);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        let mut inner = self.lock();
        inner.gauges.insert(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: f64, unit: &'static str) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name)
            .or_insert_with(|| (Histogram::new(), unit))
            .0
            .record(value);
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, f64)]) {
        let at_ns = self.now_ns();
        let mut inner = self.lock();
        let thread = inner.thread_index(std::thread::current().id());
        inner.events.push(EventRecord {
            name,
            at_ns,
            thread,
            fields: fields.to_vec(),
        });
    }
}

/// Forwards every signal to each of a set of child recorders. Used when a
/// full diagnostic capture (`VOLTSENSE_TELEMETRY`) and the always-on
/// flight recorder must both observe the same run.
///
/// Span handles are translated: `span_begin` opens a span on every child
/// and hands back one id mapping to the per-child ids.
pub struct FanoutRecorder {
    children: Vec<std::sync::Arc<dyn Recorder>>,
    open: Mutex<BTreeMap<u64, Vec<SpanId>>>,
    next: std::sync::atomic::AtomicU64,
}

impl FanoutRecorder {
    pub fn new(children: Vec<std::sync::Arc<dyn Recorder>>) -> Self {
        FanoutRecorder {
            children,
            open: Mutex::new(BTreeMap::new()),
            next: std::sync::atomic::AtomicU64::new(1),
        }
    }
}

impl Recorder for FanoutRecorder {
    fn span_begin(&self, name: &'static str) -> SpanId {
        let ids: Vec<SpanId> = self.children.iter().map(|c| c.span_begin(name)).collect();
        let id = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.open
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, ids);
        SpanId(id)
    }

    fn span_end(&self, id: SpanId) {
        if id == SpanId::NONE {
            return;
        }
        let ids = self
            .open
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id.0);
        if let Some(ids) = ids {
            for (child, child_id) in self.children.iter().zip(ids) {
                child.span_end(child_id);
            }
        }
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        for c in &self.children {
            c.counter_add(name, delta);
        }
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        for c in &self.children {
            c.gauge_set(name, value);
        }
    }

    fn histogram_record(&self, name: &'static str, value: f64, unit: &'static str) {
        for c in &self.children {
            c.histogram_record(name, value, unit);
        }
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, f64)]) {
        for c in &self.children {
            c.event(name, fields);
        }
    }

    /// The most demanding child wins: one full-detail child makes the
    /// whole fanout full-detail.
    fn detail(&self) -> Detail {
        self.children
            .iter()
            .map(|c| c.detail())
            .max()
            .unwrap_or(Detail::Sampled)
    }
}
