//! One shared parser for every `VOLTSENSE_*` / `TESTKIT_*` environment knob.
//!
//! Historically each crate parsed its own flags (`TESTKIT_BENCH_FAST`
//! required the literal `"1"`, `VOLTSENSE_SCALE` accepted named values).
//! All knobs now accept the same bool-ish spellings: `1`/`true`/`on`/`yes`
//! enable, `0`/`false`/`off`/`no` disable, matched case-insensitively.

use std::path::PathBuf;

/// The trimmed value of an environment variable, if set and non-empty.
pub fn value(name: &str) -> Option<String> {
    let v = std::env::var(name).ok()?;
    let trimmed = v.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

/// Is this string one of the recognised "enabled" spellings?
pub fn is_truthy(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "on" | "yes"
    )
}

/// Is this string one of the recognised "disabled" spellings?
pub fn is_falsy(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "" | "0" | "false" | "off" | "no"
    )
}

/// Bool-ish flag: true iff the variable is set to a truthy spelling.
pub fn flag(name: &str) -> bool {
    value(name).is_some_and(|v| is_truthy(&v))
}

/// Parse a typed knob (e.g. a sample count); `None` if unset or unparsable.
pub fn parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    value(name)?.parse().ok()
}

/// Directory for generated artifacts (bench reports, telemetry exports).
///
/// `TESTKIT_RESULTS_DIR` wins if set; otherwise walk up from the running
/// crate's manifest (or the current directory) looking for an existing
/// `results/` or a workspace root (a `Cargo.toml` next to a `crates/`
/// directory); fall back to `./results`. The directory is created if
/// missing so callers can write into it directly.
pub fn results_dir() -> PathBuf {
    let dir = if let Some(dir) = value("TESTKIT_RESULTS_DIR") {
        PathBuf::from(dir)
    } else {
        let start = value("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .or_else(|| std::env::current_dir().ok())
            .unwrap_or_else(|| PathBuf::from("."));
        let mut cursor = start.clone();
        loop {
            if cursor.join("results").is_dir()
                || (cursor.join("Cargo.toml").is_file() && cursor.join("crates").is_dir())
            {
                break cursor.join("results");
            }
            if !cursor.pop() {
                break start.join("results");
            }
        }
    };
    let _ = std::fs::create_dir_all(&dir);
    dir
}
