//! Always-on flight recorder: a fixed-capacity, lock-light [`Recorder`]
//! meant to run for the whole life of a production process.
//!
//! [`MemoryRecorder`](crate::MemoryRecorder) keeps *everything* (every
//! event, every span, full parentage) behind one mutex — right for a
//! bounded diagnostic run, wrong for a monitor that observes millions of
//! samples. [`FlightRecorder`] inverts the trade:
//!
//! * **constant memory** — events live in a ring of fixed capacity; the
//!   oldest entry is evicted when a new one arrives;
//! * **exact aggregates** — counters, gauges, and log-scale histograms are
//!   aggregated exactly (never sampled), so `/metrics` scrapes and
//!   incident files report true totals and true quantiles;
//! * **decimated events** — high-rate event streams (per-CG-iteration,
//!   per-`observe()` call) are admitted through a deterministic per-name
//!   stride that doubles as a name's volume grows, so a chatty signal
//!   cannot flush rarer, more interesting events out of the ring;
//! * **lock-light** — each signal kind has its own mutex (counters,
//!   gauges, histograms, ring, open spans), so a counter bump never
//!   contends with a ring push, and no lock is held while formatting or
//!   allocating anything beyond the stored fields.
//!
//! Spans are recorded without parentage: a closed span feeds the exact
//! duration histogram named after it and is offered to the ring as an
//! event carrying `dur_ns`. The recorder reports
//! [`Detail::Sampled`](crate::Detail), so instrumentation sites guarding
//! *expensive* signal computation with [`crate::detailed`] stay free on
//! the always-on path.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::export::{EventSummary, HistogramSummary, Snapshot};
use crate::histogram::Histogram;
use crate::recorder::{Detail, Recorder, SpanId};

/// Default ring capacity when none is configured (`VOLTSENSE_FLIGHT_CAPACITY`).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One event retained in the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct RingEvent {
    /// Global admission sequence number (0 = first event ever admitted).
    pub seq: u64,
    pub name: &'static str,
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    pub fields: Vec<(&'static str, f64)>,
}

/// Per-name decimation bookkeeping, exposed for incident files so a reader
/// can tell how much of a stream the retained window represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerStat {
    /// Occurrences offered to the ring.
    pub seen: u64,
    /// Occurrences admitted (before eviction).
    pub kept: u64,
    /// Stride in force for the *next* occurrence (1 = keep all).
    pub stride: u64,
}

#[derive(Default)]
struct RingState {
    events: VecDeque<RingEvent>,
    samplers: BTreeMap<&'static str, (u64, u64)>, // name -> (seen, kept)
    next_seq: u64,
}

/// Fixed-capacity, always-on recorder. See the module docs.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, (Histogram, &'static str)>>,
    ring: Mutex<RingState>,
    open_spans: Mutex<BTreeMap<u64, (&'static str, u64)>>,
    next_span: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            capacity,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            ring: Mutex::new(RingState::default()),
            open_spans: Mutex::new(BTreeMap::new()),
            next_span: AtomicU64::new(1),
        }
    }

    /// Capacity from `VOLTSENSE_FLIGHT_CAPACITY`, defaulting to
    /// [`DEFAULT_CAPACITY`].
    pub fn from_env() -> Self {
        let capacity = crate::env::parse::<usize>("VOLTSENSE_FLIGHT_CAPACITY")
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        Self::new(capacity)
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deterministic decimation stride for an event name that has been
    /// offered `seen` times already: every name keeps its first `capacity`
    /// occurrences, then the stride doubles each time its volume crosses
    /// another multiple of the capacity (1-in-2, then 1-in-4, …).
    fn stride(&self, seen: u64) -> u64 {
        (seen / self.capacity as u64 + 1).next_power_of_two()
    }

    /// Offer one event to the ring, applying decimation then eviction.
    fn offer(&self, name: &'static str, at_ns: u64, fields: &[(&'static str, f64)]) {
        let mut guard = Self::lock(&self.ring);
        let ring = &mut *guard;
        let entry = ring.samplers.entry(name).or_insert((0, 0));
        let seen = entry.0;
        entry.0 += 1;
        if seen % self.stride(seen) != 0 {
            return;
        }
        entry.1 += 1;
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(RingEvent {
            seq,
            name,
            at_ns,
            fields: fields.to_vec(),
        });
    }

    /// The retained event window, oldest first.
    pub fn ring_events(&self) -> Vec<RingEvent> {
        Self::lock(&self.ring).events.iter().cloned().collect()
    }

    /// Per-name decimation statistics, sorted by name.
    pub fn sampler_stats(&self) -> Vec<(&'static str, SamplerStat)> {
        let ring = Self::lock(&self.ring);
        ring.samplers
            .iter()
            .map(|(&name, &(seen, kept))| {
                (
                    name,
                    SamplerStat {
                        seen,
                        kept,
                        stride: self.stride(seen),
                    },
                )
            })
            .collect()
    }

    /// Exact aggregates plus the retained event window as a [`Snapshot`].
    /// Span records are not tracked individually (only their duration
    /// histograms), so `snapshot.spans` is empty.
    pub fn snapshot(&self, suite: &str) -> Snapshot {
        let counters: Vec<(String, u64)> = Self::lock(&self.counters)
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect();
        let gauges: Vec<(String, f64)> = Self::lock(&self.gauges)
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect();
        let histograms: Vec<HistogramSummary> = Self::lock(&self.histograms)
            .iter()
            .map(|(&name, (h, unit))| HistogramSummary {
                name: name.to_string(),
                unit: unit.to_string(),
                count: h.count(),
                min: h.min(),
                max: h.max(),
                mean: h.mean(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
            })
            .collect();
        let events: Vec<EventSummary> = self
            .ring_events()
            .into_iter()
            .map(|e| EventSummary {
                name: e.name.to_string(),
                at_ns: e.at_ns,
                thread: 0,
                fields: e.fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            })
            .collect();
        Snapshot {
            suite: suite.to_string(),
            counters,
            gauges,
            histograms,
            spans: Vec::new(),
            events,
        }
    }
}

impl Recorder for FlightRecorder {
    fn span_begin(&self, name: &'static str) -> SpanId {
        let start_ns = self.now_ns();
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        Self::lock(&self.open_spans).insert(id, (name, start_ns));
        SpanId(id)
    }

    fn span_end(&self, id: SpanId) {
        if id == SpanId::NONE {
            return;
        }
        let end_ns = self.now_ns();
        let Some((name, start_ns)) = Self::lock(&self.open_spans).remove(&id.0) else {
            return;
        };
        let duration = end_ns.saturating_sub(start_ns);
        Self::lock(&self.histograms)
            .entry(name)
            .or_insert_with(|| (Histogram::new(), "ns"))
            .0
            .record(duration as f64);
        self.offer(name, end_ns, &[("dur_ns", duration as f64)]);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        *Self::lock(&self.counters).entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        Self::lock(&self.gauges).insert(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: f64, unit: &'static str) {
        Self::lock(&self.histograms)
            .entry(name)
            .or_insert_with(|| (Histogram::new(), unit))
            .0
            .record(value);
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, f64)]) {
        let at_ns = self.now_ns();
        self.offer(name, at_ns, fields);
    }

    fn detail(&self) -> Detail {
        Detail::Sampled
    }
}

/// Process-global flight recorder registry, read by
/// [`crate::incident::report`] and by the `/metrics` endpoint source
/// installed by [`crate::init_always_on`]. Unlike the signal-routing
/// global this slot is *replaceable* so tests can install their own.
static FLIGHT: Mutex<Option<Arc<FlightRecorder>>> = Mutex::new(None);

/// Register `recorder` as the process flight recorder (replacing any
/// previous one) and return the one that was installed before.
pub fn install(recorder: Arc<FlightRecorder>) -> Option<Arc<FlightRecorder>> {
    FLIGHT
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .replace(recorder)
}

/// The registered flight recorder, if any.
pub fn current() -> Option<Arc<FlightRecorder>> {
    FLIGHT.lock().unwrap_or_else(|e| e.into_inner()).clone()
}
