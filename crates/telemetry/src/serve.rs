//! Zero-dependency live scrape endpoint.
//!
//! [`serve`] binds a `std::net::TcpListener` and answers its routes from
//! a caller-supplied snapshot source, one short-lived connection at a time
//! (scrapers are the only intended clients):
//!
//! * `GET /` — JSON index of every endpoint below, so a browser hit on
//!   the bare port is self-documenting;
//! * `GET /metrics` — Prometheus text exposition ([`crate::prom::encode`]);
//! * `GET /snapshot` — the `voltsense-metrics-v1` JSON snapshot;
//! * `GET /trace` — the `voltsense-trace-v1` tail-sampled trace buffer
//!   ([`crate::trace::current`]; an empty document when none is installed);
//! * `GET /slo` — the `voltsense-slo-v1` per-tenant burn-rate view
//!   ([`crate::slo::current`]; an empty document when none is installed);
//! * `GET /profile` — the `voltsense-profile-v1` continuous-profiling
//!   document ([`crate::profile::current`]; empty when no sampler runs);
//!   `GET /profile?format=collapsed` serves flamegraph-compatible
//!   collapsed-stack text instead;
//! * `GET /healthz` — readiness. With no [`install_health`] source this is
//!   the legacy unconditional `200 ok`; with one installed it answers
//!   `200`/`503` with a JSON body (quarantined/degraded session counts,
//!   last-checkpoint age) so orchestrators can actually gate on it.
//!
//! **Security posture**: the server speaks unauthenticated plaintext HTTP
//! and must not face untrusted networks. A bare port (`VOLTSENSE_TELEMETRY_ADDR=9184`)
//! therefore binds `127.0.0.1`; exposing it wider requires spelling out an
//! explicit bind address.
//!
//! **Robustness posture**: the accept loop handles one connection at a
//! time, so a hostile or broken client must never wedge it. Each request
//! head is read under a hard wall-clock deadline
//! (`VOLTSENSE_TELEMETRY_READ_DEADLINE_MS`, default 5000) and a bounded
//! buffer ([`MAX_HEAD`]): a slow-loris client trickling bytes gets `408
//! Request Timeout` when the deadline expires, and an oversized request
//! head gets `413 Content Too Large` the moment the bound is exceeded —
//! in both cases the connection is answered and closed instead of hanging.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::export::Snapshot;
use crate::prom;

/// Produces the snapshot a scrape observes. Called once per request.
pub type SnapshotSource = Arc<dyn Fn() -> Snapshot + Send + Sync>;

/// Readiness answer produced by an [`install_health`] source.
pub struct Health {
    /// `true` → `200 OK`, `false` → `503 Service Unavailable`.
    pub healthy: bool,
    /// JSON body served either way (session counts, checkpoint age, …).
    pub body: String,
}

/// Produces the `/healthz` answer. Called once per request.
pub type HealthSource = Arc<dyn Fn() -> Health + Send + Sync>;

/// Process-global readiness source, replaceable like
/// [`crate::flight::install`] so each fleet server (and each test) can
/// wire its own. With none installed `/healthz` stays the legacy
/// unconditional `200 ok` liveness probe.
static HEALTH: Mutex<Option<HealthSource>> = Mutex::new(None);

/// Register `source` as the process `/healthz` answerer (replacing any
/// previous one) and return the one installed before.
pub fn install_health(source: HealthSource) -> Option<HealthSource> {
    HEALTH.lock().unwrap_or_else(|e| e.into_inner()).replace(source)
}

/// Remove the registered readiness source, restoring the legacy probe.
pub fn clear_health() -> Option<HealthSource> {
    HEALTH.lock().unwrap_or_else(|e| e.into_inner()).take()
}

fn health_source() -> Option<HealthSource> {
    HEALTH.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Handle to a running endpoint; the server stops when this is dropped.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// The actual bound address (resolves port 0 to the assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the serve thread and wait for it to exit.
    pub fn stop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop with one throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Start serving `source` on `addr`.
///
/// `addr` is `host:port` or a bare port (which binds `127.0.0.1`); port 0
/// picks a free port — read the result from [`Server::addr`]. If
/// `VOLTSENSE_TELEMETRY_ADDR_FILE` is set, the bound address is also
/// written there so an out-of-process scraper can discover an
/// OS-assigned port; a failed address-file write is reported (stderr +
/// `telemetry.addr_file_failures` counter) but does not stop the server —
/// the endpoint itself is healthy.
pub fn serve(addr: &str, source: SnapshotSource) -> std::io::Result<Server> {
    let addr = if addr.contains(':') {
        addr.to_string()
    } else {
        format!("127.0.0.1:{addr}")
    };
    let listener = TcpListener::bind(&addr)?;
    let addr = listener.local_addr()?;
    if let Some(path) = crate::env::value("VOLTSENSE_TELEMETRY_ADDR_FILE") {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("[telemetry] cannot write address file {path}: {e}");
            crate::counter("telemetry.addr_file_failures", 1);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let thread = std::thread::Builder::new()
        .name("voltsense-telemetry-serve".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // One scraper at a time; errors only affect that client.
                    let _ = handle(stream, &source);
                }
            }
        })?;
    Ok(Server {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// Largest request head (request line + headers) we will buffer.
const MAX_HEAD: usize = 8 * 1024;

/// Default wall-clock budget for receiving a complete request head.
const DEFAULT_READ_DEADLINE_MS: u64 = 5_000;

/// How the head-read phase of a request ended.
enum HeadRead {
    /// Complete head (terminated by a blank line) or clean EOF.
    Complete(Vec<u8>),
    /// The deadline expired before the head terminator arrived.
    TimedOut,
    /// The head exceeded [`MAX_HEAD`] without a terminator.
    TooLarge,
}

/// Read the request head under the deadline/size bounds. Transport errors
/// other than timeouts end the read as if the peer closed (whatever was
/// buffered is processed; an empty head falls out as a 405/404).
fn read_head(stream: &mut TcpStream, deadline: Instant) -> HeadRead {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return HeadRead::Complete(head);
        }
        if head.len() >= MAX_HEAD {
            return HeadRead::TooLarge;
        }
        let now = Instant::now();
        if now >= deadline {
            return HeadRead::TimedOut;
        }
        // Bound each read() by the remaining budget so a byte-at-a-time
        // client cannot extend its welcome by resetting a per-read timer.
        let remaining = (deadline - now).min(Duration::from_secs(2));
        if stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1)))).is_err() {
            return HeadRead::Complete(head);
        }
        match stream.read(&mut buf) {
            Ok(0) => return HeadRead::Complete(head),
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Loop re-checks the deadline; a timeout mid-budget (spurious
                // wakeup shorter than `remaining`) just retries.
            }
            Err(_) => return HeadRead::Complete(head),
        }
    }
}

/// The `GET /` body: a machine- and human-readable endpoint index.
fn endpoint_index() -> String {
    concat!(
        "{\n  \"service\": \"voltsense-telemetry\",\n  \"endpoints\": [\n",
        "    {\"path\": \"/metrics\", \"description\": \"Prometheus text exposition\"},\n",
        "    {\"path\": \"/snapshot\", \"description\": \"voltsense-metrics-v1 JSON snapshot\"},\n",
        "    {\"path\": \"/trace\", \"description\": \"voltsense-trace-v1 tail-sampled traces\"},\n",
        "    {\"path\": \"/slo\", \"description\": \"voltsense-slo-v1 per-tenant burn rates\"},\n",
        "    {\"path\": \"/profile\", \"description\": \"voltsense-profile-v1 continuous profile\"},\n",
        "    {\"path\": \"/profile?format=collapsed\", \"description\": \"flamegraph collapsed-stack text\"},\n",
        "    {\"path\": \"/healthz\", \"description\": \"readiness probe\"}\n",
        "  ]\n}\n"
    )
    .to_string()
}

fn handle(mut stream: TcpStream, source: &SnapshotSource) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let budget_ms = crate::env::parse::<u64>("VOLTSENSE_TELEMETRY_READ_DEADLINE_MS")
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_READ_DEADLINE_MS);
    let deadline = Instant::now() + Duration::from_millis(budget_ms);

    let (status, content_type, body) = match read_head(&mut stream, deadline) {
        HeadRead::TimedOut => {
            crate::counter("telemetry.serve_timeouts", 1);
            (
                "408 Request Timeout",
                "text/plain",
                "request head not received within the read deadline\n".to_string(),
            )
        }
        HeadRead::TooLarge => {
            crate::counter("telemetry.serve_oversized", 1);
            (
                "413 Content Too Large",
                "text/plain",
                format!("request head exceeds {MAX_HEAD} bytes\n"),
            )
        }
        HeadRead::Complete(head) => {
            let head = String::from_utf8_lossy(&head);
            let mut parts = head.lines().next().unwrap_or_default().split_whitespace();
            let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if method != "GET" {
                ("405 Method Not Allowed", "text/plain", "only GET is supported\n".to_string())
            } else {
                // `/profile?format=collapsed` is the only query we accept;
                // split it off so exact-path matching stays exact.
                let (path, query) = match path.split_once('?') {
                    Some((p, q)) => (p, q),
                    None => (path, ""),
                };
                match path {
                    "/" => ("200 OK", "application/json", endpoint_index()),
                    "/metrics" => (
                        "200 OK",
                        "text/plain; version=0.0.4; charset=utf-8",
                        prom::encode(&source()),
                    ),
                    "/snapshot" => ("200 OK", "application/json", source().to_json()),
                    "/trace" => (
                        "200 OK",
                        "application/json",
                        crate::trace::current()
                            .map(|t| t.to_json())
                            .unwrap_or_else(crate::trace::empty_json),
                    ),
                    "/slo" => (
                        "200 OK",
                        "application/json",
                        crate::slo::current()
                            .map(|s| s.to_json())
                            .unwrap_or_else(crate::slo::empty_json),
                    ),
                    "/profile" if query == "format=collapsed" => (
                        "200 OK",
                        "text/plain; charset=utf-8",
                        crate::profile::current()
                            .map(|p| p.to_collapsed())
                            .unwrap_or_default(),
                    ),
                    // Bare `/profile` only: an unrecognized format query
                    // falls through to 404 rather than silently serving
                    // JSON to a client that asked for something else.
                    "/profile" if query.is_empty() => (
                        "200 OK",
                        "application/json",
                        crate::profile::current()
                            .map(|p| p.to_json())
                            .unwrap_or_else(crate::profile::empty_json),
                    ),
                    "/healthz" => match health_source() {
                        None => ("200 OK", "text/plain", "ok\n".to_string()),
                        Some(health) => {
                            let answer = health();
                            (
                                if answer.healthy {
                                    "200 OK"
                                } else {
                                    "503 Service Unavailable"
                                },
                                "application/json",
                                answer.body,
                            )
                        }
                    },
                    _ => (
                        "404 Not Found",
                        "text/plain",
                        "routes: / /metrics /snapshot /trace /slo /profile /healthz\n".to_string(),
                    ),
                }
            }
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
