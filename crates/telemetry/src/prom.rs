//! Prometheus text exposition (format 0.0.4) rendering of a [`Snapshot`].
//!
//! Mapping:
//!
//! * counters → `# TYPE <name>_total counter`, one sample per counter;
//! * gauges → `# TYPE <name> gauge`;
//! * every metric family is preceded by a `# HELP` line naming the raw
//!   signal it was derived from (backslash/newline escaped per the spec);
//! * histograms → Prometheus *summaries*: `<name>{quantile="0.5|0.95|0.99"}`
//!   rendered straight from the log-scale histogram's quantile estimates,
//!   plus exact `<name>_sum`, `<name>_count`, and `<name>_min`/`<name>_max`
//!   gauges (the extremes the log-scale histogram tracks exactly). Each
//!   quantile sample carries the histogram's unit as a `unit` label.
//!
//! Metric names are sanitised to the Prometheus grammar
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` (every other byte becomes `_`); label values
//! escape `\`, `"`, and newline per the exposition-format spec. Non-finite
//! values render as `NaN` / `+Inf` / `-Inf`, which the format allows.

use crate::export::Snapshot;

/// Render `snapshot` in Prometheus text exposition format. The output
/// always begins with a `# voltsense` comment naming the suite, so even an
/// empty registry scrapes as a valid, non-empty document.
pub fn encode(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("# voltsense telemetry, suite \"");
    // Comments run to end-of-line; strip anything that would break that.
    for c in snapshot.suite.chars() {
        if c != '\n' && c != '\r' {
            out.push(c);
        }
    }
    out.push_str("\"\n");

    // Static build-info gauge (standard pattern: value is always 1, the
    // payload lives in the labels) so dashboards can correlate metric
    // shifts with deploys.
    out.push_str(&format!(
        "# HELP voltsense_build_info Build metadata of the scraped process.\n\
         # TYPE voltsense_build_info gauge\n\
         voltsense_build_info{{version=\"{}\",debug=\"{}\"}} 1\n",
        escape_label_value(env!("CARGO_PKG_VERSION")),
        cfg!(debug_assertions)
    ));

    for (name, value) in &snapshot.counters {
        let help = escape_help(name);
        let name = format!("{}_total", sanitize_name(name));
        out.push_str(&format!(
            "# HELP {name} voltsense counter \"{help}\".\n# TYPE {name} counter\n{name} {value}\n"
        ));
    }
    for (name, value) in &snapshot.gauges {
        let help = escape_help(name);
        let name = sanitize_name(name);
        out.push_str(&format!(
            "# HELP {name} voltsense gauge \"{help}\".\n# TYPE {name} gauge\n{name} {}\n",
            fmt_value(*value)
        ));
    }
    for h in &snapshot.histograms {
        let name = sanitize_name(&h.name);
        let unit = escape_label_value(&h.unit);
        let help = escape_help(&h.name);
        out.push_str(&format!(
            "# HELP {name} voltsense histogram \"{help}\" rendered as a summary.\n# TYPE {name} summary\n"
        ));
        for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
            out.push_str(&format!(
                "{name}{{quantile=\"{q}\",unit=\"{unit}\"}} {}\n",
                fmt_value(v)
            ));
        }
        out.push_str(&format!("{name}_sum {}\n", fmt_value(h.mean * h.count as f64)));
        out.push_str(&format!("{name}_count {}\n", h.count));
        out.push_str(&format!(
            "# HELP {name}_min exact minimum of \"{help}\".\n# TYPE {name}_min gauge\n{name}_min {}\n",
            fmt_value(h.min)
        ));
        out.push_str(&format!(
            "# HELP {name}_max exact maximum of \"{help}\".\n# TYPE {name}_max gauge\n{name}_max {}\n",
            fmt_value(h.max)
        ));
    }
    out
}

/// Map an arbitrary signal name onto the Prometheus metric-name grammar:
/// every byte outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is
/// prefixed with `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape `# HELP` text per the exposition format: backslash and newline
/// must be escaped (quotes pass through unescaped in help text, but ours
/// sit inside quotes we add, so escape them too for readability).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push('\''),
            c => out.push(c),
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be escaped; everything else passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus sample values allow NaN and signed infinities, spelled
/// exactly `NaN`, `+Inf`, `-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}
