//! # voltsense-telemetry
//!
//! Zero-external-dependency observability for the voltsense workspace:
//! a [`Recorder`] trait with a zero-cost no-op default, a thread-safe
//! [`MemoryRecorder`] (RAII hierarchical spans, counters, gauges, log-scale
//! histograms with percentile queries), and exporters for a JSON snapshot,
//! a Chrome trace-event file, and a plain-text summary table.
//!
//! Instrumented code calls the free functions in this module
//! ([`span`], [`counter`], [`gauge`], [`histogram`], [`event`]). When no
//! recorder is active they cost one relaxed atomic load plus one
//! thread-local read — nothing is allocated, formatted, or locked — so
//! instrumentation can stay in hot paths permanently (DESIGN.md §7).
//!
//! Two activation paths:
//! - **Process-global**: set `VOLTSENSE_TELEMETRY` and call
//!   [`init_from_env`] once near the top of `main`. A truthy value
//!   (`1`/`true`/`on`/`yes`) exports to `results/telemetry_<suite>.*`;
//!   any other non-empty value is used as the output path prefix.
//!   The returned [`TelemetryGuard`] writes `<prefix>.json` and
//!   `<prefix>.trace.json` when dropped.
//! - **Thread-scoped**: [`with_scoped`] routes signals from the current
//!   thread to a caller-owned recorder for the duration of a closure.
//!   Tests use this to capture without touching process globals, so
//!   parallel test threads never observe each other's telemetry.

pub mod env;
pub mod export;
pub mod flight;
mod histogram;
pub mod incident;
pub mod json;
pub mod profile;
pub mod prom;
mod recorder;
pub mod serve;
pub mod slo;
pub mod trace;

pub use export::Snapshot;
pub use flight::{FlightRecorder, RingEvent, SamplerStat};
pub use histogram::Histogram;
pub use recorder::{
    Detail, EventRecord, FanoutRecorder, MemoryRecorder, NoopRecorder, Recorder, SpanId,
    SpanRecord,
};

use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<dyn Recorder>> = OnceLock::new();
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static SCOPED: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
    static SCOPED_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Is any recorder active for the current thread? Instrumentation sites can
/// use this to skip computing expensive signal values (e.g. a full objective
/// evaluation) when nobody is listening.
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed) || SCOPED_DEPTH.with(|d| d.get() > 0)
}

/// Does the active recorder (if any) want *expensive* diagnostic signals?
///
/// Instrumentation sites whose signal values cost real compute (a full
/// objective evaluation per solver iteration) must guard on this instead
/// of [`enabled`]: a full-capture [`MemoryRecorder`] answers `true`, the
/// always-on [`FlightRecorder`] answers `false`, so production processes
/// never pay for diagnostics nobody asked for.
#[inline]
pub fn detailed() -> bool {
    current_recorder().is_some_and(|r| r.detail() == Detail::Full)
}

/// The recorder signals from the current thread should go to, if any.
/// Scoped recorders shadow the process-global one.
fn current_recorder() -> Option<Arc<dyn Recorder>> {
    if SCOPED_DEPTH.with(|d| d.get() > 0) {
        if let Some(r) = SCOPED.with(|s| s.borrow().last().cloned()) {
            return Some(r);
        }
    }
    if GLOBAL_ENABLED.load(Ordering::Relaxed) {
        return GLOBAL.get().cloned();
    }
    None
}

/// The innermost [`with_scoped`] recorder active on the current thread,
/// if any. The process-global recorder is *not* returned: it is already
/// visible from every thread. Exists so thread-pool runtimes can
/// re-install the submitting thread's scope on their workers — scoped
/// capture is a thread-local, so without propagation signals emitted from
/// worker threads inside a parallel region would silently bypass it.
pub fn scoped_recorder() -> Option<Arc<dyn Recorder>> {
    if SCOPED_DEPTH.with(|d| d.get() > 0) {
        SCOPED.with(|s| s.borrow().last().cloned())
    } else {
        None
    }
}

/// Install `recorder` as the process-global sink. Fails (returning the
/// recorder back) if one was already installed; the global can be set once
/// per process because instrumented code may cache nothing but the helpers
/// here never cache the pointer, so "set once" is purely a simplicity rule.
pub fn install_global(recorder: Arc<dyn Recorder>) -> Result<(), Arc<dyn Recorder>> {
    GLOBAL.set(recorder)?;
    GLOBAL_ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Route telemetry from the current thread to `recorder` while `f` runs.
/// Nested scopes shadow outer ones; the scope is popped even if `f` panics.
pub fn with_scoped<R>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SCOPED.with(|s| {
                s.borrow_mut().pop();
            });
            SCOPED_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    SCOPED.with(|s| s.borrow_mut().push(recorder));
    SCOPED_DEPTH.with(|d| d.set(d.get() + 1));
    let _pop = Pop;
    f()
}

/// RAII wall-clock span. Created by [`span`]; records the interval (and
/// feeds the span-duration histogram) when dropped. When the continuous
/// profiler is running ([`profile`]), the span also publishes its name on
/// the thread's sampled stack for the duration.
pub struct Span {
    active: Option<(Arc<dyn Recorder>, SpanId)>,
    profiled: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((recorder, id)) = self.active.take() {
            recorder.span_end(id);
        }
        if self.profiled {
            profile::pop_frame();
        }
    }
}

/// Open a span named `name`. Free when telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    let profiled = profile::push_frame(name);
    match current_recorder() {
        Some(recorder) => {
            let id = recorder.span_begin(name);
            Span {
                active: Some((recorder, id)),
                profiled,
            }
        }
        None => Span {
            active: None,
            profiled,
        },
    }
}

/// Add `delta` to the counter `name`. Free when telemetry is disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if let Some(recorder) = current_recorder() {
        recorder.counter_add(name, delta);
    }
}

/// Set the gauge `name`. Free when telemetry is disabled.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if let Some(recorder) = current_recorder() {
        recorder.gauge_set(name, value);
    }
}

/// Record `value` into the histogram `name`. Free when telemetry is disabled.
#[inline]
pub fn histogram(name: &'static str, value: f64, unit: &'static str) {
    if let Some(recorder) = current_recorder() {
        recorder.histogram_record(name, value, unit);
    }
}

/// Record a timestamped event with numeric fields. Free when telemetry is
/// disabled; compute expensive field values behind an [`enabled`] check.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, f64)]) {
    if let Some(recorder) = current_recorder() {
        recorder.event(name, fields);
    }
}

/// Handle returned by [`init_from_env`]. Exports the capture when dropped:
/// writes `<prefix>.json` (snapshot) and `<prefix>.trace.json` (Chrome
/// trace) and prints the text summary to stderr.
pub struct TelemetryGuard {
    recorder: Arc<MemoryRecorder>,
    suite: String,
    prefix: PathBuf,
}

impl TelemetryGuard {
    /// Path the JSON snapshot will be written to.
    pub fn snapshot_path(&self) -> PathBuf {
        with_extension(&self.prefix, ".json")
    }

    /// Path the Chrome trace will be written to.
    pub fn trace_path(&self) -> PathBuf {
        with_extension(&self.prefix, ".trace.json")
    }

    /// The capture so far (mainly for tests).
    pub fn snapshot(&self) -> Snapshot {
        self.recorder.snapshot(&self.suite)
    }
}

fn with_extension(prefix: &PathBuf, suffix: &str) -> PathBuf {
    let mut s = prefix.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        // Stop accepting signals before exporting so the files are final.
        GLOBAL_ENABLED.store(false, Ordering::Relaxed);
        let snapshot = self.recorder.snapshot(&self.suite);
        if let Some(parent) = self.prefix.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        let snapshot_path = self.snapshot_path();
        let trace_path = self.trace_path();
        if let Err(e) = std::fs::write(&snapshot_path, snapshot.to_json()) {
            eprintln!("[telemetry] failed to write {}: {e}", snapshot_path.display());
        }
        if let Err(e) = std::fs::write(&trace_path, snapshot.to_chrome_trace()) {
            eprintln!("[telemetry] failed to write {}: {e}", trace_path.display());
        }
        eprintln!(
            "[telemetry] wrote {} and {}",
            snapshot_path.display(),
            trace_path.display()
        );
        eprint!("{}", snapshot.to_summary_table());
    }
}

/// Activate telemetry for this process if `VOLTSENSE_TELEMETRY` is set.
///
/// - unset / falsy (`0`/`false`/`off`/`no`): returns `None`, telemetry
///   stays a no-op;
/// - truthy (`1`/`true`/`on`/`yes`): exports to
///   `<results dir>/telemetry_<suite>.{json,trace.json}`;
/// - anything else: treated as an output path prefix.
///
/// Call once near the top of `main` and keep the guard alive until the
/// instrumented work is done:
///
/// ```no_run
/// let _telemetry = voltsense_telemetry::init_from_env("my_bench");
/// ```
pub fn init_from_env(suite: &str) -> Option<TelemetryGuard> {
    let guard = export_guard_from_env(suite)?;
    if install_global(guard.recorder.clone()).is_err() {
        eprintln!("[telemetry] a global recorder is already installed; VOLTSENSE_TELEMETRY ignored");
        return None;
    }
    Some(guard)
}

/// The `VOLTSENSE_TELEMETRY` contract of [`init_from_env`] minus the
/// global installation: build the recorder + export guard and let the
/// caller decide how signals reach it (directly, or via a fanout).
fn export_guard_from_env(suite: &str) -> Option<TelemetryGuard> {
    let raw = env::value("VOLTSENSE_TELEMETRY")?;
    if env::is_falsy(&raw) {
        return None;
    }
    let prefix = if env::is_truthy(&raw) {
        env::results_dir().join(format!("telemetry_{suite}"))
    } else {
        PathBuf::from(raw)
    };
    Some(TelemetryGuard {
        recorder: Arc::new(MemoryRecorder::new()),
        suite: suite.to_string(),
        prefix,
    })
}

/// Handle returned by [`init_always_on`]: owns the flight recorder, the
/// optional full-detail export capture, and the optional live endpoint.
pub struct ObservabilityGuard {
    flight: Arc<FlightRecorder>,
    /// Declared before `export` so the endpoint stops before the export
    /// capture is finalized on drop.
    server: Option<serve::Server>,
    export: Option<TelemetryGuard>,
    /// Declared after `server` so the final profile stays scrapeable
    /// through a linger; the sampler thread stops on guard drop.
    sampler: Option<profile::SamplerGuard>,
}

impl ObservabilityGuard {
    /// The always-on flight recorder.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Bound address of the live endpoint, when one was requested.
    pub fn server_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(serve::Server::addr)
    }

    /// Whether a `VOLTSENSE_TELEMETRY` export capture is also active.
    pub fn exporting(&self) -> bool {
        self.export.is_some()
    }

    /// The continuous profiler, when `VOLTSENSE_PROFILE` started one.
    pub fn profiler(&self) -> Option<&Arc<profile::Profiler>> {
        self.sampler.as_ref().map(profile::SamplerGuard::profiler)
    }

    /// Keep the process (and its endpoint) alive for
    /// `VOLTSENSE_TELEMETRY_LINGER` seconds so an external scraper can
    /// collect final metrics. Returns immediately when the knob is unset
    /// or no endpoint is running; ends early once the file named by
    /// `VOLTSENSE_TELEMETRY_STOP` appears (CI creates it after scraping).
    pub fn linger_from_env(&self) {
        let Some(secs) = env::parse::<f64>("VOLTSENSE_TELEMETRY_LINGER") else {
            return;
        };
        if self.server.is_none() || !(secs > 0.0) {
            return;
        }
        let stop_file = env::value("VOLTSENSE_TELEMETRY_STOP").map(PathBuf::from);
        eprintln!("[telemetry] lingering up to {secs}s for scrapes");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(secs);
        while std::time::Instant::now() < deadline {
            if stop_file.as_ref().is_some_and(|p| p.exists()) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    }
}

/// Always-on observability for long-running processes (DESIGN.md §7):
///
/// 1. registers a [`FlightRecorder`] (capacity `VOLTSENSE_FLIGHT_CAPACITY`,
///    default 4096 events) as the process flight recorder — incident
///    snapshots ([`incident::report`]) freeze it on demand;
/// 2. honours `VOLTSENSE_TELEMETRY` exactly like [`init_from_env`]; when
///    set, signals fan out to *both* the export capture and the flight
///    recorder, and the export still lands on guard drop;
/// 3. honours `VOLTSENSE_TELEMETRY_ADDR` (`host:port` or bare port, port 0
///    for OS-assigned): starts [`serve::serve`] with `GET /metrics`
///    (Prometheus) and `GET /snapshot` (JSON) rendered live from the
///    flight recorder;
/// 4. honours `VOLTSENSE_PROFILE` / `VOLTSENSE_PROFILE_HZ`: starts the
///    continuous span-stack sampler ([`profile::start_from_env`]), whose
///    folded profile is served at `GET /profile` and embedded in
///    incident snapshots.
///
/// Unlike diagnostic capture, this needs no environment variable: with
/// nothing set you still get the bounded-memory recorder and incident
/// files, at [`Detail::Sampled`] cost.
pub fn init_always_on(suite: &str) -> ObservabilityGuard {
    let flight = Arc::new(FlightRecorder::from_env());
    flight::install(flight.clone());
    let export = export_guard_from_env(suite);
    let recorder: Arc<dyn Recorder> = match &export {
        Some(guard) => Arc::new(recorder::FanoutRecorder::new(vec![
            guard.recorder.clone() as Arc<dyn Recorder>,
            flight.clone() as Arc<dyn Recorder>,
        ])),
        None => flight.clone(),
    };
    if install_global(recorder).is_err() {
        eprintln!(
            "[telemetry] a global recorder is already installed; \
             the always-on flight recorder will receive no signals"
        );
    }
    let server = env::value("VOLTSENSE_TELEMETRY_ADDR").and_then(|addr| {
        let suite = suite.to_string();
        let source_flight = flight.clone();
        let source: serve::SnapshotSource = Arc::new(move || source_flight.snapshot(&suite));
        match serve::serve(&addr, source) {
            Ok(server) => {
                eprintln!("[telemetry] serving /metrics and /snapshot on http://{}", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("[telemetry] cannot serve on {addr}: {e}");
                None
            }
        }
    });
    let sampler = profile::start_from_env();
    ObservabilityGuard {
        flight,
        export,
        server,
        sampler,
    }
}
