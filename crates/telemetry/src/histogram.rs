//! Log-scale histogram with percentile queries.
//!
//! Values are binned into logarithmic buckets, 8 sub-buckets per octave
//! (bucket index = `floor(log2(v) * 8)`), which bounds the relative error of
//! a percentile estimate by the half-width of one bucket: `2^(1/16) - 1`,
//! about 4.4%. Exact `min`, `max`, `sum`, and `count` are tracked alongside
//! the buckets so the extremes and the mean are exact. Non-positive and
//! non-finite values are counted in a dedicated underflow bucket that sorts
//! below every log bucket.

use std::collections::BTreeMap;

/// Sub-buckets per octave (power of two). 8 gives ~4.4% relative error.
const SUBBUCKETS_PER_OCTAVE: f64 = 8.0;

/// A mergeable log-scale histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Values `<= 0` or non-finite; they sort below every log bucket.
    underflow: u64,
    buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.count += 1;
        self.sum += value;
        if value.is_finite() && value > 0.0 {
            let idx = (value.log2() * SUBBUCKETS_PER_OCTAVE).floor() as i32;
            *self.buckets.entry(idx).or_insert(0) += 1;
        } else {
            self.underflow += 1;
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.underflow += other.underflow;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile for `q` in `[0, 1]`.
    ///
    /// Returns the representative value (geometric bucket center) of the
    /// bucket containing the `ceil(q * count)`-th smallest sample, clamped to
    /// the exact `[min, max]` range so the extreme quantiles are exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are tracked exactly.
        if target == 1 {
            return self.min;
        }
        if target == self.count {
            return self.max;
        }
        let mut cumulative = self.underflow;
        if cumulative >= target {
            // The target rank falls among non-positive/non-finite values;
            // the best point estimate we have is the exact minimum.
            return self.min;
        }
        for (&idx, &n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                let center = ((idx as f64 + 0.5) / SUBBUCKETS_PER_OCTAVE).exp2();
                return center.clamp(self.min.max(0.0), self.max);
            }
        }
        self.max
    }
}
