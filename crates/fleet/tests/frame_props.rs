//! Property suite for the frame decoder: whatever bytes arrive —
//! mutated, truncated, reordered, or outright adversarial — the decoder
//! returns a typed error or a valid frame. It never panics and never
//! lets an attacker-controlled length prefix drive allocation.

use voltsense_fleet::frame::{
    fnv1a32, Frame, FrameDecoder, FrameError, DEFAULT_MAX_FRAME, HEADER_LEN,
};
use voltsense_testkit::{choice, forall, u64_range, usize_range, vec_f64};

/// Build one frame of every kind from a handful of scalars, so `forall`
/// shrinks over frame content while `choice` shrinks across kinds.
fn frame_from(tag: &str, a: u64, b: u64, values: &[f64]) -> Frame {
    match tag {
        "hello" => Frame::Hello { tenant: a, chip: b },
        "hello_ack" => Frame::HelloAck { chip: a, resumed: b & 1 == 1, alarmed: b & 2 == 2 },
        // Odd `b` carries a trace ID (the v2 wire kind), even stays v1 —
        // the mutation/truncation/chunking properties then cover both
        // encodings without a dedicated tag.
        "readings" => Frame::Readings {
            chip: a,
            seq: b,
            trace: (b & 1 == 1).then(|| a ^ b.rotate_left(31) | 1),
            values: values.to_vec(),
        },
        "decision" => Frame::Decision {
            chip: a,
            seq: b,
            flags: (b & 7) as u8,
            predicted_min: values.first().copied().unwrap_or(0.9),
        },
        "busy" => Frame::Busy { chip: a, retry_after_ms: (b & 0xFFFF) as u32 },
        "error" => Frame::Error {
            code: (a & 0xFF) as u8,
            chip: b,
            message: format!("detail {a}"),
        },
        other => panic!("unknown tag {other}"),
    }
}

const TAGS: [&str; 6] = ["hello", "hello_ack", "readings", "decision", "busy", "error"];

#[test]
fn any_frame_roundtrips_through_any_chunking() {
    forall!(cases = 128, (
        tag in choice(TAGS.to_vec()),
        a in u64_range(0, u64::MAX),
        b in u64_range(0, u64::MAX),
        values in vec_f64(9, 0.0, 1.5),
        chunk in usize_range(1, 64),
    ) => {
        let frame = frame_from(tag, a, b, &values);
        let wire = frame.encode();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.push(piece);
            while let Some(f) = dec.next().expect("valid wire bytes decode") {
                out.push(f);
            }
        }
        assert_eq!(out, vec![frame], "roundtrip through {chunk}-byte chunks");
        assert_eq!(dec.buffered(), 0, "nothing left over");
    });
}

#[test]
fn any_single_byte_mutation_yields_error_or_valid_frame_never_panic() {
    forall!(cases = 256, (
        tag in choice(TAGS.to_vec()),
        a in u64_range(0, u64::MAX),
        b in u64_range(0, 1 << 20),
        values in vec_f64(5, 0.0, 1.5),
        at_pick in u64_range(0, 1 << 32),
        flip_pick in u64_range(1, 256),
    ) => {
        let wire = frame_from(tag, a, b, &values).encode();
        let mut bad = wire.clone();
        let at = (at_pick as usize) % bad.len();
        bad[at] ^= flip_pick as u8;
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&bad);
        // Drain until quiescent: every outcome is a typed error, a valid
        // frame, or "need more bytes" — reaching here without a panic IS
        // the property.
        loop {
            match dec.next() {
                Ok(Some(_)) | Ok(None) => break,
                Err(_) => break,
            }
        }
        // The buffer never exceeds what was pushed: decoding allocates
        // from received bytes, not from the (possibly lying) prefix.
        assert!(dec.buffered() <= bad.len());
    });
}

#[test]
fn any_truncation_is_need_more_bytes_or_a_typed_error() {
    forall!(cases = 128, (
        tag in choice(TAGS.to_vec()),
        a in u64_range(0, u64::MAX),
        b in u64_range(0, 1 << 20),
        values in vec_f64(7, 0.0, 1.5),
        cut_pick in u64_range(0, 1 << 32),
    ) => {
        let wire = frame_from(tag, a, b, &values).encode();
        let cut = (cut_pick as usize) % wire.len();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire[..cut]);
        match dec.next() {
            Ok(None) => {
                // Correct: a strict prefix of one frame is never complete.
                // Feeding the rest must produce exactly the original.
                dec.push(&wire[cut..]);
                assert!(dec.next().expect("completed frame decodes").is_some());
            }
            Ok(Some(f)) => panic!("prefix of one frame decoded to {f:?}"),
            Err(_) => {} // typed rejection is acceptable, panics are not
        }
    });
}

#[test]
fn adversarial_length_prefixes_never_drive_allocation() {
    // Tiny cap so "oversized" is easy to hit; the decoder must reject
    // from the header alone, before buffering any body.
    const CAP: usize = 256;
    forall!(cases = 256, (
        claimed in u64_range(0, 1 << 32),
        checksum in u64_range(0, 1 << 32),
        junk in vec_f64(16, -1.0, 1.0),
    ) => {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(claimed as u32).to_le_bytes());
        wire.extend_from_slice(&(checksum as u32).to_le_bytes());
        for v in &junk {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        let mut dec = FrameDecoder::new(CAP);
        dec.push(&wire);
        match dec.next() {
            Err(FrameError::TooLarge { len, max }) => {
                assert!(len > CAP);
                assert_eq!(max, CAP);
                // Poisoned decoders drop everything: bounded memory even
                // if the peer keeps streaming garbage.
                dec.push(&[0xAB; 1024]);
                assert_eq!(dec.buffered(), 0);
            }
            Err(_) => {}
            Ok(None) => assert!(dec.buffered() <= wire.len()),
            Ok(Some(_)) => {
                // Astronomically unlikely (random checksum must match),
                // but it would still be a *valid* frame, which satisfies
                // the property.
            }
        }
        assert!(
            dec.buffered() <= HEADER_LEN + CAP + wire.len(),
            "buffer bounded by cap + one read, not by the claimed length"
        );
    });
}

#[test]
fn interleaved_garbage_after_valid_frames_poisons_cleanly() {
    forall!(cases = 64, (
        n_good in usize_range(1, 8),
        garbage in vec_f64(8, -1.0, 1.0),
    ) => {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        for i in 0..n_good {
            dec.push(&Frame::Busy { chip: i as u64, retry_after_ms: 1 }.encode());
        }
        // A garbage header whose checksum can't match its body.
        let mut tail = 16u32.to_le_bytes().to_vec();
        tail.extend_from_slice(&fnv1a32(b"not the body").to_le_bytes());
        for v in &garbage {
            tail.extend_from_slice(&v.to_le_bytes());
        }
        dec.push(&tail);
        // Every good frame decodes first; then the typed poison.
        for _ in 0..n_good {
            assert!(matches!(dec.next(), Ok(Some(Frame::Busy { .. }))));
        }
        assert!(dec.next().is_err(), "garbage tail must poison");
        assert!(dec.next().is_err(), "poison is permanent");
    });
}
