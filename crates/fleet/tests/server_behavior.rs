//! End-to-end server behavior over real sockets: the happy path, the
//! hostile paths (slow-loris, oversize, overload, panics), and the
//! durability paths (eviction, crash + restart from checkpoints).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use voltsense_core::{CoreError, EmergencyMonitor, MonitorDecision, VoltageMapModel};
use voltsense_fleet::chaos::ChaosConfig;
use voltsense_fleet::client::{FleetClient, RetryPolicy};
use voltsense_fleet::frame::{decision_flags, error_code, Frame, FrameDecoder, DEFAULT_MAX_FRAME};
use voltsense_fleet::session::{ChipMonitor, LadderConfig, SessionKey};
use voltsense_fleet::server::{FleetConfig, FleetServer, SessionFactory};
use voltsense_linalg::Matrix;

/// Identity monitor: one sensor, one critical node, prediction == the
/// reading. `release_margin` of 10 V makes the latch effectively
/// permanent — no realistic reading releases it.
fn identity_monitor() -> EmergencyMonitor {
    let model = VoltageMapModel::from_parts(
        vec![0],
        1,
        Matrix::from_rows(&[&[1.0]]).unwrap(),
        vec![0.0],
        0.001,
    )
    .unwrap();
    EmergencyMonitor::new(model, 0.8, 2, 10.0).unwrap()
}

fn identity_factory() -> SessionFactory {
    Arc::new(|_key| Ok(Box::new(identity_monitor()) as Box<dyn ChipMonitor>))
}

fn quiet_client(server: &FleetServer, tenant: u64) -> FleetClient {
    FleetClient::new(server.addr(), tenant, RetryPolicy::default(), ChaosConfig::quiet(tenant))
}

fn fast_cfg() -> FleetConfig {
    FleetConfig { tick: Duration::from_millis(2), ..FleetConfig::default() }
}

#[test]
fn alarm_rises_after_persistence_and_latches() {
    let mut server = FleetServer::start(fast_cfg(), identity_factory()).unwrap();
    let mut client = quiet_client(&server, 1);
    let hello = client.hello(7).unwrap();
    assert!(!hello.resumed);
    assert!(!hello.alarmed);

    // First droop sample: below threshold but persistence = 2, no alarm.
    client.send_readings(7, 0, &[0.75]).unwrap();
    let d = client
        .wait_for(Duration::from_secs(5), |f| matches!(f, Frame::Decision { seq: 0, .. }))
        .unwrap();
    match d {
        Frame::Decision { flags, predicted_min, .. } => {
            assert_eq!(flags & decision_flags::ALARM, 0);
            assert_eq!(predicted_min.to_bits(), 0.75f64.to_bits(), "identity model");
        }
        _ => unreachable!(),
    }
    // Second consecutive droop: rising edge.
    client.send_readings(7, 1, &[0.74]).unwrap();
    let d = client
        .wait_for(Duration::from_secs(5), |f| matches!(f, Frame::Decision { seq: 1, .. }))
        .unwrap();
    match d {
        Frame::Decision { flags, .. } => {
            assert_ne!(flags & decision_flags::ALARM, 0);
            assert_ne!(flags & decision_flags::RISING, 0);
        }
        _ => unreachable!(),
    }
    // Healthy readings do not release (hysteresis margin is huge).
    client.send_readings(7, 2, &[0.99]).unwrap();
    let d = client
        .wait_for(Duration::from_secs(5), |f| matches!(f, Frame::Decision { seq: 2, .. }))
        .unwrap();
    match d {
        Frame::Decision { flags, .. } => assert_ne!(flags & decision_flags::ALARM, 0),
        _ => unreachable!(),
    }
    assert_eq!(server.session_alarmed(SessionKey { tenant: 1, chip: 7 }), Some(true));
    assert_eq!(server.stats().frames, 4);
    server.stop();
}

#[test]
fn slow_loris_partial_frame_is_closed_and_server_stays_live() {
    let cfg = FleetConfig {
        read_deadline: Duration::from_millis(150),
        ..fast_cfg()
    };
    let mut server = FleetServer::start(cfg, identity_factory()).unwrap();
    // A client that sends half a header and stalls forever.
    use std::io::{Read, Write};
    let mut loris = std::net::TcpStream::connect(server.addr()).unwrap();
    loris.write_all(&[0x04, 0x00]).unwrap();
    loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut sink = Vec::new();
    // The server must cut the connection (EOF) instead of waiting.
    let closed = loris.read_to_end(&mut sink).map(|n| n == 0).unwrap_or(true);
    assert!(closed, "stalled connection must be closed");
    // And an honest client still gets service.
    let mut client = quiet_client(&server, 2);
    assert!(!client.hello(1).unwrap().resumed);
    server.stop();
}

#[test]
fn oversized_length_prefix_gets_a_typed_error_then_close() {
    let mut server = FleetServer::start(fast_cfg(), identity_factory()).unwrap();
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut wire = ((DEFAULT_MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 4]);
    stream.write_all(&wire).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut bytes = Vec::new();
    let _ = stream.read_to_end(&mut bytes); // server answers, then closes
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
    dec.push(&bytes);
    match dec.next().unwrap() {
        Some(Frame::Error { code, .. }) => assert_eq!(code, error_code::PROTOCOL),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_eq!(server.stats().decode_errors, 1);
    server.stop();
}

/// Monitor that takes its time — lets tests force queue buildup.
struct SlowMonitor {
    inner: EmergencyMonitor,
    delay: Duration,
}

impl ChipMonitor for SlowMonitor {
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        std::thread::sleep(self.delay);
        self.inner.observe(readings)
    }
    fn is_alarmed(&self) -> bool {
        self.inner.is_alarmed()
    }
    fn checkpoint_json(&self, _key: SessionKey) -> Option<String> {
        None
    }
}

#[test]
fn overload_walks_the_ladder_shed_then_reject_then_recover() {
    let cfg = FleetConfig {
        ladder: LadderConfig { queue_capacity: 2, shed_streak_threshold: 2, busy_retry_ms: 30 },
        drain_budget: 1,
        tick: Duration::from_millis(20),
        ..FleetConfig::default()
    };
    let factory: SessionFactory = Arc::new(|_key| {
        Ok(Box::new(SlowMonitor { inner: identity_monitor(), delay: Duration::from_millis(10) })
            as Box<dyn ChipMonitor>)
    });
    let mut server = FleetServer::start(cfg, factory).unwrap();
    let mut client = quiet_client(&server, 1);
    client.hello(1).unwrap();
    // Flood without reading responses: sends are instant, each observe
    // takes 10ms, so the 2-deep queue must overflow almost immediately.
    for seq in 0..40 {
        client.send_readings(1, seq, &[0.95]).unwrap();
    }
    let mut saw_busy = false;
    // Let the server catch up, collecting stragglers.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        for f in client.drain_responses(Duration::from_millis(20)) {
            saw_busy |= matches!(f, Frame::Busy { retry_after_ms: 30, .. });
        }
        let s = server.stats();
        if s.rejected > 0 && s.recoveries > 0 && saw_busy {
            break;
        }
    }
    let stats = server.stats();
    assert!(stats.shed > 0, "drop-oldest must have engaged: {stats:?}");
    assert!(stats.rejected > 0, "sustained overload must reject: {stats:?}");
    assert!(saw_busy, "client must have seen a Busy backoff hint");
    // After the flood the session recovers and serves again. The tail of
    // the flood can still be in flight (the reader thread may lag the
    // sender under load), so a probe can race a re-entered Rejecting
    // state and draw a Busy — retry like a client that honors the hint.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut probe_seq = 1000u64;
    let mut served_again = false;
    while !served_again {
        assert!(
            std::time::Instant::now() < deadline,
            "session must accept again after recovery: {:?}",
            server.stats()
        );
        client.send_readings(1, probe_seq, &[0.95]).unwrap();
        let want = probe_seq;
        served_again = client
            .wait_for(Duration::from_millis(500), |f| {
                matches!(f, Frame::Decision { seq: s, .. } if *s == want)
            })
            .is_ok();
        probe_seq += 1;
        std::thread::sleep(Duration::from_millis(30)); // the Busy hint
    }
    assert!(server.stats().recoveries > 0, "{:?}", server.stats());
    server.stop();
}

/// Monitor that panics on command — drives the quarantine path.
struct PanickingMonitor;

impl ChipMonitor for PanickingMonitor {
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        if readings.first().copied().unwrap_or(1.0) < 0.5 {
            panic!("injected monitor panic");
        }
        Ok(MonitorDecision {
            predicted_min: readings[0],
            worst_block: 0,
            alarm: false,
            rising_edge: false,
            health: None,
        })
    }
    fn is_alarmed(&self) -> bool {
        false
    }
    fn checkpoint_json(&self, _key: SessionKey) -> Option<String> {
        None
    }
}

#[test]
fn panicking_session_is_quarantined_and_its_neighbors_survive() {
    let factory: SessionFactory = Arc::new(|key| {
        if key.chip == 666 {
            Ok(Box::new(PanickingMonitor) as Box<dyn ChipMonitor>)
        } else {
            Ok(Box::new(identity_monitor()) as Box<dyn ChipMonitor>)
        }
    });
    let mut server = FleetServer::start(fast_cfg(), factory).unwrap();
    let mut client = quiet_client(&server, 3);
    client.hello(666).unwrap();
    client.hello(7).unwrap();
    // Trip the panic.
    client.send_readings(666, 0, &[0.1]).unwrap();
    let err = client.wait_for(Duration::from_secs(5), |f| matches!(f, Frame::Error { .. }));
    match err {
        Ok(Frame::Error { code, chip, .. }) => {
            assert_eq!(code, error_code::QUARANTINED);
            assert_eq!(chip, 666);
        }
        other => panic!("expected quarantine error, got {other:?}"),
    }
    assert_eq!(server.stats().quarantined, 1);
    // The quarantined session answers with its terminal error…
    client.send_readings(666, 1, &[0.9]).unwrap();
    let again = client.wait_for(Duration::from_secs(5), |f| {
        matches!(f, Frame::Error { code, .. } if *code == error_code::QUARANTINED)
    });
    assert!(again.is_ok(), "quarantine is terminal");
    // …while the sibling session on the same shard pool keeps deciding.
    client.send_readings(7, 0, &[0.95]).unwrap();
    let d = client.wait_for(Duration::from_secs(5), |f| matches!(f, Frame::Decision { .. }));
    assert!(d.is_ok(), "neighbor session must be unaffected");
    server.stop();
}

#[test]
fn idle_sessions_are_evicted_with_a_checkpoint_and_resume_alarmed() {
    let dir = std::env::temp_dir().join(format!("fleet_evict_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FleetConfig {
        idle_timeout: Duration::from_millis(120),
        tick: Duration::from_millis(5),
        checkpoint_dir: Some(dir.clone()),
        ..FleetConfig::default()
    };
    let mut server = FleetServer::start(cfg, identity_factory()).unwrap();
    let mut client = quiet_client(&server, 4);
    client.hello(1).unwrap();
    // Latch the alarm, then go idle.
    for seq in 0..2 {
        client.send_readings(1, seq, &[0.7]).unwrap();
    }
    client.wait_for(Duration::from_secs(5), |f| {
        matches!(f, Frame::Decision { seq: 1, flags, .. } if flags & decision_flags::ALARM != 0)
    }).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().evicted == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert!(stats.evicted >= 1, "idle session must evict: {stats:?}");
    assert_eq!(stats.sessions, 0, "no live sessions after eviction");
    // Re-hello: session comes back from the eviction checkpoint, latched.
    let hello = client.hello(1).unwrap();
    assert!(hello.resumed, "must resume from checkpoint, not refit");
    assert!(hello.alarmed, "latched alarm survives eviction");
    assert!(server.stats().restores >= 1);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn abort_then_restart_resumes_every_session_without_refit() {
    let dir = std::env::temp_dir().join(format!("fleet_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FleetConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_interval: 1, // checkpoint every sample: crash loses nothing
        tick: Duration::from_millis(2),
        ..FleetConfig::default()
    };
    let mut server = FleetServer::start(cfg.clone(), identity_factory()).unwrap();
    let mut client = quiet_client(&server, 5);
    for chip in [1u64, 2, 3] {
        client.hello(chip).unwrap();
    }
    // Alarm chip 2; keep 1 and 3 healthy.
    for seq in 0..2 {
        client.send_readings(1, seq, &[0.95]).unwrap();
        client.send_readings(2, seq, &[0.70]).unwrap();
        client.send_readings(3, seq, &[0.93]).unwrap();
    }
    client.wait_for(Duration::from_secs(5), |f| {
        matches!(f, Frame::Decision { chip: 2, seq: 1, flags, .. }
            if flags & decision_flags::ALARM != 0)
    }).unwrap();
    // Wait until the dispatcher has persisted all three sessions.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().checkpoints < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.stats().checkpoints >= 3, "{:?}", server.stats());
    // kill -9: no graceful flush.
    server.abort();

    // Restart on the same dir with a factory that must never run.
    let refits = Arc::new(AtomicUsize::new(0));
    let counting = refits.clone();
    let factory: SessionFactory = Arc::new(move |_key| {
        counting.fetch_add(1, Ordering::SeqCst);
        Err("refit is forbidden during recovery".into())
    });
    let restart_cfg = FleetConfig { addr: "127.0.0.1:0".into(), ..cfg };
    let mut server2 = FleetServer::start(restart_cfg, factory).unwrap();
    let mut client2 = FleetClient::new(
        server2.addr(), 5, RetryPolicy::default(), ChaosConfig::quiet(5),
    );
    for chip in [1u64, 2, 3] {
        let hello = client2.hello(chip).unwrap();
        assert!(hello.resumed, "chip {chip} must resume from checkpoint");
        assert_eq!(hello.alarmed, chip == 2, "alarm state per chip survives the crash");
    }
    assert_eq!(refits.load(Ordering::SeqCst), 0, "no session may be refit");
    assert_eq!(server2.stats().restores, 3);
    // The restored monitor keeps monitoring: chip 2 stays latched.
    client2.send_readings(2, 100, &[0.99]).unwrap();
    let d = client2.wait_for(Duration::from_secs(5), |f| {
        matches!(f, Frame::Decision { chip: 2, seq: 100, .. })
    }).unwrap();
    match d {
        Frame::Decision { flags, .. } => assert_ne!(flags & decision_flags::ALARM, 0),
        _ => unreachable!(),
    }
    server2.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
