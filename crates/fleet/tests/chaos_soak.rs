//! Seeded chaos soaks pinning the three headline properties: no chaos
//! schedule (a) crashes the server, (b) corrupts another tenant's
//! session, or (c) de-asserts a latched alarm. Every run is replayable
//! from its seed (`TESTKIT_SEED` replays a failing case).
//!
//! The scale here is CI-sized; `fleet_soak` (the bench bin) runs the
//! acceptance-scale version (≥ 64 sessions, ≥ 10k frames).

use std::sync::Arc;
use std::time::Duration;

use voltsense_core::{EmergencyMonitor, VoltageMapModel};
use voltsense_fleet::chaos::ChaosConfig;
use voltsense_fleet::client::{FleetClient, RetryPolicy};
use voltsense_fleet::frame::{decision_flags, Frame};
use voltsense_fleet::server::{FleetConfig, FleetServer, SessionFactory};
use voltsense_fleet::session::{ChipMonitor, SessionKey};
use voltsense_linalg::Matrix;
use voltsense_testkit::{forall, u64_range};
use voltsense_workload::GaussianRng;

/// Identity monitor: prediction == reading, persistence 2, latch
/// effectively permanent (10 V release margin).
fn identity_monitor() -> EmergencyMonitor {
    let model = VoltageMapModel::from_parts(
        vec![0],
        1,
        Matrix::from_rows(&[&[1.0]]).unwrap(),
        vec![0.0],
        0.001,
    )
    .unwrap();
    EmergencyMonitor::new(model, 0.8, 2, 10.0).unwrap()
}

fn identity_factory() -> SessionFactory {
    Arc::new(|_key| Ok(Box::new(identity_monitor()) as Box<dyn ChipMonitor>))
}

fn soak_server() -> FleetServer {
    let cfg = FleetConfig { tick: Duration::from_millis(2), ..FleetConfig::default() };
    FleetServer::start(cfg, identity_factory()).expect("bind soak server")
}

const CONTROL_TENANT: u64 = 100;
const CHAOS_TENANTS: [u64; 3] = [1, 2, 3];
const CHIPS_PER_TENANT: u64 = 3;
const DROOP_CHIP: u64 = 0; // chip 0 of every chaos tenant gets the droop window

#[test]
fn no_chaos_schedule_crashes_crosses_tenants_or_clears_a_latch() {
    forall!(cases = 3, (seed in u64_range(1, 1 << 31)) => {
        let mut server = soak_server();

        // --- chaos tenants: hostile transports, droop on chip 0 -------
        let mut chaos_clients: Vec<FleetClient> = CHAOS_TENANTS
            .iter()
            .map(|&tenant| {
                let mut client = FleetClient::new(
                    server.addr(),
                    tenant,
                    RetryPolicy::default(),
                    ChaosConfig::moderate(seed ^ (tenant << 8)),
                );
                for chip in 0..CHIPS_PER_TENANT {
                    client.hello(chip).expect("handshake retries through chaos");
                }
                client
            })
            .collect();
        let mut rng = GaussianRng::seed_from_u64(seed);
        for round in 0..40u64 {
            for client in &mut chaos_clients {
                for chip in 0..CHIPS_PER_TENANT {
                    // Healthy band, occasionally dipping near (but above)
                    // the 0.8 threshold so only the droop window alarms.
                    let v = 0.9 + 0.08 * rng.uniform();
                    client.send_readings(chip, round, &[v]).expect("send survives chaos");
                }
                let _ = client.drain_responses(Duration::from_millis(1));
            }
        }
        // The droop window: 8 consecutive sub-threshold readings on chip
        // 0 of each chaos tenant — enough that persistence-2 alarms even
        // if chaos eats a few frames.
        for round in 40..48u64 {
            for client in &mut chaos_clients {
                client.send_readings(DROOP_CHIP, round, &[0.70]).expect("droop send");
            }
        }
        // Wait until every chaos tenant's droop chip is latched server-side.
        for &tenant in &CHAOS_TENANTS {
            let key = SessionKey { tenant, chip: DROOP_CHIP };
            let deadline = std::time::Instant::now() + Duration::from_secs(20);
            while server.session_alarmed(key) != Some(true) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "tenant {tenant} droop chip never alarmed (seed {seed})"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        // --- property (c): a latched alarm survives disconnect+reconnect
        for client in &mut chaos_clients {
            client.disconnect();
            let hello = client.hello(DROOP_CHIP).expect("reconnect handshake");
            assert!(hello.resumed, "mid-stream reconnect resumes, not refits");
            assert!(hello.alarmed, "latched alarm survives the disconnect");
        }
        // And healthy readings after reconnect still cannot release it.
        for (i, client) in chaos_clients.iter_mut().enumerate() {
            client.send_readings(DROOP_CHIP, 1000 + i as u64, &[0.99]).expect("post-latch send");
        }
        for &tenant in &CHAOS_TENANTS {
            let key = SessionKey { tenant, chip: DROOP_CHIP };
            assert_eq!(server.session_alarmed(key), Some(true), "latch must hold");
        }

        // --- property (b): the control tenant, sharing the server with
        // all that chaos, sees decisions bit-identical to an offline
        // monitor fed the same readings — zero cross-tenant bleed.
        let mut control = FleetClient::new(
            server.addr(),
            CONTROL_TENANT,
            RetryPolicy::default(),
            ChaosConfig::quiet(seed),
        );
        let hello = control.hello(0).expect("control handshake");
        assert!(!hello.alarmed, "fresh control session starts clean");
        let mut mirror = identity_monitor();
        let mut control_rng = GaussianRng::seed_from_u64(seed ^ 0xC0117501);
        for seq in 0..30u64 {
            let v = 0.78 + 0.3 * control_rng.uniform();
            control.send_readings(0, seq, &[v]).expect("control send");
            let got = control
                .wait_for(Duration::from_secs(10), |f| {
                    matches!(f, Frame::Decision { seq: s, .. } if *s == seq)
                })
                .expect("control decision arrives");
            let want = mirror.observe(&[v]).expect("offline mirror");
            match got {
                Frame::Decision { flags, predicted_min, .. } => {
                    assert_eq!(
                        predicted_min.to_bits(),
                        want.predicted_min.to_bits(),
                        "control prediction must be bit-identical to offline (seq {seq})"
                    );
                    assert_eq!(flags & decision_flags::ALARM != 0, want.alarm);
                    assert_eq!(flags & decision_flags::RISING != 0, want.rising_edge);
                }
                _ => unreachable!(),
            }
        }

        // --- property (a): nothing crashed. Every session is live (none
        // quarantined), the server still answers, and the only alarms in
        // the fleet are the droop chips we droop'ed.
        let stats = server.stats();
        assert_eq!(stats.quarantined, 0, "chaos must never panic a session: {stats:?}");
        assert_eq!(
            stats.sessions,
            CHAOS_TENANTS.len() as u64 * CHIPS_PER_TENANT + 1,
            "all sessions alive: {stats:?}"
        );
        // The adversary must actually have fired (the properties above
        // are vacuous against a quiet transport). Which classes fire is
        // seed-dependent; corruption specifically shows up server-side
        // as decode errors when it does.
        let injected: u64 = chaos_clients
            .iter()
            .map(|c| {
                let s = c.chaos_stats();
                s.disconnects + s.corruptions + s.truncations + s.duplicates + s.reorders + s.stalls
            })
            .sum();
        assert!(injected > 0, "chaos schedule injected nothing (seed {seed})");
        let corruptions: u64 = chaos_clients.iter().map(|c| c.chaos_stats().corruptions).sum();
        if corruptions >= 5 {
            assert!(stats.decode_errors > 0, "corrupt frames must surface as typed decode errors");
        }
        for &tenant in &CHAOS_TENANTS {
            for chip in 1..CHIPS_PER_TENANT {
                assert_eq!(
                    server.session_alarmed(SessionKey { tenant, chip }),
                    Some(false),
                    "healthy chip {chip} of tenant {tenant} must not alarm"
                );
            }
        }
        assert_eq!(
            server.session_alarmed(SessionKey { tenant: CONTROL_TENANT, chip: DROOP_CHIP }),
            Some(mirror.is_alarmed()),
            "control session state matches its offline mirror"
        );
        server.stop();
    });
}
