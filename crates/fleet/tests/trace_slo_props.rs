//! Property suite for per-reading tracing and the SLO burn-rate engine
//! over real sockets.
//!
//! The load-bearing invariants:
//!
//! * Trace IDs are a pure function of `(tenant, chip, seq)`, so the set
//!   of recorded IDs is bit-identical no matter how many worker threads
//!   drained the shards (CI runs this suite at `VOLTSENSE_THREADS` 1 and
//!   4) and no matter what order chaos delivered the frames in.
//! * Tail sampling is keyed on `seq`, not arrival order, so the sampled
//!   set is the same under reordering.
//! * Chaos duplicates are deduped by the trace buffer *before* the SLO
//!   engine sees them: a frame delivered twice burns exactly one unit of
//!   error budget, never two.
//! * `/healthz` flips to 503 the moment a monitor is quarantined.

use std::sync::Arc;
use std::time::Duration;

use voltsense_core::{CoreError, EmergencyMonitor, MonitorDecision, VoltageMapModel};
use voltsense_fleet::chaos::ChaosConfig;
use voltsense_fleet::client::{FleetClient, RetryPolicy};
use voltsense_fleet::frame::{error_code, Frame};
use voltsense_fleet::server::{FleetConfig, FleetServer, SessionFactory};
use voltsense_fleet::session::{ChipMonitor, SessionKey};
use voltsense_linalg::Matrix;
use voltsense_telemetry::json::{self, Value};
use voltsense_telemetry::trace::{self, TraceConfig, TraceContext};
use voltsense_testkit::{forall, u64_range, usize_range};

fn identity_monitor() -> EmergencyMonitor {
    let model = VoltageMapModel::from_parts(
        vec![0],
        1,
        Matrix::from_rows(&[&[1.0]]).unwrap(),
        vec![0.0],
        0.001,
    )
    .unwrap();
    EmergencyMonitor::new(model, 0.8, 2, 10.0).unwrap()
}

fn identity_factory() -> SessionFactory {
    Arc::new(|_key| Ok(Box::new(identity_monitor()) as Box<dyn ChipMonitor>))
}

fn traced_cfg(sample_every: u64) -> FleetConfig {
    FleetConfig {
        tick: Duration::from_millis(2),
        trace: TraceConfig {
            slowest_per_tenant: 128,
            sample_every,
            sampled_capacity: 128,
            dedup_window: 512,
        },
        ..FleetConfig::default()
    }
}

/// Wait until the server's trace buffer has recorded (or deduped) enough
/// readings — `finish_trace` runs just *after* the response write, so a
/// client that saw every decision can still be a hair ahead of it.
fn await_recorded(server: &FleetServer, tenant: u64, want: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.traces().stats(tenant).recorded < want {
        assert!(
            std::time::Instant::now() < deadline,
            "trace buffer stuck at {:?}, want {want} recorded",
            server.traces().stats(tenant)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn trace_ids_and_sampling_are_pure_functions_of_identity() {
    forall!(cases = 4, (
        tenant in u64_range(1, 1 << 40),
        chip in u64_range(0, 1 << 32),
        n in usize_range(12, 24),
    ) => {
        const EVERY: u64 = 4;
        let mut server = FleetServer::start(traced_cfg(EVERY), identity_factory()).unwrap();
        let mut client = FleetClient::new(
            server.addr(), tenant, RetryPolicy::default(), ChaosConfig::quiet(tenant),
        );
        client.hello(chip).unwrap();
        for seq in 0..n as u64 {
            client.send_readings(chip, seq, &[0.95]).unwrap();
            client
                .wait_for(Duration::from_secs(5), |f| {
                    matches!(f, Frame::Decision { seq: s, .. } if *s == seq)
                })
                .unwrap();
        }
        await_recorded(&server, tenant, n as u64);

        let traces = server.traces();
        let stats = traces.stats(tenant);
        assert_eq!(stats.recorded, n as u64, "every decision recorded exactly once");
        assert_eq!(stats.deduped, 0, "a quiet client never duplicates");

        // Every retained record carries the pure-function ID — the same
        // value any replica, replay, or thread count would derive.
        let slowest = traces.slowest(tenant);
        assert_eq!(slowest.len(), n, "capacity exceeds n: nothing evicted");
        let mut seqs: Vec<u64> = Vec::new();
        for rec in &slowest {
            assert_eq!(rec.ctx, TraceContext::derive(tenant, chip, rec.ctx.seq));
            assert_eq!(rec.ctx.trace_id, trace::trace_id(tenant, chip, rec.ctx.seq));
            assert_eq!(
                rec.stages.total(),
                rec.total_ns(),
                "stage decomposition sums to the end-to-end duration"
            );
            assert!(rec.total_ns() > 0, "a real reading takes time");
            seqs.push(rec.ctx.seq);
        }
        seqs.sort_unstable();
        assert_eq!(seqs, (0..n as u64).collect::<Vec<_>>(), "all seqs retained");
        // Slowest-N is reported slowest first.
        for pair in slowest.windows(2) {
            assert!(pair[0].total_ns() >= pair[1].total_ns());
        }

        // Sampling is keyed on seq, not on arrival order or timing.
        let mut sampled: Vec<u64> =
            traces.sampled(tenant).iter().map(|r| r.ctx.seq).collect();
        sampled.sort_unstable();
        let expect: Vec<u64> = (0..n as u64).filter(|s| s % EVERY == 0).collect();
        assert_eq!(sampled, expect, "sampled set == seq % {EVERY} == 0");

        // The exact tail quantile of a fully-retained population is the max.
        let max = slowest.first().unwrap().total_ns();
        assert_eq!(traces.exact_quantile(tenant, 1.0), Some(max));

        // The SLO engine saw each reading exactly once.
        let slo = server.slo();
        assert_eq!(slo.availability_counts(tenant), (n as u64, 0));
        let (good, bad) = slo.latency_counts(tenant);
        assert_eq!(good + bad, n as u64, "one latency event per reading");
        server.stop();
    });
}

#[test]
fn chaos_duplicates_and_reorders_never_double_count() {
    forall!(cases = 3, (seed in u64_range(1, 1 << 20)) => {
        const N: u64 = 48;
        const EVERY: u64 = 8;
        // Duplicates and reorders only: every frame is eventually
        // delivered (a reorder pocket is flushed by the next send), so
        // the delivered-seq set is exactly known.
        let chaos = ChaosConfig {
            p_duplicate: 0.25,
            p_reorder: 0.15,
            ..ChaosConfig::quiet(seed)
        };
        let mut server = FleetServer::start(traced_cfg(EVERY), identity_factory()).unwrap();
        let mut client =
            FleetClient::new(server.addr(), 9, RetryPolicy::default(), chaos);
        client.hello(1).unwrap();
        for seq in 0..N {
            client.send_readings(1, seq, &[0.95]).unwrap();
            // Pace the flood so the ladder never rejects: a Busy would
            // legitimately burn availability and cloud the assertion.
            client.drain_responses(Duration::from_millis(1));
        }
        // Two sentinels: the first flushes any pocketed main-run frame,
        // the second flushes the first if *it* got pocketed. Only the
        // last sentinel can still be stranded when the run ends.
        for extra in 0..2u64 {
            client.send_readings(1, N + extra, &[0.95]).unwrap();
            client.drain_responses(Duration::from_millis(1));
        }
        await_recorded(&server, 9, N + 1);

        let stats = server.traces().stats(9);
        let dup = client.chaos_stats().duplicates;
        assert!(dup > 0, "0.25 over {N} sends fires with overwhelming probability");
        assert!(
            stats.recorded >= N + 1 && stats.recorded <= N + 2,
            "every distinct seq recorded once: {stats:?}"
        );
        // `dup` counts every duplicated frame, Hellos included (and a
        // pocketed HelloAck can trigger a Hello resend, adding more
        // duplicable non-readings frames), so the trace dedupe count is
        // bounded by it rather than equal to it.
        assert!(
            stats.deduped > 0 && stats.deduped <= dup,
            "duplicated readings dedupe, once each: {stats:?} vs {dup} duplicates"
        );

        // The SLO ledger matches the *distinct* readings, not deliveries.
        let slo = server.slo();
        assert_eq!(
            slo.availability_counts(9),
            (stats.recorded, 0),
            "duplicates must not burn the availability budget twice"
        );
        let (good, bad) = slo.latency_counts(9);
        assert_eq!(good + bad, stats.recorded);

        // Reordered arrival does not disturb seq-keyed sampling.
        for rec in server.traces().sampled(9) {
            assert_eq!(rec.ctx.seq % EVERY, 0);
        }
        server.stop();
    });
}

/// Monitor that panics on a sub-0.5 reading — drives quarantine.
struct PanickingMonitor;

impl ChipMonitor for PanickingMonitor {
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        if readings.first().copied().unwrap_or(1.0) < 0.5 {
            panic!("injected monitor panic");
        }
        Ok(MonitorDecision {
            predicted_min: readings[0],
            worst_block: 0,
            alarm: false,
            rising_edge: false,
            health: None,
        })
    }
    fn is_alarmed(&self) -> bool {
        false
    }
    fn checkpoint_json(&self, _key: SessionKey) -> Option<String> {
        None
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// The one test in this binary that touches the process-global trace /
/// SLO / health registries (via `install_observability`); the property
/// tests above only use per-server accessors, so parallel test threads
/// never race on the globals.
#[test]
fn endpoint_serves_traces_slo_and_healthz_flips_on_quarantine() {
    let factory: SessionFactory = Arc::new(|key| {
        if key.chip == 666 {
            Ok(Box::new(PanickingMonitor) as Box<dyn ChipMonitor>)
        } else {
            Ok(Box::new(identity_monitor()) as Box<dyn ChipMonitor>)
        }
    });
    let mut server = FleetServer::start(traced_cfg(1), factory).unwrap();
    server.install_observability();
    let source: voltsense_telemetry::serve::SnapshotSource =
        Arc::new(|| voltsense_telemetry::FlightRecorder::new(16).snapshot("trace_slo_props"));
    let endpoint = voltsense_telemetry::serve::serve("127.0.0.1:0", source).expect("bind");

    let mut client = FleetClient::new(
        server.addr(), 5, RetryPolicy::default(), ChaosConfig::quiet(5),
    );
    client.hello(7).unwrap();
    for seq in 0..6u64 {
        client.send_readings(7, seq, &[0.95]).unwrap();
        client
            .wait_for(Duration::from_secs(5), |f| {
                matches!(f, Frame::Decision { seq: s, .. } if *s == seq)
            })
            .unwrap();
    }
    await_recorded(&server, 5, 6);

    // Healthy: 200 with a JSON census body.
    let (status, body) = http_get(endpoint.addr(), "/healthz");
    assert!(status.contains("200"), "{status}: {body}");
    let doc = json::parse(&body).expect("healthz body is JSON");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(doc.get("quarantined").and_then(Value::as_f64), Some(0.0));

    // /trace serves this server's buffer with the full stage breakdown.
    let (status, body) = http_get(endpoint.addr(), "/trace");
    assert!(status.contains("200"), "{status}");
    let doc = json::parse(&body).expect("trace body is JSON");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-trace-v1"));
    let tenants = doc.get("tenants").and_then(Value::as_array).expect("tenants");
    let tenant5 = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(Value::as_f64) == Some(5.0))
        .expect("tenant 5 present");
    let slowest = tenant5.get("slowest").and_then(Value::as_array).expect("slowest");
    assert!(!slowest.is_empty());
    for stage in trace::STAGES {
        assert!(
            slowest[0].get("stages").and_then(|s| s.get(stage)).is_some(),
            "stage {stage} serialized"
        );
    }

    // /slo serves the burn-rate view for the same tenant.
    let (status, body) = http_get(endpoint.addr(), "/slo");
    assert!(status.contains("200"), "{status}");
    let doc = json::parse(&body).expect("slo body is JSON");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("voltsense-slo-v1"));
    let tenants = doc.get("tenants").and_then(Value::as_array).expect("tenants");
    assert!(tenants
        .iter()
        .any(|t| t.get("tenant").and_then(Value::as_f64) == Some(5.0)));

    // Quarantine chip 666 and watch /healthz flip to 503.
    client.hello(666).unwrap();
    client.send_readings(666, 0, &[0.1]).unwrap();
    client
        .wait_for(Duration::from_secs(5), |f| {
            matches!(f, Frame::Error { code, .. } if *code == error_code::QUARANTINED)
        })
        .unwrap();
    let (status, body) = http_get(endpoint.addr(), "/healthz");
    assert!(status.contains("503"), "quarantine must unready: {status}: {body}");
    let doc = json::parse(&body).expect("unhealthy body is JSON");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("quarantined"));
    assert_eq!(doc.get("quarantined").and_then(Value::as_f64), Some(1.0));

    drop(endpoint);
    voltsense_telemetry::serve::clear_health();
    server.stop();
}
