//! Checkpoint round-trip properties: serialize a live monitor session,
//! parse it back, and the restored monitor must continue bit-identically
//! — same predictions, same alarm edges, same counters — because a
//! restarted fleet server is only trustworthy if restore is exact.

use voltsense_core::EmergencyMonitor;
use voltsense_fleet::checkpoint;
use voltsense_fleet::session::SessionKey;
use voltsense_linalg::Matrix;
use voltsense_testkit::{f64_range, forall, matrix, u64_range, usize_range, vec_f64};

/// A monitor over a synthetic `k x q` OLS fit (no training loop — the
/// checkpoint does not care where the coefficients came from).
fn monitor_from(
    coeffs: &Matrix,
    intercept: &[f64],
    threshold: f64,
    persistence: usize,
) -> EmergencyMonitor {
    let q = coeffs.cols();
    let model = voltsense_core::VoltageMapModel::from_parts(
        (0..q).collect(),
        q + 3,
        coeffs.clone(),
        intercept.to_vec(),
        0.004,
    )
    .expect("generated parts are consistent");
    EmergencyMonitor::new(model, threshold, persistence, 0.02).expect("valid config")
}

#[test]
fn roundtrip_preserves_state_and_future_decisions_bit_exactly() {
    forall!(cases = 48, (
        coeffs in matrix(3, 4, -0.5, 0.5),
        intercept in vec_f64(3, 0.4, 0.8),
        threshold in f64_range(0.7, 0.9),
        persistence in usize_range(1, 4),
        tenant in u64_range(0, u64::MAX),
        chip in u64_range(0, u64::MAX),
        warmup in vec_f64(24, 0.6, 1.1),
        future in vec_f64(24, 0.6, 1.1),
    ) => {
        let key = SessionKey { tenant, chip };
        let mut original = monitor_from(&coeffs, &intercept, threshold, persistence);
        // Drive it into an arbitrary mid-stream state (possibly alarmed,
        // possibly mid-debounce) before freezing.
        for chunk in warmup.chunks(4) {
            original.observe(chunk).expect("arity matches");
        }
        let json = checkpoint::to_json(key, &original);
        let (restored_key, mut restored) =
            checkpoint::from_json(&json).expect("own output parses");
        assert_eq!(restored_key, key, "u64 ids survive (even > 2^53)");
        assert_eq!(restored.checkpoint(), original.checkpoint(), "state machine is exact");

        // The real contract: both monitors agree on every future sample.
        for chunk in future.chunks(4) {
            let a = original.observe(chunk).expect("arity matches");
            let b = restored.observe(chunk).expect("arity matches");
            assert_eq!(a.predicted_min.to_bits(), b.predicted_min.to_bits(),
                "prediction must be bit-identical after restore");
            assert_eq!((a.alarm, a.rising_edge), (b.alarm, b.rising_edge));
        }
        assert_eq!(restored.stats(), original.stats());
    });
}

#[test]
fn tampered_documents_are_typed_errors_not_monitors() {
    let coeffs = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.7]]).unwrap();
    let monitor = monitor_from(&coeffs, &[0.1, 0.05], 0.8, 2);
    let key = SessionKey { tenant: 1, chip: 2 };
    let good = checkpoint::to_json(key, &monitor);
    assert!(checkpoint::from_json(&good).is_ok());

    // Wrong schema tag.
    let bad = good.replace("voltsense-fleet-checkpoint-v1", "v0");
    assert!(checkpoint::from_json(&bad).is_err());
    // Invalid monitor config smuggled in: re-validated on restore.
    let bad = good.replace("\"persistence\":2", "\"persistence\":0");
    assert!(checkpoint::from_json(&bad).is_err());
    // Structural damage: not JSON at all.
    assert!(checkpoint::from_json(&good[..good.len() / 2]).is_err());
    // Inconsistent model shape.
    let bad = good.replace("\"cols\":2", "\"cols\":3");
    assert!(checkpoint::from_json(&bad).is_err());
}

#[test]
fn store_and_load_are_atomic_per_session_files() {
    let dir = std::env::temp_dir().join(format!("fleet_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let coeffs = Matrix::from_rows(&[&[1.0]]).unwrap();
    let mut monitor = monitor_from(&coeffs, &[0.0], 0.8, 1);
    // Latch the alarm, then persist: the load must come back latched.
    monitor.observe(&[0.5]).unwrap();
    assert!(monitor.is_alarmed());
    let key = SessionKey { tenant: 9, chip: 1 };
    let path = checkpoint::store(&dir, key, &monitor).expect("store");
    assert!(path.ends_with("tenant_9_chip_1.json"));
    let restored = checkpoint::load(&dir, key).expect("load").expect("present");
    assert!(restored.is_alarmed(), "latched alarm survives the disk");
    // Unknown key: cleanly absent, not an error.
    assert!(checkpoint::load(&dir, SessionKey { tenant: 9, chip: 2 }).unwrap().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
