//! Zero-allocation gate for the fleet's per-reading hot path.
//!
//! One steady-state reading travels decode → queue → predict → decide:
//! the decoder parses a wire frame into a recycled values buffer, the
//! session queues it, `drain_into` runs the monitor and appends the
//! decision to a caller-reused output vector, and the spent buffer is
//! recycled back into the decoder. With every buffer warm, that loop
//! must allocate nothing — this gate pins it end to end, so a
//! regression anywhere along the path (a fresh `Vec` per frame, a
//! `String` per decision, a non-`_into` predict) fails with a
//! per-iteration allocation count.

voltsense_telemetry::install_counting_allocator!();

use voltsense_core::{EmergencyMonitor, VoltageMapModel};
use voltsense_fleet::frame::{Frame, FrameDecoder, DEFAULT_MAX_FRAME};
use voltsense_fleet::session::{ChipMonitor, Drained, LadderConfig, Offer, Session, SessionKey};
use voltsense_linalg::Matrix;
use voltsense_parallel::with_threads;
use voltsense_telemetry::alloc_gate;

/// Identity monitor: one sensor, one critical node, prediction == the
/// reading (same construction as the server-behavior tests).
fn identity_monitor() -> EmergencyMonitor {
    let model = VoltageMapModel::from_parts(
        vec![0],
        1,
        Matrix::from_rows(&[&[1.0]]).unwrap(),
        vec![0.0],
        0.001,
    )
    .unwrap();
    EmergencyMonitor::new(model, 0.8, 2, 10.0).unwrap()
}

#[test]
fn per_reading_path_is_alloc_free() {
    with_threads(1, || {
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut session = Session::new(
            SessionKey { tenant: 1, chip: 7 },
            Box::new(identity_monitor()) as Box<dyn ChipMonitor>,
            LadderConfig::default(),
        );
        // A healthy reading (1.0 V > 0.8 V threshold): no alarm edge, so
        // the loop stays on the pure decision path — incident capture and
        // checkpoint serialization are cold paths and allocate freely.
        let wire = Frame::Readings { chip: 7, seq: 0, trace: None, values: vec![1.0] }.encode();
        let mut out: Vec<Drained> = Vec::with_capacity(4);
        alloc_gate!("fleet.per_reading", 64, || {
            decoder.push(&wire);
            let frame = decoder.next().expect("decode").expect("one frame");
            let Frame::Readings { seq, values, .. } = frame else {
                panic!("expected readings frame");
            };
            match session.offer(seq, values, None) {
                Offer::Queued => {}
                other => panic!("expected Queued, got {other:?}"),
            }
            session.drain_into(&mut out, 8, usize::MAX);
            assert!(matches!(out[0].frame, Frame::Decision { .. }));
            out.clear();
            // Close the recycling loop: the session's spent values buffer
            // becomes the decoder's next decode target.
            let spare = session.take_spare().expect("drained buffer recycled");
            decoder.recycle(spare);
        });
    });
}
