//! Length-prefixed wire framing for the fleet monitor.
//!
//! Every frame is `[u32 LE body_len][u32 LE fnv1a32(body)][body]`, where
//! the body is `[u8 kind][payload…]`. The checksum turns transport
//! corruption — which the chaos harness injects on purpose — into a typed
//! [`FrameError::Checksum`] instead of a silently misparsed reading, and
//! the length prefix is validated against the configured maximum *before*
//! any allocation, so an adversarial prefix can claim 4 GiB without the
//! decoder ever reserving it.
//!
//! Framing errors are fatal for the connection that produced them: after
//! a corrupt prefix the stream offset is unknowable, so the server closes
//! and the client reconnects (its retry policy owns that). The decoder
//! therefore stays permanently in the error state once poisoned.

use std::fmt;

/// Fixed prefix: 4-byte body length + 4-byte FNV-1a checksum of the body.
pub const HEADER_LEN: usize = 8;

/// Default upper bound on a frame body; readings at [`MAX_READINGS`] fit
/// with generous margin.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024;

/// Most voltage readings one `Readings` frame may carry.
pub const MAX_READINGS: usize = 4096;

/// Longest UTF-8 message an `Error` frame may carry.
pub const MAX_ERROR_MSG: usize = 512;

/// 32-bit FNV-1a over `bytes` — tiny, dependency-free, and plenty to
/// catch the single-byte flips and truncations chaos injects.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Why a byte sequence failed to decode. Every variant is a protocol
/// violation that ends the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the configured maximum frame size.
    TooLarge {
        /// Length the prefix claimed.
        len: usize,
        /// Configured maximum body length.
        max: usize,
    },
    /// The body checksum did not match the header checksum.
    Checksum {
        /// Checksum the header carried.
        expected: u32,
        /// Checksum computed over the received body.
        actual: u32,
    },
    /// The body's kind byte names no known frame type.
    UnknownKind(u8),
    /// The body ended before its declared payload was complete.
    Truncated,
    /// The body continued past its declared payload.
    TrailingBytes,
    /// A `Readings` frame declared more than [`MAX_READINGS`] values.
    TooManyReadings(usize),
    /// An `Error` frame declared a message longer than [`MAX_ERROR_MSG`].
    MessageTooLong(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            Self::Checksum { expected, actual } => {
                write!(f, "frame checksum mismatch: header {expected:#010x}, body {actual:#010x}")
            }
            Self::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            Self::Truncated => write!(f, "frame body truncated"),
            Self::TrailingBytes => write!(f, "frame body has trailing bytes"),
            Self::TooManyReadings(n) => {
                write!(f, "readings frame declares {n} values (max {MAX_READINGS})")
            }
            Self::MessageTooLong(n) => {
                write!(f, "error message of {n} bytes (max {MAX_ERROR_MSG})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Bit flags carried by a [`Frame::Decision`].
pub mod decision_flags {
    /// The session's alarm is currently asserted.
    pub const ALARM: u8 = 1 << 0;
    /// This decision is the rising edge of an alarm.
    pub const RISING: u8 = 1 << 1;
    /// The session is degraded (load was shed before this decision).
    pub const DEGRADED: u8 = 1 << 2;
}

/// One protocol message. Integers are little-endian; voltages travel as
/// `f64::to_le_bytes` (bit-exact, NaN-preserving — validation is the
/// monitor's job, not the transport's).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open or resume the session for `(tenant, chip)`.
    /// The first `Hello` pins the connection to its tenant; later frames
    /// for other tenants are a protocol violation.
    Hello {
        /// Tenant the connection authenticates as.
        tenant: u64,
        /// Chip whose monitor session this opens.
        chip: u64,
    },
    /// Server → client: the session is open.
    HelloAck {
        /// Chip being acknowledged.
        chip: u64,
        /// True when the session resumed (in-memory or from checkpoint)
        /// rather than being created fresh.
        resumed: bool,
        /// Alarm state at ack time — lets a reconnecting client confirm a
        /// latched alarm survived the disconnect.
        alarmed: bool,
    },
    /// Client → server: one batch of sensor readings for `chip`.
    Readings {
        /// Chip the readings belong to.
        chip: u64,
        /// Client-assigned sequence number, echoed in the decision.
        seq: u64,
        /// Optional 64-bit trace ID stamped by the client
        /// ([`voltsense_telemetry::trace::trace_id`]). `None` encodes as
        /// the original v1 readings frame, so old peers interoperate
        /// unchanged; `Some` encodes as the version-bumped
        /// `KIND_READINGS_V2` body with the ID after `seq`.
        trace: Option<u64>,
        /// Sensor voltages, in the model's sensor order.
        values: Vec<f64>,
    },
    /// Server → client: the monitor's verdict for one readings batch.
    Decision {
        /// Chip the decision is for.
        chip: u64,
        /// Sequence number of the readings batch this answers.
        seq: u64,
        /// [`decision_flags`] bit set.
        flags: u8,
        /// Minimum predicted critical-node voltage.
        predicted_min: f64,
    },
    /// Server → client: the session is shedding load; back off.
    Busy {
        /// Chip whose readings were rejected.
        chip: u64,
        /// Suggested client backoff before retrying.
        retry_after_ms: u32,
    },
    /// Server → client: terminal session error (see [`error_code`]).
    Error {
        /// [`error_code`] discriminant.
        code: u8,
        /// Chip the error concerns (0 when not session-specific).
        chip: u64,
        /// Human-readable detail, at most [`MAX_ERROR_MSG`] bytes.
        message: String,
    },
}

/// Discriminants carried by [`Frame::Error`].
pub mod error_code {
    /// Readings arrived for a chip with no open session; re-`Hello`.
    pub const UNKNOWN_SESSION: u8 = 1;
    /// The session panicked and is quarantined.
    pub const QUARANTINED: u8 = 2;
    /// The connection broke the protocol (bad tenant, bad state).
    pub const PROTOCOL: u8 = 3;
    /// The monitor rejected the readings (wrong arity, etc.).
    pub const REJECTED: u8 = 4;
}

const KIND_HELLO: u8 = 1;
const KIND_READINGS: u8 = 2;
const KIND_DECISION: u8 = 3;
const KIND_BUSY: u8 = 4;
const KIND_ERROR: u8 = 5;
const KIND_HELLO_ACK: u8 = 6;
/// Version-bumped readings body: v1 layout plus a trailing-after-`seq`
/// 64-bit trace ID. A separate kind (not a flag bit) keeps v1 decoding
/// byte-for-byte untouched for old peers.
const KIND_READINGS_V2: u8 = 7;

impl Frame {
    /// Serialize into a complete wire frame (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            Self::Hello { tenant, chip } => {
                body.push(KIND_HELLO);
                body.extend_from_slice(&tenant.to_le_bytes());
                body.extend_from_slice(&chip.to_le_bytes());
            }
            Self::HelloAck { chip, resumed, alarmed } => {
                body.push(KIND_HELLO_ACK);
                body.extend_from_slice(&chip.to_le_bytes());
                body.push(u8::from(*resumed));
                body.push(u8::from(*alarmed));
            }
            Self::Readings { chip, seq, trace, values } => {
                body.push(if trace.is_some() { KIND_READINGS_V2 } else { KIND_READINGS });
                body.extend_from_slice(&chip.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                if let Some(id) = trace {
                    body.extend_from_slice(&id.to_le_bytes());
                }
                body.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            Self::Decision { chip, seq, flags, predicted_min } => {
                body.push(KIND_DECISION);
                body.extend_from_slice(&chip.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.push(*flags);
                body.extend_from_slice(&predicted_min.to_le_bytes());
            }
            Self::Busy { chip, retry_after_ms } => {
                body.push(KIND_BUSY);
                body.extend_from_slice(&chip.to_le_bytes());
                body.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Self::Error { code, chip, message } => {
                body.push(KIND_ERROR);
                body.push(*code);
                body.extend_from_slice(&chip.to_le_bytes());
                let msg = message.as_bytes();
                let len = msg.len().min(MAX_ERROR_MSG);
                body.extend_from_slice(&(len as u16).to_le_bytes());
                body.extend_from_slice(&msg[..len]);
            }
        }
        let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Decode one body (kind byte + payload, checksum already verified).
    /// `spare` is a pool of recycled readings buffers; the `Readings` arm
    /// pops one instead of allocating when the pool is non-empty, which is
    /// what keeps the steady-state decode path allocation-free.
    fn decode_body(body: &[u8], spare: &mut Vec<Vec<f64>>) -> Result<Self, FrameError> {
        let mut r = Reader { bytes: body, pos: 0 };
        let kind = r.u8()?;
        let frame = match kind {
            KIND_HELLO => Self::Hello { tenant: r.u64()?, chip: r.u64()? },
            KIND_HELLO_ACK => Self::HelloAck {
                chip: r.u64()?,
                resumed: r.u8()? != 0,
                alarmed: r.u8()? != 0,
            },
            KIND_READINGS | KIND_READINGS_V2 => {
                let chip = r.u64()?;
                let seq = r.u64()?;
                let trace = if kind == KIND_READINGS_V2 { Some(r.u64()?) } else { None };
                let count = r.u32()? as usize;
                if count > MAX_READINGS {
                    return Err(FrameError::TooManyReadings(count));
                }
                // `count` is now bounded, and the body itself already
                // passed the frame-size cap: safe to (re)allocate.
                let mut values = spare.pop().unwrap_or_default();
                values.clear();
                values.reserve(count);
                for _ in 0..count {
                    values.push(r.f64()?);
                }
                Self::Readings { chip, seq, trace, values }
            }
            KIND_DECISION => Self::Decision {
                chip: r.u64()?,
                seq: r.u64()?,
                flags: r.u8()?,
                predicted_min: r.f64()?,
            },
            KIND_BUSY => Self::Busy { chip: r.u64()?, retry_after_ms: r.u32()? },
            KIND_ERROR => {
                let code = r.u8()?;
                let chip = r.u64()?;
                let len = r.u16()? as usize;
                if len > MAX_ERROR_MSG {
                    return Err(FrameError::MessageTooLong(len));
                }
                let raw = r.take(len)?;
                Self::Error {
                    code,
                    chip,
                    message: String::from_utf8_lossy(raw).into_owned(),
                }
            }
            other => return Err(FrameError::UnknownKind(other)),
        };
        if r.pos != body.len() {
            return Err(FrameError::TrailingBytes);
        }
        Ok(frame)
    }
}

/// Cursor over a frame body; every read is bounds-checked into
/// [`FrameError::Truncated`].
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.bytes.len() {
            return Err(FrameError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Incremental decoder over a byte stream with arbitrary chunking.
///
/// Feed raw bytes with [`push`](Self::push), then drain frames with
/// [`next`](Self::next). The internal buffer is bounded by
/// `HEADER_LEN + max_frame` plus one network read — oversized length
/// prefixes are rejected before the body is buffered or allocated. After
/// any error the decoder is poisoned: `next` keeps returning the same
/// error, because a corrupt prefix makes every later offset meaningless.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_frame: usize,
    poisoned: Option<FrameError>,
    /// Recycled readings buffers ([`recycle`](Self::recycle)); decoding a
    /// `Readings` frame reuses one instead of allocating.
    spare: Vec<Vec<f64>>,
}

/// Most recycled readings buffers a decoder retains; beyond this,
/// [`FrameDecoder::recycle`] just drops the buffer.
const MAX_SPARE_BUFFERS: usize = 32;

impl FrameDecoder {
    /// Decoder accepting bodies up to `max_frame` bytes.
    pub fn new(max_frame: usize) -> Self {
        Self { buf: Vec::new(), max_frame, poisoned: None, spare: Vec::new() }
    }

    /// Return a spent readings buffer for reuse by a later `Readings`
    /// decode. Callers that recycle every drained buffer make the
    /// steady-state decode path allocation-free (pinned by the fleet
    /// `alloc_gate` test); not recycling is always safe, just slower.
    pub fn recycle(&mut self, values: Vec<f64>) {
        if self.spare.len() < MAX_SPARE_BUFFERS {
            self.spare.push(values);
        }
    }

    /// Append raw stream bytes. Ignored once the decoder is poisoned —
    /// the connection is already doomed, so don't grow the buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes currently buffered (for backpressure accounting and the
    /// never-over-allocates property test).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decode the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; any `Err` is terminal for the
    /// stream (see the poisoning note on the type).
    pub fn next(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame {
            return Err(self.poison(FrameError::TooLarge { len, max: self.max_frame }));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let expected =
            u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        let body = &self.buf[HEADER_LEN..HEADER_LEN + len];
        let actual = fnv1a32(body);
        if actual != expected {
            return Err(self.poison(FrameError::Checksum { expected, actual }));
        }
        match Frame::decode_body(body, &mut self.spare) {
            Ok(frame) => {
                self.buf.drain(..HEADER_LEN + len);
                Ok(Some(frame))
            }
            Err(e) => Err(self.poison(e)),
        }
    }

    fn poison(&mut self, err: FrameError) -> FrameError {
        self.buf.clear();
        self.poisoned = Some(err.clone());
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let wire = frame.encode();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire);
        assert_eq!(dec.next().unwrap(), Some(frame));
        assert_eq!(dec.next().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn every_kind_roundtrips() {
        roundtrip(Frame::Hello { tenant: 7, chip: 42 });
        roundtrip(Frame::HelloAck { chip: 42, resumed: true, alarmed: false });
        roundtrip(Frame::Readings {
            chip: 1,
            seq: 99,
            trace: None,
            values: vec![0.95, 0.83, f64::NAN.min(0.9)],
        });
        roundtrip(Frame::Readings {
            chip: 1,
            seq: 100,
            trace: Some(0xdead_beef_cafe_f00d),
            values: vec![0.95, 0.83],
        });
        roundtrip(Frame::Decision {
            chip: 1,
            seq: 99,
            flags: decision_flags::ALARM | decision_flags::RISING,
            predicted_min: 0.791,
        });
        roundtrip(Frame::Busy { chip: 3, retry_after_ms: 250 });
        roundtrip(Frame::Error {
            code: error_code::UNKNOWN_SESSION,
            chip: 5,
            message: "no session".into(),
        });
    }

    #[test]
    fn nan_readings_survive_the_wire_bit_exactly() {
        let wire = Frame::Readings { chip: 0, seq: 0, trace: None, values: vec![f64::NAN] }.encode();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire);
        match dec.next().unwrap() {
            Some(Frame::Readings { values, .. }) => {
                assert_eq!(values[0].to_bits(), f64::NAN.to_bits());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_chunking_decodes_identically() {
        let frames = [
            Frame::Hello { tenant: 1, chip: 2 },
            Frame::Readings { chip: 2, seq: 0, trace: None, values: vec![0.9; 17] },
            Frame::Readings { chip: 2, seq: 1, trace: Some(41), values: vec![0.9; 3] },
            Frame::Busy { chip: 2, retry_after_ms: 10 },
        ];
        let wire: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        for byte in wire {
            dec.push(&[byte]);
            while let Some(frame) = dec.next().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out.as_slice(), frames.as_slice());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering_a_body() {
        let mut dec = FrameDecoder::new(1024);
        let mut wire = (u32::MAX).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0; 4]);
        dec.push(&wire);
        match dec.next() {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Poisoned: same error again, and pushes are dropped.
        dec.push(&[0; 64]);
        assert_eq!(dec.buffered(), 0);
        assert!(matches!(dec.next(), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn corrupt_byte_is_a_checksum_error() {
        let mut wire = Frame::Hello { tenant: 9, chip: 9 }.encode();
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire);
        assert!(matches!(dec.next(), Err(FrameError::Checksum { .. })));
    }

    #[test]
    fn readings_count_is_capped_independently_of_frame_size() {
        // A body that *claims* MAX_READINGS+1 values but is otherwise tiny:
        // the count cap must fire (Truncated would also be safe, but the
        // cap check comes first so the error names the real violation).
        let mut body = vec![2u8]; // KIND_READINGS
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&((MAX_READINGS as u32) + 1).to_le_bytes());
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&fnv1a32(&body).to_le_bytes());
        wire.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire);
        assert!(matches!(dec.next(), Err(FrameError::TooManyReadings(_))));
    }

    #[test]
    fn untraced_readings_stay_wire_compatible_with_v1() {
        // An untraced frame must be byte-identical to the historical v1
        // encoding: hand-build the v1 body and compare.
        let frame = Frame::Readings { chip: 6, seq: 12, trace: None, values: vec![0.5, 0.25] };
        let mut body = vec![KIND_READINGS];
        body.extend_from_slice(&6u64.to_le_bytes());
        body.extend_from_slice(&12u64.to_le_bytes());
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&0.5f64.to_le_bytes());
        body.extend_from_slice(&0.25f64.to_le_bytes());
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&fnv1a32(&body).to_le_bytes());
        wire.extend_from_slice(&body);
        assert_eq!(frame.encode(), wire);
        // …and a v1 body decodes to `trace: None` (old peers still work).
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire);
        assert_eq!(dec.next().unwrap(), Some(frame));
    }

    #[test]
    fn traced_readings_use_the_v2_kind() {
        let wire = Frame::Readings { chip: 1, seq: 2, trace: Some(3), values: vec![] }.encode();
        assert_eq!(wire[HEADER_LEN], KIND_READINGS_V2);
        // A truncated v2 body (trace ID cut off) is a framing error, not a
        // misparse as v1.
        let mut body = vec![KIND_READINGS_V2];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&[0u8; 4]); // half a trace ID
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&fnv1a32(&body).to_le_bytes());
        wire.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire);
        assert!(matches!(dec.next(), Err(FrameError::Truncated)));
    }
}
