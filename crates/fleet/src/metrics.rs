//! Fleet counters flowing into the existing telemetry `/metrics` endpoint.
//!
//! Telemetry metric names are `&'static str`. Global fleet counters use
//! literals; per-tenant names are interned once per `(tenant, metric)`
//! via `Box::leak` behind a registry, so the leak is bounded by the
//! number of distinct tenants actually seen — a deliberate, documented
//! trade for zero-dependency static-name metrics.

use std::collections::BTreeMap;
use std::sync::Mutex;

use voltsense_telemetry as telemetry;

/// Total frames decoded by the server (all kinds).
pub const FRAMES_TOTAL: &str = "fleet.frames_total";
/// Readings batches dropped oldest-first under overload.
pub const SHED_TOTAL: &str = "fleet.shed_total";
/// Readings batches refused with a `Busy` backoff hint.
pub const REJECTED_TOTAL: &str = "fleet.rejected_total";
/// Rejecting → Accepting recoveries.
pub const RECOVERIES_TOTAL: &str = "fleet.recoveries_total";
/// Sessions quarantined after a monitor panic.
pub const QUARANTINED_TOTAL: &str = "fleet.quarantined_total";
/// Idle sessions evicted (checkpointed and dropped).
pub const EVICTED_TOTAL: &str = "fleet.evicted_total";
/// Checkpoint documents written.
pub const CHECKPOINTS_TOTAL: &str = "fleet.checkpoints_total";
/// Sessions resumed from an on-disk checkpoint.
pub const RESTORES_TOTAL: &str = "fleet.restores_total";
/// Connections closed on a framing error.
pub const DECODE_ERRORS_TOTAL: &str = "fleet.decode_errors_total";
/// Response frames dropped because the client connection was dead.
pub const RESPONSES_DROPPED_TOTAL: &str = "fleet.responses_dropped_total";
/// Checkpoint writes that failed (degraded to this counter, never fatal).
pub const CHECKPOINT_FAILURES_TOTAL: &str = "fleet.checkpoint_failures_total";
/// Live sessions gauge.
pub const SESSIONS_GAUGE: &str = "fleet.sessions";
/// Readings suppressed as chaos duplicates by the trace dedupe window.
pub const TRACE_DEDUPED_TOTAL: &str = "fleet.trace.deduped_total";
/// Per-stage duration histograms for traced readings, in
/// [`voltsense_telemetry::trace::STAGES`] order.
pub const STAGE_NS: [&str; 5] = [
    "fleet.stage.decode_ns",
    "fleet.stage.shard_ns",
    "fleet.stage.predict_ns",
    "fleet.stage.decide_ns",
    "fleet.stage.respond_ns",
];
/// End-to-end traced reading duration histogram (sum of all stages).
pub const READING_TOTAL_NS: &str = "fleet.reading_total_ns";
/// Per-tenant twin of [`READING_TOTAL_NS`], interned via
/// [`tenant_metric`] as `fleet.tenant.<id>.reading_total_ns`.
pub const TENANT_READING_TOTAL_NS: &str = "reading_total_ns";

static TENANT_NAMES: Mutex<BTreeMap<(u64, &'static str), &'static str>> =
    Mutex::new(BTreeMap::new());

/// The interned `fleet.tenant.<id>.<metric>` name for a per-tenant
/// counter. Interns on first use; every later call is a map hit.
pub fn tenant_metric(tenant: u64, metric: &'static str) -> &'static str {
    let mut names = TENANT_NAMES.lock().unwrap_or_else(|e| e.into_inner());
    names
        .entry((tenant, metric))
        .or_insert_with(|| Box::leak(format!("fleet.tenant.{tenant}.{metric}").into_boxed_str()))
}

/// Bump a global counter and its per-tenant twin.
pub fn count(tenant: u64, global: &'static str, metric: &'static str, delta: u64) {
    telemetry::counter(global, delta);
    telemetry::counter(tenant_metric(tenant, metric), delta);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_names_are_interned_not_regrown() {
        let a = tenant_metric(7, "frames");
        let b = tenant_metric(7, "frames");
        assert!(std::ptr::eq(a, b), "same (tenant, metric) must intern to one leak");
        assert_eq!(a, "fleet.tenant.7.frames");
        assert_ne!(tenant_metric(8, "frames"), a);
    }
}
