//! The multi-tenant fleet monitor server.
//!
//! One TCP accept loop, one reader thread per connection, and one
//! dispatcher thread that fans session drains out across the
//! `voltsense-parallel` pool, one task per dirty shard. Sessions live in
//! `shards` hash-partitioned by `(tenant, chip)`; a connection is pinned
//! to the tenant named by its first `Hello`, so frames can never reach
//! another tenant's sessions no matter what bytes chaos injects.
//!
//! Failure containment, layer by layer:
//!
//! * **Framing errors** (corrupt prefix, bad checksum, oversized length)
//!   close that one connection with a typed error; the decoder never
//!   allocates from an attacker-controlled length.
//! * **Slow-loris** readers (partial frame, then silence) are closed when
//!   the partial frame outlives the read deadline.
//! * **Monitor panics** unwind into a per-session `catch_unwind` inside
//!   the shard task: the session is quarantined, the panic becomes a
//!   `telemetry::incident` snapshot, and the shard (and pool) never see
//!   the unwind.
//! * **Overload** degrades through the session ladder (see
//!   [`crate::session`]) instead of growing queues without bound.
//! * **Crashes**: sessions checkpoint on alarm edges and every
//!   `checkpoint_interval` samples; [`FleetServer::abort`] drops
//!   everything *without* the graceful flush, deliberately simulating
//!   `kill -9`, and a restarted server resumes sessions from disk
//!   without refitting.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use voltsense_parallel as parallel;
use voltsense_telemetry::slo::{SloConfig, SloTracker};
use voltsense_telemetry::trace::{self, StageNs, TraceBuffer, TraceConfig, TraceContext, TraceRecord};
use voltsense_telemetry::{self as telemetry, incident::Incident};

use crate::frame::{error_code, Frame, FrameDecoder};
use crate::metrics;
use crate::session::{
    ChipMonitor, LadderConfig, Offer, PendingTrace, Session, SessionKey, SessionState, TraceDraft,
};

/// Builds the monitor for a session seen for the first time (no memory,
/// no checkpoint). Errors become an `Error` frame for the client.
pub type SessionFactory =
    Arc<dyn Fn(SessionKey) -> Result<Box<dyn ChipMonitor>, String> + Send + Sync>;

/// Server tuning. `Default` suits tests; production raises the caps.
#[derive(Clone)]
pub struct FleetConfig {
    /// Bind address (`host:port`; port 0 for OS-assigned).
    pub addr: String,
    /// Largest accepted frame body, bytes.
    pub max_frame: usize,
    /// A connection whose partial frame sees no new bytes for this long
    /// is treated as slow-loris and closed.
    pub read_deadline: Duration,
    /// A connection with no traffic at all for this long is closed.
    pub conn_idle_timeout: Duration,
    /// Bound on any single response write.
    pub write_timeout: Duration,
    /// Per-session queue/ladder knobs.
    pub ladder: LadderConfig,
    /// Sessions idle this long are checkpointed and evicted.
    pub idle_timeout: Duration,
    /// Directory for crash-safe checkpoints; `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every N monitor samples (alarm edges always checkpoint).
    pub checkpoint_interval: usize,
    /// Session shards; defaults to the configured pool width.
    pub shards: usize,
    /// Most batches drained per session per dispatcher pass.
    pub drain_budget: usize,
    /// Dispatcher tick (drain latency floor when idle; wakeups are
    /// signalled immediately on ingest).
    pub tick: Duration,
    /// Tail-sampling policy for the per-reading trace buffer.
    pub trace: TraceConfig,
    /// Per-tenant SLO definition (latency threshold, objectives, burn
    /// thresholds).
    pub slo: SloConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_frame: crate::frame::DEFAULT_MAX_FRAME,
            read_deadline: Duration::from_secs(2),
            conn_idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(2),
            ladder: LadderConfig::default(),
            idle_timeout: Duration::from_secs(300),
            checkpoint_dir: None,
            checkpoint_interval: 256,
            shards: parallel::configured_threads(),
            drain_budget: 32,
            tick: Duration::from_millis(5),
            trace: TraceConfig::default(),
            slo: SloConfig::default(),
        }
    }
}

/// Point-in-time server counters (per-server atomics, not the global
/// telemetry registry, so tests running several servers stay disjoint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Readings batches shed (drop-oldest).
    pub shed: u64,
    /// Readings batches rejected with `Busy`.
    pub rejected: u64,
    /// Rejecting → Accepting recoveries.
    pub recoveries: u64,
    /// Sessions quarantined after a panic.
    pub quarantined: u64,
    /// Idle sessions evicted.
    pub evicted: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Checkpoint writes that failed.
    pub checkpoint_failures: u64,
    /// Sessions restored from disk.
    pub restores: u64,
    /// Connections closed on framing errors.
    pub decode_errors: u64,
    /// Responses dropped on dead connections.
    pub responses_dropped: u64,
    /// Live sessions right now.
    pub sessions: u64,
}

#[derive(Default)]
struct Counters {
    frames: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    recoveries: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_failures: AtomicU64,
    restores: AtomicU64,
    decode_errors: AtomicU64,
    responses_dropped: AtomicU64,
}

/// Write half of one client connection, shared by reader and dispatcher.
struct ConnTx {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnTx {
    fn send(&self, counters: &Counters, frame: &Frame) {
        if self.dead.load(Ordering::Relaxed) {
            counters.responses_dropped.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(metrics::RESPONSES_DROPPED_TOTAL, 1);
            return;
        }
        let bytes = frame.encode();
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if stream.write_all(&bytes).and_then(|()| stream.flush()).is_err() {
            self.dead.store(true, Ordering::Relaxed);
            counters.responses_dropped.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(metrics::RESPONSES_DROPPED_TOTAL, 1);
        }
    }

    fn shutdown(&self) {
        self.dead.store(true, Ordering::Relaxed);
        let stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let _ = stream.shutdown(Shutdown::Both);
    }
}

struct SessionEntry {
    session: Session,
    conn: Option<Arc<ConnTx>>,
}

struct Shard {
    sessions: Mutex<HashMap<SessionKey, Arc<Mutex<SessionEntry>>>>,
    dirty: AtomicBool,
}

struct Shared {
    cfg: FleetConfig,
    factory: SessionFactory,
    shards: Vec<Shard>,
    counters: Counters,
    stop: AtomicBool,
    wake: Mutex<bool>,
    wake_cond: Condvar,
    conns: Mutex<Vec<std::sync::Weak<ConnTx>>>,
    /// Tail-sampling trace buffer for every traced reading this server
    /// answers; also the dedupe authority for chaos-duplicate deliveries.
    traces: Arc<TraceBuffer>,
    /// Per-tenant SLO burn-rate tracker.
    slo: Arc<SloTracker>,
    /// The scoped recorder active on the thread that called
    /// [`FleetServer::start`], re-installed on every server thread so
    /// test-scoped telemetry capture sees server internals (the same
    /// propagation contract the parallel pool honours).
    scope: Option<Arc<dyn telemetry::Recorder>>,
    /// When the most recent checkpoint was written (any session).
    last_checkpoint: Mutex<Option<Instant>>,
}

impl Shared {
    fn shard_of(&self, key: SessionKey) -> &Shard {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&key.tenant.to_le_bytes());
        bytes[8..].copy_from_slice(&key.chip.to_le_bytes());
        let h = crate::frame::fnv1a32(&bytes) as usize;
        &self.shards[h % self.shards.len()]
    }

    fn notify(&self) {
        let mut flag = self.wake.lock().unwrap_or_else(|e| e.into_inner());
        *flag = true;
        self.wake_cond.notify_one();
    }

    fn session_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.sessions.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
            .sum()
    }

    /// Live sessions per degradation tier: `(total, degraded, quarantined)`,
    /// where degraded means the ladder is in Shedding or Rejecting.
    fn ladder_census(&self) -> (u64, u64, u64) {
        let (mut total, mut degraded, mut quarantined) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            let entries: Vec<_> = {
                let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
                sessions.values().cloned().collect()
            };
            for entry in entries {
                let guard = entry.lock().unwrap_or_else(|e| e.into_inner());
                total += 1;
                match guard.session.state() {
                    SessionState::Shedding | SessionState::Rejecting => degraded += 1,
                    SessionState::Quarantined => quarantined += 1,
                    _ => {}
                }
            }
        }
        (total, degraded, quarantined)
    }

    /// The `/healthz` answer: 503 as soon as any session is quarantined —
    /// a panicked monitor means some chip is no longer being watched,
    /// which is exactly what an external prober must see.
    fn health(&self) -> telemetry::serve::Health {
        let (sessions, degraded, quarantined) = self.ladder_census();
        let healthy = quarantined == 0;
        let status = if healthy { "ok" } else { "quarantined" };
        let age = match *self.last_checkpoint.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(at) => (at.elapsed().as_millis() as u64).to_string(),
            None => "null".into(),
        };
        let body = format!(
            "{{\n  \"status\": \"{status}\",\n  \"sessions\": {sessions},\n  \
             \"degraded\": {degraded},\n  \"quarantined\": {quarantined},\n  \
             \"last_checkpoint_age_ms\": {age}\n}}\n"
        );
        telemetry::serve::Health { healthy, body }
    }
}

/// A running fleet monitor server.
pub struct FleetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    dispatch_thread: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stopped: bool,
}

impl FleetServer {
    /// Bind and start serving. `factory` builds monitors for sessions
    /// with no in-memory state and no checkpoint.
    pub fn start(cfg: FleetConfig, factory: SessionFactory) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shards = (0..cfg.shards.max(1))
            .map(|_| Shard { sessions: Mutex::new(HashMap::new()), dirty: AtomicBool::new(false) })
            .collect();
        let traces = Arc::new(TraceBuffer::new(cfg.trace));
        let slo = Arc::new(SloTracker::new(cfg.slo));
        let shared = Arc::new(Shared {
            cfg,
            factory,
            shards,
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            wake: Mutex::new(false),
            wake_cond: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            traces,
            slo,
            scope: telemetry::scoped_recorder(),
            last_checkpoint: Mutex::new(None),
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = shared.clone();
        let accept_readers = readers.clone();
        let accept_thread = std::thread::Builder::new()
            .name("fleet-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_shared = accept_shared.clone();
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("fleet-conn".into())
                        .spawn(move || match conn_shared.scope.clone() {
                            Some(scope) => telemetry::with_scoped(scope, || {
                                reader_loop(conn_shared, stream)
                            }),
                            None => reader_loop(conn_shared, stream),
                        })
                    {
                        let mut guard =
                            accept_readers.lock().unwrap_or_else(|e| e.into_inner());
                        // Reap finished readers so the list stays bounded.
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                }
            })?;

        let dispatch_shared = shared.clone();
        let dispatch_thread = std::thread::Builder::new()
            .name("fleet-dispatch".into())
            .spawn(move || match dispatch_shared.scope.clone() {
                Some(scope) => {
                    telemetry::with_scoped(scope, || dispatch_loop(&dispatch_shared))
                }
                None => dispatch_loop(&dispatch_shared),
            })?;

        Ok(Self {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            dispatch_thread: Some(dispatch_thread),
            readers,
            stopped: false,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> FleetStats {
        let c = &self.shared.counters;
        FleetStats {
            frames: c.frames.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            recoveries: c.recoveries.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            evicted: c.evicted.load(Ordering::Relaxed),
            checkpoints: c.checkpoints.load(Ordering::Relaxed),
            checkpoint_failures: c.checkpoint_failures.load(Ordering::Relaxed),
            restores: c.restores.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            responses_dropped: c.responses_dropped.load(Ordering::Relaxed),
            sessions: self.shared.session_count(),
        }
    }

    /// The latched-alarm state of one session, if it is live in memory.
    pub fn session_alarmed(&self, key: SessionKey) -> Option<bool> {
        let shard = self.shared.shard_of(key);
        let entry = {
            let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
            sessions.get(&key).cloned()
        }?;
        let guard = entry.lock().unwrap_or_else(|e| e.into_inner());
        Some(guard.session.is_alarmed())
    }

    /// The tail-sampling trace buffer behind this server's `GET /trace`.
    pub fn traces(&self) -> Arc<TraceBuffer> {
        self.shared.traces.clone()
    }

    /// The per-tenant SLO tracker behind this server's `GET /slo`.
    pub fn slo(&self) -> Arc<SloTracker> {
        self.shared.slo.clone()
    }

    /// Wire this server into the process-global observability endpoint:
    /// `GET /trace` and `GET /slo` serve this server's buffers, and
    /// `GET /healthz` turns 503 (with a JSON body naming quarantined and
    /// degraded session counts and the last-checkpoint age) as soon as a
    /// monitor is quarantined. One server per process owns the endpoint;
    /// the last caller wins, and a stopped server answers unhealthy
    /// rather than dangling.
    pub fn install_observability(&self) {
        trace::install(self.shared.traces.clone());
        telemetry::slo::install(self.shared.slo.clone());
        let weak = Arc::downgrade(&self.shared);
        telemetry::serve::install_health(Arc::new(move || match weak.upgrade() {
            Some(shared) => shared.health(),
            None => telemetry::serve::Health {
                healthy: false,
                body: "{\"status\": \"stopped\"}\n".into(),
            },
        }));
    }

    /// Graceful shutdown: stop ingest, drain nothing further, checkpoint
    /// every session, join all threads.
    pub fn stop(&mut self) {
        self.shutdown(true);
    }

    /// Crash-style shutdown: like [`stop`](Self::stop) but **without**
    /// the final checkpoint flush — only checkpoints already written by
    /// the periodic/edge policy survive, which is exactly the state a
    /// `kill -9` leaves behind. The recovery tests restart from this.
    pub fn abort(&mut self) {
        self.shutdown(false);
    }

    fn shutdown(&mut self, checkpoint_all: bool) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.notify();
        // Unblock accept with a throwaway connection, then join it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Kill live connections so reader threads observe EOF promptly.
        for conn in self.shared.conns.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            if let Some(conn) = conn.upgrade() {
                conn.shutdown();
            }
        }
        let handles: Vec<_> =
            std::mem::take(&mut *self.readers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
        if checkpoint_all {
            if let Some(dir) = self.shared.cfg.checkpoint_dir.clone() {
                for shard in &self.shared.shards {
                    let entries: Vec<_> = {
                        let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
                        sessions.values().cloned().collect()
                    };
                    for entry in entries {
                        let mut guard = entry.lock().unwrap_or_else(|e| e.into_inner());
                        write_checkpoint(&self.shared, &dir, &mut guard.session);
                    }
                }
            }
        }
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Persist one session if its monitor supports it; failures degrade to
/// counters (a monitor must keep monitoring when the disk is gone).
fn write_checkpoint(shared: &Shared, dir: &std::path::Path, session: &mut Session) {
    let key = session.key();
    let Some(json) = session.take_checkpoint() else { return };
    let path = dir.join(crate::checkpoint::file_name(key));
    let tmp = dir.join(format!("{}.tmp", crate::checkpoint::file_name(key)));
    let result = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&tmp, &json))
        .and_then(|()| std::fs::rename(&tmp, &path));
    match result {
        Ok(()) => {
            shared.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
            metrics::count(key.tenant, metrics::CHECKPOINTS_TOTAL, "checkpoints", 1);
            *shared.last_checkpoint.lock().unwrap_or_else(|e| e.into_inner()) =
                Some(Instant::now());
        }
        Err(e) => {
            shared.counters.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(metrics::CHECKPOINT_FAILURES_TOTAL, 1);
            telemetry::event(
                "fleet.checkpoint_failed",
                &[("tenant", key.tenant as f64), ("chip", key.chip as f64)],
            );
            let _ = e; // detail is in the counters; stderr would flood under chaos
        }
    }
}

fn dispatch_loop(shared: &Arc<Shared>) {
    let mut last_sweep = Instant::now();
    let sweep_every = shared.cfg.tick.max(Duration::from_millis(1)) * 10;
    loop {
        {
            let guard = shared.wake.lock().unwrap_or_else(|e| e.into_inner());
            let (mut guard, _) = shared
                .wake_cond
                .wait_timeout_while(guard, shared.cfg.tick, |woken| !*woken)
                .unwrap_or_else(|e| e.into_inner());
            *guard = false;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let sweep = last_sweep.elapsed() >= sweep_every;
        if sweep {
            last_sweep = Instant::now();
            shared.slo.publish_gauges();
        }
        let targets: Vec<usize> = shared
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.dirty.swap(false, Ordering::AcqRel) || sweep)
            .map(|(i, _)| i)
            .collect();
        if targets.is_empty() {
            continue;
        }
        // One pool task per dirty shard; panics never cross this boundary
        // (each session drain is individually caught below).
        parallel::pool().run(targets.len(), &|ti| {
            drain_shard(shared, &shared.shards[targets[ti]], sweep);
        });
        telemetry::gauge(metrics::SESSIONS_GAUGE, shared.session_count() as f64);
    }
}

fn drain_shard(shared: &Shared, shard: &Shard, sweep: bool) {
    let entries: Vec<(SessionKey, Arc<Mutex<SessionEntry>>)> = {
        let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
        sessions.iter().map(|(k, v)| (*k, v.clone())).collect()
    };
    let mut evict: Vec<SessionKey> = Vec::new();
    let mut more_work = false;
    for (key, entry) in entries {
        let mut guard = entry.lock().unwrap_or_else(|e| e.into_inner());
        let SessionEntry { session, conn } = &mut *guard;
        if session.queued() > 0 {
            let budget = shared.cfg.drain_budget;
            let interval = shared.cfg.checkpoint_interval;
            let recoveries_before = session.counters().recoveries;
            match catch_unwind(AssertUnwindSafe(|| session.drain(budget, interval))) {
                Ok(drained) => {
                    // The drain side owns de-escalation; mirror any
                    // Rejecting → Accepting recovery into server counters.
                    let recovered = session.counters().recoveries - recoveries_before;
                    if recovered > 0 {
                        shared.counters.recoveries.fetch_add(recovered, Ordering::Relaxed);
                        metrics::count(key.tenant, metrics::RECOVERIES_TOTAL, "recoveries", recovered);
                    }
                    if let Some(conn) = conn.as_ref() {
                        for d in &drained {
                            let sent_at = d.trace.map(|_| Instant::now());
                            conn.send(&shared.counters, &d.frame);
                            if let (Some(draft), Some(at)) = (d.trace, sent_at) {
                                let respond = at.elapsed().as_nanos() as u64;
                                finish_trace(shared, key.tenant, draft, respond);
                            }
                        }
                    } else {
                        let n = drained.len() as u64;
                        shared.counters.responses_dropped.fetch_add(n, Ordering::Relaxed);
                        telemetry::counter(metrics::RESPONSES_DROPPED_TOTAL, n);
                        // The decision was still made; close its trace
                        // with a zero respond stage so SLO latency and
                        // availability keep counting dead-client traffic.
                        for d in &drained {
                            if let Some(draft) = d.trace {
                                finish_trace(shared, key.tenant, draft, 0);
                            }
                        }
                    }
                    // Recoveries are observed here (offer side can't see
                    // the drain); mirror the session counter lazily.
                    more_work |= session.queued() > 0;
                }
                Err(payload) => {
                    // The monitor panicked mid-observe. Quarantine the
                    // session, snapshot the flight recorder, tell the
                    // client — and crucially, return normally so the pool
                    // and the shard's other sessions never notice.
                    session.quarantine();
                    shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    metrics::count(key.tenant, metrics::QUARANTINED_TOTAL, "quarantined", 1);
                    let what: &str = payload
                        .downcast_ref::<&str>()
                        .copied()
                        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                        .unwrap_or("non-string panic payload");
                    eprintln!(
                        "[fleet] quarantined tenant {} chip {} after panic: {what}",
                        key.tenant, key.chip
                    );
                    let fields = [("tenant", key.tenant as f64), ("chip", key.chip as f64)];
                    telemetry::incident::report(&Incident {
                        fields: &fields,
                        ..Incident::new("fleet_session_panic")
                    });
                    if let Some(conn) = conn.as_ref() {
                        conn.send(&shared.counters, &session.quarantine_frame());
                    }
                }
            }
        }
        if session.checkpoint_due() {
            if let Some(dir) = shared.cfg.checkpoint_dir.as_deref() {
                write_checkpoint(shared, dir, session);
            } else {
                // No persistence configured: acknowledge the policy so
                // the due flag doesn't pin the session dirty forever.
                let _ = session.take_checkpoint();
            }
        }
        if sweep
            && session.queued() == 0
            && session.last_activity().elapsed() >= shared.cfg.idle_timeout
        {
            if let Some(dir) = shared.cfg.checkpoint_dir.as_deref() {
                // Evicted sessions must be resumable: force a final
                // checkpoint even if the interval policy wasn't due.
                if session.state() != SessionState::Quarantined {
                    write_checkpoint(shared, dir, session);
                }
            }
            evict.push(key);
        }
    }
    if !evict.is_empty() {
        let mut sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
        for key in evict {
            // Re-check activity under the map lock: a Hello may have
            // raced the sweep and revived the session.
            let still_idle = sessions
                .get(&key)
                .map(|e| {
                    let g = e.lock().unwrap_or_else(|er| er.into_inner());
                    g.session.queued() == 0
                        && g.session.last_activity().elapsed() >= shared.cfg.idle_timeout
                })
                .unwrap_or(false);
            if still_idle {
                sessions.remove(&key);
                shared.counters.evicted.fetch_add(1, Ordering::Relaxed);
                metrics::count(key.tenant, metrics::EVICTED_TOTAL, "evicted", 1);
            }
        }
    }
    if more_work {
        shard.dirty.store(true, Ordering::Release);
        shared.notify();
    }
}

/// Seal a per-reading trace: attach the respond stage, offer it to the
/// tail-sampling buffer, and — only if it was not a chaos duplicate —
/// feed the SLO engine and the stage histograms. The buffer's dedupe
/// window is the single authority on "seen before", so replayed frames
/// can never double-count an error budget.
fn finish_trace(shared: &Shared, tenant: u64, draft: TraceDraft, respond_ns: u64) {
    let rec = TraceRecord {
        ctx: draft.ctx,
        stages: StageNs {
            decode: draft.decode_ns,
            shard: draft.shard_ns,
            predict: draft.predict_ns,
            decide: draft.decide_ns,
            respond: respond_ns,
        },
    };
    let total = rec.total_ns();
    if shared.traces.record(rec) {
        shared.slo.record_decision(tenant, total);
        // Per-stage histograms ride the deterministic 1-in-k sample (the
        // same seqs the sampled ring keeps): five extra recorder hits on
        // every reading is most of the always-on tracing overhead, and
        // the stage-level distribution doesn't need per-reading counts —
        // unlike the totals below, which the p99 cross-check and the SLO
        // engine consume exhaustively.
        let k = shared.traces.config().sample_every;
        if k > 0 && rec.ctx.seq % k == 0 {
            for (name, ns) in metrics::STAGE_NS.iter().zip(rec.stages.as_array()) {
                telemetry::histogram(name, ns as f64, "ns");
            }
        }
        telemetry::histogram(metrics::READING_TOTAL_NS, total as f64, "ns");
        telemetry::histogram(
            metrics::tenant_metric(tenant, metrics::TENANT_READING_TOTAL_NS),
            total as f64,
            "ns",
        );
    } else {
        telemetry::counter(metrics::TRACE_DEDUPED_TOTAL, 1);
    }
}

fn reader_loop(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let Ok(write_half) = stream.try_clone() else { return };
    let conn = Arc::new(ConnTx { stream: Mutex::new(write_half), dead: AtomicBool::new(false) });
    {
        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.retain(|w| w.strong_count() > 0);
        conns.push(Arc::downgrade(&conn));
    }
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100).min(shared.cfg.read_deadline)));
    let mut decoder = FrameDecoder::new(shared.cfg.max_frame);
    let mut buf = [0u8; 4096];
    let mut tenant: Option<u64> = None;
    let mut last_byte = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) || conn.dead.load(Ordering::Relaxed) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                last_byte = Instant::now();
                decoder.push(&buf[..n]);
                loop {
                    let decode_started = trace::enabled().then(Instant::now);
                    match decoder.next() {
                        Ok(Some(frame)) => {
                            let decode_ns = decode_started
                                .map(|t| t.elapsed().as_nanos() as u64)
                                .unwrap_or(0);
                            shared.counters.frames.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter(metrics::FRAMES_TOTAL, 1);
                            if !handle_frame(&shared, &conn, &mut tenant, frame, decode_ns) {
                                conn.shutdown();
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Framing is broken: typed error, close, let
                            // the client's retry policy reconnect.
                            shared.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter(metrics::DECODE_ERRORS_TOTAL, 1);
                            conn.send(
                                &shared.counters,
                                &Frame::Error { code: error_code::PROTOCOL, chip: 0, message: e.to_string() },
                            );
                            conn.shutdown();
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let stalled = last_byte.elapsed();
                let limit = if decoder.buffered() > 0 {
                    shared.cfg.read_deadline // slow-loris: partial frame
                } else {
                    shared.cfg.conn_idle_timeout
                };
                if stalled >= limit {
                    conn.shutdown();
                    return;
                }
            }
            Err(_) => break,
        }
    }
}

/// Process one decoded frame. Returns `false` when the connection must
/// close (protocol violation).
fn handle_frame(
    shared: &Arc<Shared>,
    conn: &Arc<ConnTx>,
    conn_tenant: &mut Option<u64>,
    frame: Frame,
    decode_ns: u64,
) -> bool {
    match frame {
        Frame::Hello { tenant, chip } => {
            match conn_tenant {
                None => *conn_tenant = Some(tenant),
                Some(bound) if *bound != tenant => {
                    // One connection, one tenant — the structural wall the
                    // cross-tenant property test leans on.
                    conn.send(
                        &shared.counters,
                        &Frame::Error {
                            code: error_code::PROTOCOL,
                            chip,
                            message: format!("connection is bound to tenant {bound}"),
                        },
                    );
                    return false;
                }
                Some(_) => {}
            }
            let key = SessionKey { tenant, chip };
            open_session(shared, conn, key)
        }
        Frame::Readings { chip, seq, trace, values } => {
            let Some(tenant) = *conn_tenant else {
                conn.send(
                    &shared.counters,
                    &Frame::Error {
                        code: error_code::PROTOCOL,
                        chip,
                        message: "readings before hello".into(),
                    },
                );
                return false;
            };
            let key = SessionKey { tenant, chip };
            telemetry::counter(metrics::tenant_metric(tenant, "frames"), 1);
            let shard = shared.shard_of(key);
            let entry = {
                let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
                sessions.get(&key).cloned()
            };
            let Some(entry) = entry else {
                conn.send(
                    &shared.counters,
                    &Frame::Error {
                        code: error_code::UNKNOWN_SESSION,
                        chip,
                        message: "no session for this chip; send hello".into(),
                    },
                );
                return true;
            };
            // Resume the client's trace when the frame carries an ID;
            // derive the canonical one otherwise so untraced (v1)
            // clients still show up in the tail sampler. Either way the
            // ID is a pure function of (tenant, chip, seq), so chaos
            // replays reproduce it bit-for-bit.
            let pending = trace::enabled().then(|| {
                let trace_id = trace.unwrap_or_else(|| trace::trace_id(tenant, chip, seq));
                PendingTrace {
                    ctx: TraceContext { trace_id, tenant, chip, seq },
                    decode_ns,
                    enqueued: Instant::now(),
                }
            });
            let offer = {
                let mut guard = entry.lock().unwrap_or_else(|e| e.into_inner());
                guard.conn = Some(conn.clone());
                guard.session.offer(seq, values, pending)
            };
            match offer {
                Offer::Queued => {
                    shard.dirty.store(true, Ordering::Release);
                    shared.notify();
                }
                Offer::QueuedAfterShed => {
                    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                    metrics::count(tenant, metrics::SHED_TOTAL, "shed", 1);
                    shard.dirty.store(true, Ordering::Release);
                    shared.notify();
                }
                Offer::Rejected(busy) => {
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    metrics::count(tenant, metrics::REJECTED_TOTAL, "rejected", 1);
                    // A Busy response is an availability SLI miss — but
                    // only once per trace ID: a duplicated frame that is
                    // rejected twice still burnt exactly one budget unit.
                    if let Some(p) = pending {
                        if shared.traces.admit(tenant, p.ctx.trace_id) {
                            shared.slo.record_busy(tenant);
                        }
                    } else {
                        shared.slo.record_busy(tenant);
                    }
                    conn.send(&shared.counters, &busy);
                    // Still drain: recovery needs the queue to move.
                    shard.dirty.store(true, Ordering::Release);
                    shared.notify();
                }
                Offer::Quarantined(err) => {
                    conn.send(&shared.counters, &err);
                }
            }
            true
        }
        // Server-to-client kinds arriving at the server are violations.
        Frame::HelloAck { chip, .. }
        | Frame::Decision { chip, .. }
        | Frame::Busy { chip, .. }
        | Frame::Error { chip, .. } => {
            conn.send(
                &shared.counters,
                &Frame::Error {
                    code: error_code::PROTOCOL,
                    chip,
                    message: "server-bound connection received a server frame".into(),
                },
            );
            false
        }
    }
}

/// Resolve a `Hello`: in-memory session, else checkpoint, else factory.
fn open_session(shared: &Arc<Shared>, conn: &Arc<ConnTx>, key: SessionKey) -> bool {
    let shard = shared.shard_of(key);
    {
        let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = sessions.get(&key) {
            let mut guard = entry.lock().unwrap_or_else(|e| e.into_inner());
            guard.conn = Some(conn.clone());
            let alarmed = guard.session.is_alarmed();
            drop(guard);
            drop(sessions);
            conn.send(
                &shared.counters,
                &Frame::HelloAck { chip: key.chip, resumed: true, alarmed },
            );
            return true;
        }
    }
    // Not in memory. Try the checkpoint dir (outside the map lock — disk
    // IO and model validation don't belong under it).
    let mut resumed = false;
    let monitor: Box<dyn ChipMonitor> = match shared
        .cfg
        .checkpoint_dir
        .as_deref()
        .map(|dir| crate::checkpoint::load(dir, key))
    {
        Some(Ok(Some(monitor))) => {
            resumed = true;
            shared.counters.restores.fetch_add(1, Ordering::Relaxed);
            metrics::count(key.tenant, metrics::RESTORES_TOTAL, "restores", 1);
            Box::new(monitor)
        }
        Some(Err(e)) => {
            // A present-but-bad checkpoint is an incident, not a crash;
            // fall through to a fresh session.
            eprintln!(
                "[fleet] discarding corrupt checkpoint for tenant {} chip {}: {e}",
                key.tenant, key.chip
            );
            let fields = [("tenant", key.tenant as f64), ("chip", key.chip as f64)];
            telemetry::incident::report(&Incident {
                fields: &fields,
                ..Incident::new("fleet_checkpoint_corrupt")
            });
            shared.counters.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(metrics::CHECKPOINT_FAILURES_TOTAL, 1);
            match (shared.factory)(key) {
                Ok(m) => m,
                Err(msg) => return refuse_session(shared, conn, key, msg),
            }
        }
        Some(Ok(None)) | None => match (shared.factory)(key) {
            Ok(m) => m,
            Err(msg) => return refuse_session(shared, conn, key, msg),
        },
    };
    let alarmed = monitor.is_alarmed();
    let entry = Arc::new(Mutex::new(SessionEntry {
        session: Session::new(key, monitor, shared.cfg.ladder),
        conn: Some(conn.clone()),
    }));
    {
        let mut sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
        // A concurrent Hello for the same key may have won the race;
        // keep the existing entry in that case.
        sessions.entry(key).or_insert(entry);
    }
    conn.send(&shared.counters, &Frame::HelloAck { chip: key.chip, resumed, alarmed });
    true
}

fn refuse_session(shared: &Arc<Shared>, conn: &Arc<ConnTx>, key: SessionKey, msg: String) -> bool {
    conn.send(
        &shared.counters,
        &Frame::Error { code: error_code::REJECTED, chip: key.chip, message: msg },
    );
    true
}
