//! Seeded, replayable transport-fault injection for the chaos harness.
//!
//! [`FaultyTransport`] sits between the client and its socket and mangles
//! outbound frames the way a hostile network would: disconnects, partial
//! frames, corrupted bytes (length prefixes included), duplicated and
//! reordered frames, and stalls. Every decision comes from a
//! [`GaussianRng`](voltsense_workload::GaussianRng) stream seeded by
//! [`ChaosConfig::seed`], so a failing soak replays bit-identically from
//! its seed — the same philosophy as `crates/faults`, one layer down the
//! stack (transport bytes instead of sensor values).
//!
//! The injector only mutates what a real network could mutate: bytes in
//! flight on one connection. It cannot reach into the server, which is
//! exactly why "no chaos schedule crashes the server / crosses tenants /
//! clears a latched alarm" are meaningful properties.

use voltsense_workload::GaussianRng;

/// Per-frame fault probabilities. All default to zero (chaos off);
/// [`ChaosConfig::moderate`] is the soak's standard mix.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// RNG seed; the whole schedule derives from it.
    pub seed: u64,
    /// Drop the connection instead of sending.
    pub p_disconnect: f64,
    /// Flip one random byte of the frame (header bytes included, so
    /// corrupt length prefixes and checksums both occur).
    pub p_corrupt: f64,
    /// Send only a prefix of the frame, then drop the connection.
    pub p_truncate: f64,
    /// Send the frame twice.
    pub p_duplicate: f64,
    /// Hold the frame back and send it after the next one (reorder).
    pub p_reorder: f64,
    /// Sleep [`ChaosConfig::stall_ms`] before sending.
    pub p_stall: f64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// Chaos disabled; only the seed matters (for jitter reuse).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            p_disconnect: 0.0,
            p_corrupt: 0.0,
            p_truncate: 0.0,
            p_duplicate: 0.0,
            p_reorder: 0.0,
            p_stall: 0.0,
            stall_ms: 0,
        }
    }

    /// The standard soak mix: every fault class occurs, none dominates.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            p_disconnect: 0.01,
            p_corrupt: 0.01,
            p_truncate: 0.005,
            p_duplicate: 0.02,
            p_reorder: 0.02,
            p_stall: 0.01,
            stall_ms: 5,
        }
    }
}

/// How many of each fault the injector has fired (soak reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames passed through untouched.
    pub clean: u64,
    /// Injected disconnects.
    pub disconnects: u64,
    /// Injected byte corruptions.
    pub corruptions: u64,
    /// Injected truncations (partial frame + disconnect).
    pub truncations: u64,
    /// Injected duplicates.
    pub duplicates: u64,
    /// Injected reorders.
    pub reorders: u64,
    /// Injected stalls.
    pub stalls: u64,
}

/// What the transport did to one offered frame. The caller performs the
/// actual socket writes; the injector only decides and mutates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injected {
    /// Write these byte chunks in order.
    Write(Vec<Vec<u8>>),
    /// Write these chunks, then treat the connection as dropped.
    WriteThenDisconnect(Vec<Vec<u8>>),
    /// Sleep this many milliseconds, then write the chunks.
    StallThenWrite(u64, Vec<Vec<u8>>),
}

/// Seeded fault injector for outbound frames.
#[derive(Debug)]
pub struct FaultyTransport {
    cfg: ChaosConfig,
    rng: GaussianRng,
    /// A frame held back by a reorder, delivered after the next frame.
    pocket: Option<Vec<u8>>,
    stats: ChaosStats,
}

impl FaultyTransport {
    /// Injector driven by `cfg` (schedule fixed by `cfg.seed`).
    pub fn new(cfg: ChaosConfig) -> Self {
        Self { cfg, rng: GaussianRng::seed_from_u64(cfg.seed ^ 0xC4A0_5C4A), pocket: None, stats: ChaosStats::default() }
    }

    /// Counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Frame held back by a pending reorder, if any (flush on shutdown).
    pub fn take_pocket(&mut self) -> Option<Vec<u8>> {
        self.pocket.take()
    }

    /// Decide the fate of one encoded frame.
    pub fn inject(&mut self, frame: Vec<u8>) -> Injected {
        let roll = self.rng.uniform();
        let c = &self.cfg;
        // One fault class per frame, picked by stacking the probability
        // bands; the pocket (reorder) composes with whatever comes next.
        let mut band = c.p_disconnect;
        if roll < band {
            self.stats.disconnects += 1;
            return Injected::WriteThenDisconnect(self.with_pocket(Vec::new()));
        }
        band += c.p_corrupt;
        if roll < band {
            self.stats.corruptions += 1;
            let mut bad = frame;
            if !bad.is_empty() {
                let at = self.rng.uniform_index(bad.len());
                let mut flip = 0;
                while flip == 0 {
                    flip = (self.rng.next_u64() & 0xFF) as u8;
                }
                bad[at] ^= flip;
            }
            // Corruption desyncs the stream: the server will close, so
            // model the aftermath as a disconnect too.
            return Injected::WriteThenDisconnect(self.with_pocket(vec![bad]));
        }
        band += c.p_truncate;
        if roll < band {
            self.stats.truncations += 1;
            let keep = self.rng.uniform_index(frame.len().max(1));
            let partial = frame[..keep].to_vec();
            return Injected::WriteThenDisconnect(self.with_pocket(vec![partial]));
        }
        band += c.p_duplicate;
        if roll < band {
            self.stats.duplicates += 1;
            return Injected::Write(self.with_pocket(vec![frame.clone(), frame]));
        }
        band += c.p_reorder;
        if roll < band {
            self.stats.reorders += 1;
            // Hold this frame; it rides behind the next one.
            let chunks = self.with_pocket(Vec::new());
            self.pocket = Some(frame);
            return Injected::Write(chunks);
        }
        band += c.p_stall;
        if roll < band {
            self.stats.stalls += 1;
            return Injected::StallThenWrite(c.stall_ms, self.with_pocket(vec![frame]));
        }
        self.stats.clean += 1;
        Injected::Write(self.with_pocket(vec![frame]))
    }

    /// Prepend a pocketed (reordered) frame to `chunks`, completing the
    /// swap: held frame goes out now, after the frame that overtook it.
    fn with_pocket(&mut self, chunks: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        match self.pocket.take() {
            Some(held) => {
                let mut out = chunks;
                out.push(held);
                out
            }
            None => chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(seed: u64, frames: usize) -> (ChaosStats, Vec<Injected>) {
        let mut t = FaultyTransport::new(ChaosConfig::moderate(seed));
        let out: Vec<Injected> =
            (0..frames).map(|i| t.inject(vec![i as u8; 16])).collect();
        (t.stats(), out)
    }

    #[test]
    fn schedules_replay_bit_identically_from_the_seed() {
        let (stats_a, out_a) = drive(42, 500);
        let (stats_b, out_b) = drive(42, 500);
        assert_eq!(stats_a, stats_b);
        assert_eq!(out_a, out_b);
        let (stats_c, _) = drive(43, 500);
        assert_ne!(stats_a, stats_c, "different seed, different schedule");
    }

    #[test]
    fn moderate_mix_exercises_every_fault_class() {
        let (stats, _) = drive(7, 4000);
        assert!(stats.clean > 0);
        assert!(stats.disconnects > 0);
        assert!(stats.corruptions > 0);
        assert!(stats.truncations > 0);
        assert!(stats.duplicates > 0);
        assert!(stats.reorders > 0);
        assert!(stats.stalls > 0);
    }

    #[test]
    fn quiet_config_passes_everything_through() {
        let mut t = FaultyTransport::new(ChaosConfig::quiet(1));
        for i in 0..100u8 {
            match t.inject(vec![i; 8]) {
                Injected::Write(chunks) => assert_eq!(chunks, vec![vec![i; 8]]),
                other => panic!("quiet transport injected {other:?}"),
            }
        }
        assert_eq!(t.stats().clean, 100);
    }

    #[test]
    fn reordered_frame_is_never_lost() {
        // Drive a reorder-only schedule: every frame swaps with its
        // successor, and the total byte count out equals the bytes in.
        let mut cfg = ChaosConfig::quiet(11);
        cfg.p_reorder = 1.0;
        let mut t = FaultyTransport::new(cfg);
        let mut sent = 0usize;
        for i in 0..10u8 {
            match t.inject(vec![i; 4]) {
                Injected::Write(chunks) => sent += chunks.len(),
                other => panic!("unexpected {other:?}"),
            }
        }
        sent += usize::from(t.take_pocket().is_some());
        assert_eq!(sent, 10, "every offered frame eventually leaves");
    }
}
