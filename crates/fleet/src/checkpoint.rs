//! Crash-safe session persistence.
//!
//! A checkpoint is one JSON document (`voltsense-fleet-checkpoint-v1`)
//! per `(tenant, chip)` session holding the full OLS model *and* the
//! monitor's alarm state machine, so a restarted server resumes alarms
//! without refitting — including a latched alarm, which must survive
//! `kill -9`.
//!
//! Numbers that must round-trip bit-exactly are written carefully:
//! `f64`s use Rust's shortest round-trip `Display` (the same contract as
//! `telemetry`'s metric export), and `u64`s (ids, counters) are written
//! as JSON *strings* because the in-tree parser reads numbers as `f64`,
//! which silently rounds above 2^53.
//!
//! Writes are atomic (`.tmp` + rename) so a crash mid-write leaves the
//! previous checkpoint intact, never a torn file.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use voltsense_core::{EmergencyMonitor, MonitorCheckpoint, MonitorStats, VoltageMapModel};
use voltsense_linalg::Matrix;
use voltsense_telemetry::json::{self, Value};

use crate::session::SessionKey;

/// Schema tag carried by every checkpoint document.
pub const SCHEMA: &str = "voltsense-fleet-checkpoint-v1";

/// Why a checkpoint could not be loaded or stored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (write, rename, read).
    Io(std::io::Error),
    /// The file is not valid JSON.
    Parse(json::ParseError),
    /// The document is JSON but not a valid v1 checkpoint.
    Schema(String),
    /// The checkpointed model or monitor failed re-validation.
    Invalid(voltsense_core::CoreError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint io: {e}"),
            Self::Parse(e) => write!(f, "checkpoint is not valid JSON: {e}"),
            Self::Schema(what) => write!(f, "checkpoint schema violation: {what}"),
            Self::Invalid(e) => write!(f, "checkpoint failed re-validation: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// File name for one session's checkpoint inside the checkpoint dir.
pub fn file_name(key: SessionKey) -> String {
    format!("tenant_{}_chip_{}.json", key.tenant, key.chip)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Serialize a session (model + monitor state) to the v1 JSON document.
pub fn to_json(key: SessionKey, monitor: &EmergencyMonitor) -> String {
    let model = monitor.model();
    let fit = model.linear_fit();
    let cp = monitor.checkpoint();
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"schema\":\"{SCHEMA}\",\"tenant\":\"{}\",\"chip\":\"{}\",",
        key.tenant, key.chip
    );
    let _ = write!(
        out,
        "\"threshold\":{},\"persistence\":{},\"release_margin\":{},\"consecutive\":{},\"asserted\":{},",
        fmt_f64(cp.threshold),
        cp.persistence,
        fmt_f64(cp.release_margin),
        cp.consecutive,
        cp.asserted
    );
    let s = cp.stats;
    let _ = write!(
        out,
        "\"stats\":{{\"samples\":\"{}\",\"alarmed_samples\":\"{}\",\"alarm_events\":\"{}\",\"gated_readings\":\"{}\",\"sensors_failed\":\"{}\",\"health_strikes\":\"{}\",\"hot_swaps\":\"{}\"}},",
        s.samples,
        s.alarmed_samples,
        s.alarm_events,
        s.gated_readings,
        s.sensors_failed,
        s.health_strikes,
        s.hot_swaps
    );
    out.push_str("\"model\":{\"sensors\":[");
    for (i, s) in model.sensor_indices().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{s}");
    }
    let _ = write!(
        out,
        "],\"num_candidates\":{},\"rows\":{},\"cols\":{},\"coefficients\":[",
        model.num_candidates(),
        fit.coefficients.rows(),
        fit.coefficients.cols()
    );
    let mut first = true;
    for i in 0..fit.coefficients.rows() {
        for j in 0..fit.coefficients.cols() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&fmt_f64(fit.coefficients[(i, j)]));
        }
    }
    out.push_str("],\"intercept\":[");
    for (i, v) in fit.intercept.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(*v));
    }
    let _ = write!(out, "],\"rms_residual\":{}}}}}", fmt_f64(fit.rms_residual));
    out
}

fn need<'a>(doc: &'a Value, key: &str) -> Result<&'a Value, CheckpointError> {
    doc.get(key).ok_or_else(|| CheckpointError::Schema(format!("missing field `{key}`")))
}

fn need_f64(doc: &Value, key: &str) -> Result<f64, CheckpointError> {
    need(doc, key)?
        .as_f64()
        .ok_or_else(|| CheckpointError::Schema(format!("field `{key}` is not a number")))
}

fn need_usize(doc: &Value, key: &str) -> Result<usize, CheckpointError> {
    let v = need_f64(doc, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(CheckpointError::Schema(format!("field `{key}` is not a non-negative integer")));
    }
    Ok(v as usize)
}

/// `u64`s are stored as strings (see module docs); parse one back.
fn need_u64_str(doc: &Value, key: &str) -> Result<u64, CheckpointError> {
    need(doc, key)?
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CheckpointError::Schema(format!("field `{key}` is not a u64 string")))
}

fn need_bool(doc: &Value, key: &str) -> Result<bool, CheckpointError> {
    match need(doc, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(CheckpointError::Schema(format!("field `{key}` is not a bool"))),
    }
}

fn f64_array(doc: &Value, key: &str) -> Result<Vec<f64>, CheckpointError> {
    need(doc, key)?
        .as_array()
        .ok_or_else(|| CheckpointError::Schema(format!("field `{key}` is not an array")))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| CheckpointError::Schema(format!("`{key}` holds a non-number")))
        })
        .collect()
}

/// Parse a v1 document back into its session key and a live monitor.
///
/// The model and state machine are re-validated on the way in (via
/// [`VoltageMapModel::from_parts`] and [`EmergencyMonitor::restore`]), so
/// a hand-edited or torn checkpoint yields a typed error, never a
/// nonsense monitor.
pub fn from_json(text: &str) -> Result<(SessionKey, EmergencyMonitor), CheckpointError> {
    let doc = json::parse(text).map_err(CheckpointError::Parse)?;
    match need(&doc, "schema")?.as_str() {
        Some(SCHEMA) => {}
        other => {
            return Err(CheckpointError::Schema(format!(
                "expected schema {SCHEMA:?}, got {other:?}"
            )))
        }
    }
    let key = SessionKey {
        tenant: need_u64_str(&doc, "tenant")?,
        chip: need_u64_str(&doc, "chip")?,
    };
    let model_doc = need(&doc, "model")?;
    let sensors = need(model_doc, "sensors")?
        .as_array()
        .ok_or_else(|| CheckpointError::Schema("`sensors` is not an array".into()))?
        .iter()
        .map(|v| match v.as_f64() {
            Some(x) if x >= 0.0 && x.fract() == 0.0 => Ok(x as usize),
            _ => Err(CheckpointError::Schema("`sensors` holds a non-index".into())),
        })
        .collect::<Result<Vec<usize>, _>>()?;
    let rows = need_usize(model_doc, "rows")?;
    let cols = need_usize(model_doc, "cols")?;
    let flat = f64_array(model_doc, "coefficients")?;
    if flat.len() != rows.saturating_mul(cols) {
        return Err(CheckpointError::Schema(format!(
            "coefficients array holds {} values for a {rows}x{cols} matrix",
            flat.len()
        )));
    }
    let coefficients =
        Matrix::from_vec(rows, cols, flat).map_err(|e| CheckpointError::Schema(e.to_string()))?;
    let model = VoltageMapModel::from_parts(
        sensors,
        need_usize(model_doc, "num_candidates")?,
        coefficients,
        f64_array(model_doc, "intercept")?,
        need_f64(model_doc, "rms_residual")?,
    )
    .map_err(CheckpointError::Invalid)?;
    let stats_doc = need(&doc, "stats")?;
    let checkpoint = MonitorCheckpoint {
        threshold: need_f64(&doc, "threshold")?,
        persistence: need_usize(&doc, "persistence")?,
        release_margin: need_f64(&doc, "release_margin")?,
        consecutive: need_usize(&doc, "consecutive")?,
        asserted: need_bool(&doc, "asserted")?,
        stats: MonitorStats {
            samples: need_u64_str(stats_doc, "samples")?,
            alarmed_samples: need_u64_str(stats_doc, "alarmed_samples")?,
            alarm_events: need_u64_str(stats_doc, "alarm_events")?,
            gated_readings: need_u64_str(stats_doc, "gated_readings")?,
            sensors_failed: need_u64_str(stats_doc, "sensors_failed")?,
            health_strikes: need_u64_str(stats_doc, "health_strikes")?,
            hot_swaps: need_u64_str(stats_doc, "hot_swaps")?,
        },
    };
    let monitor =
        EmergencyMonitor::restore(model, &checkpoint).map_err(CheckpointError::Invalid)?;
    Ok((key, monitor))
}

/// Atomically write one session's checkpoint into `dir` (created if
/// missing): write `<name>.tmp`, then rename over the final path.
pub fn store(dir: &Path, key: SessionKey, monitor: &EmergencyMonitor) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name(key));
    let tmp = dir.join(format!("{}.tmp", file_name(key)));
    std::fs::write(&tmp, to_json(key, monitor))?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Load the checkpoint for `key` from `dir`, if one exists.
///
/// `Ok(None)` means "no checkpoint on disk" (a fresh session); a present
/// but unreadable/invalid file is an error the caller must surface.
pub fn load(dir: &Path, key: SessionKey) -> Result<Option<EmergencyMonitor>, CheckpointError> {
    let path = dir.join(file_name(key));
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let (stored_key, monitor) = from_json(&text)?;
    if stored_key != key {
        return Err(CheckpointError::Schema(format!(
            "checkpoint {path:?} is for tenant {} chip {}, expected tenant {} chip {}",
            stored_key.tenant, stored_key.chip, key.tenant, key.chip
        )));
    }
    Ok(Some(monitor))
}
