//! Fleet client / load generator with seeded retry-backoff and optional
//! chaos injection.
//!
//! [`FleetClient`] speaks the frame protocol for one tenant. All sends
//! pass through a [`FaultyTransport`], so the same code path serves both
//! the well-behaved control client (a [`ChaosConfig::quiet`] schedule)
//! and the chaos load generator. Transport failures — real or injected —
//! trigger reconnect with exponential backoff and jittered delays (the
//! jitter comes from the same seeded RNG family, so runs replay), and
//! every registered chip is re-`Hello`ed after a reconnect, recording
//! whether the server resumed it and whether its alarm survived.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use voltsense_telemetry::trace;
use voltsense_workload::GaussianRng;

use crate::chaos::{ChaosConfig, ChaosStats, FaultyTransport, Injected};
use crate::frame::{Frame, FrameDecoder, FrameError, DEFAULT_MAX_FRAME};

/// Reconnect/backoff tuning.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First backoff delay.
    pub base_ms: u64,
    /// Backoff ceiling.
    pub max_ms: u64,
    /// Connection attempts before giving up.
    pub max_retries: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { base_ms: 10, max_ms: 500, max_retries: 20 }
    }
}

impl RetryPolicy {
    /// Exponential backoff with jitter in `[0.5, 1.0]` of the raw delay.
    fn delay(&self, attempt: usize, rng: &mut GaussianRng) -> Duration {
        let raw = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16) as u32)
            .min(self.max_ms);
        Duration::from_millis((raw as f64 * (0.5 + 0.5 * rng.uniform())).round() as u64)
    }
}

/// Why a client operation failed for good (retries exhausted or the
/// server refused in a way retrying cannot fix).
#[derive(Debug)]
pub enum ClientError {
    /// Could not (re)connect within the retry budget.
    ConnectFailed(std::io::Error),
    /// The server answered with a terminal error frame.
    Refused {
        /// [`crate::frame::error_code`] discriminant.
        code: u8,
        /// Server-provided detail.
        message: String,
    },
    /// Waited past the deadline for an expected response.
    TimedOut,
    /// The *server's* bytes failed to decode — a real protocol bug, not
    /// injected chaos (chaos only touches the outbound path).
    BadFrame(FrameError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ConnectFailed(e) => write!(f, "connect failed after retries: {e}"),
            Self::Refused { code, message } => write!(f, "server refused (code {code}): {message}"),
            Self::TimedOut => write!(f, "timed out waiting for a response"),
            Self::BadFrame(e) => write!(f, "undecodable server frame: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Result of a `Hello` handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloStatus {
    /// Server resumed existing state (memory or checkpoint) vs built fresh.
    pub resumed: bool,
    /// Alarm latched at handshake time.
    pub alarmed: bool,
}

/// Client-side counters for soak reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Reconnects performed (after injected or real transport failures).
    pub reconnects: u64,
    /// Readings frames offered to the transport.
    pub sends: u64,
    /// Decision frames received.
    pub decisions: u64,
    /// Busy frames received (server shedding).
    pub busys: u64,
    /// Error frames received.
    pub errors: u64,
}

/// One tenant's connection to the fleet server.
pub struct FleetClient {
    addr: SocketAddr,
    tenant: u64,
    retry: RetryPolicy,
    transport: FaultyTransport,
    rng: GaussianRng,
    stream: Option<TcpStream>,
    decoder: FrameDecoder,
    inbox: VecDeque<Frame>,
    registered: BTreeSet<u64>,
    /// Bumped on every connection drop; lets waiters notice that a
    /// response they expect can no longer arrive.
    generation: u64,
    /// Last handshake result per chip (tests read latch survival here).
    pub last_hello: BTreeMap<u64, HelloStatus>,
    stats: ClientStats,
}

impl FleetClient {
    /// Client for `tenant` against `addr`, with chaos per `chaos`.
    pub fn new(addr: SocketAddr, tenant: u64, retry: RetryPolicy, chaos: ChaosConfig) -> Self {
        Self {
            addr,
            tenant,
            retry,
            transport: FaultyTransport::new(chaos),
            rng: GaussianRng::seed_from_u64(chaos.seed ^ tenant.rotate_left(17)),
            stream: None,
            decoder: FrameDecoder::new(DEFAULT_MAX_FRAME),
            inbox: VecDeque::new(),
            registered: BTreeSet::new(),
            generation: 0,
            last_hello: BTreeMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// The tenant this client authenticates as.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Client-side counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Chaos-injection counters.
    pub fn chaos_stats(&self) -> ChaosStats {
        self.transport.stats()
    }

    /// Open (or reuse) the connection, with backoff on failure.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut last_err = None;
        for attempt in 0..self.retry.max_retries {
            match TcpStream::connect_timeout(&self.addr, Duration::from_secs(2)) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
                    self.stream = Some(stream);
                    self.decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
                    return Ok(());
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(self.retry.delay(attempt, &mut self.rng));
                }
            }
        }
        Err(ClientError::ConnectFailed(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::Other, "no attempt made")
        })))
    }

    fn drop_connection(&mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        self.generation += 1;
        self.stats.reconnects += 1;
    }

    /// Push one encoded frame through the chaos transport. `Ok(false)`
    /// means the (possibly injected) connection dropped — the caller
    /// retries after `recover`.
    fn transmit(&mut self, encoded: Vec<u8>) -> Result<bool, ClientError> {
        self.ensure_connected()?;
        let action = self.transport.inject(encoded);
        let (chunks, disconnect_after, stall) = match action {
            Injected::Write(chunks) => (chunks, false, 0),
            Injected::WriteThenDisconnect(chunks) => (chunks, true, 0),
            Injected::StallThenWrite(ms, chunks) => (chunks, false, ms),
        };
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }
        let stream = self.stream.as_mut().expect("ensure_connected sets the stream");
        for chunk in &chunks {
            if stream.write_all(chunk).and_then(|()| stream.flush()).is_err() {
                self.drop_connection();
                return Ok(false);
            }
        }
        if disconnect_after {
            self.drop_connection();
            return Ok(false);
        }
        Ok(true)
    }

    /// Drop the connection on purpose (chaos tests use this to pin latch
    /// survival across a mid-stream disconnect + reconnect). The next
    /// operation reconnects and re-handshakes.
    pub fn disconnect(&mut self) {
        if self.stream.is_some() {
            self.drop_connection();
        }
    }

    /// Re-`Hello` every registered chip (after a reconnect).
    fn recover(&mut self) -> Result<(), ClientError> {
        let chips: Vec<u64> = self.registered.iter().copied().collect();
        for chip in chips {
            self.hello(chip)?;
        }
        Ok(())
    }

    /// Handshake one chip, retrying through injected failures. Records
    /// the ack in [`last_hello`](Self::last_hello).
    pub fn hello(&mut self, chip: u64) -> Result<HelloStatus, ClientError> {
        for _ in 0..self.retry.max_retries {
            let sent =
                self.transmit(Frame::Hello { tenant: self.tenant, chip }.encode())?;
            if !sent {
                continue;
            }
            // Short ack wait: chaos can strand a Hello (e.g. pocketed by
            // a reorder), and the retry loop resends far cheaper than a
            // long timeout waits.
            match self.wait_for(Duration::from_millis(500), |f| {
                matches!(f, Frame::HelloAck { chip: c, .. } if *c == chip)
                    || matches!(f, Frame::Error { chip: c, .. } if *c == chip)
            }) {
                Ok(Frame::HelloAck { resumed, alarmed, .. }) => {
                    let status = HelloStatus { resumed, alarmed };
                    self.registered.insert(chip);
                    self.last_hello.insert(chip, status);
                    return Ok(status);
                }
                Ok(Frame::Error { code, message, .. }) => {
                    return Err(ClientError::Refused { code, message });
                }
                Ok(_) => unreachable!("wait_for predicate"),
                Err(ClientError::TimedOut) => continue, // ack lost to chaos; retry
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::TimedOut)
    }

    /// Send one readings batch, fire-and-forget: decisions arrive later
    /// via [`drain_responses`](Self::drain_responses). Reconnects (and
    /// re-hellos every registered chip) when the transport drops.
    pub fn send_readings(
        &mut self,
        chip: u64,
        seq: u64,
        values: &[f64],
    ) -> Result<(), ClientError> {
        self.stats.sends += 1;
        // Stamp the deterministic trace ID at the edge, so the span the
        // server records is attributable to this exact (tenant, chip,
        // seq) — and so a chaos-duplicated frame carries the *same* ID
        // and dedupes server-side instead of double-counting.
        let trace = trace::enabled().then(|| trace::trace_id(self.tenant, chip, seq));
        let frame = Frame::Readings { chip, seq, trace, values: values.to_vec() }.encode();
        let sent = self.transmit(frame)?;
        if !sent {
            self.recover()?;
        }
        Ok(())
    }

    /// Read whatever responses are available within `wait`, tallying them
    /// into [`stats`](Self::stats); returns them oldest-first.
    pub fn drain_responses(&mut self, wait: Duration) -> Vec<Frame> {
        let deadline = Instant::now() + wait;
        loop {
            match self.pump() {
                Ok(()) => {}
                Err(_) => break, // connection gone; sends will reconnect
            }
            if !self.inbox.is_empty() || Instant::now() >= deadline {
                break;
            }
        }
        let frames: Vec<Frame> = self.inbox.drain(..).collect();
        for f in &frames {
            match f {
                Frame::Decision { .. } => self.stats.decisions += 1,
                Frame::Busy { .. } => self.stats.busys += 1,
                Frame::Error { .. } => self.stats.errors += 1,
                _ => {}
            }
        }
        frames
    }

    /// Block until a frame matching `pred` arrives (other frames queue in
    /// the inbox) or `timeout` passes. Gives up early if the connection
    /// drops mid-wait: a response to a request sent on the old connection
    /// can never arrive on the new one, so waiting the timeout out would
    /// only slow the caller's retry loop down.
    pub fn wait_for(
        &mut self,
        timeout: Duration,
        pred: impl Fn(&Frame) -> bool,
    ) -> Result<Frame, ClientError> {
        let deadline = Instant::now() + timeout;
        let generation = self.generation;
        loop {
            if let Some(at) = self.inbox.iter().position(&pred) {
                return Ok(self.inbox.remove(at).expect("position just found"));
            }
            if Instant::now() >= deadline || self.generation != generation {
                return Err(ClientError::TimedOut);
            }
            self.pump()?;
        }
    }

    /// One bounded read into the decoder, moving frames to the inbox.
    fn pump(&mut self) -> Result<(), ClientError> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("ensure_connected sets the stream");
        let mut buf = [0u8; 4096];
        match stream.read(&mut buf) {
            Ok(0) => {
                self.drop_connection();
            }
            Ok(n) => {
                self.decoder.push(&buf[..n]);
                loop {
                    match self.decoder.next() {
                        Ok(Some(frame)) => self.inbox.push_back(frame),
                        Ok(None) => break,
                        // Server bytes never carry injected chaos: a
                        // decode failure here is a genuine protocol bug.
                        Err(e) => return Err(ClientError::BadFrame(e)),
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                self.drop_connection();
            }
        }
        Ok(())
    }
}
