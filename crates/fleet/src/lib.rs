//! Fault-hardened multi-tenant fleet monitor serving.
//!
//! ROADMAP item 1's serving skeleton: run one [`EmergencyMonitor`] per
//! chip for many tenants at once, behind a TCP protocol and a failure
//! posture designed for hostile conditions. The paper's statistical
//! machinery decides *what* to alarm on; this crate makes sure those
//! alarms keep flowing — and stay latched — while clients stall, lie,
//! disconnect, overload the server, or the process itself is killed.
//!
//! The layers, bottom up:
//!
//! * [`frame`] — length-prefixed, checksummed wire framing whose decoder
//!   never panics and never allocates from an attacker-controlled length.
//! * [`session`] — per-`(tenant, chip)` monitor sessions with a bounded
//!   queue and an explicit backpressure → shed → reject → recover ladder.
//! * [`checkpoint`] — crash-safe JSON persistence of model + alarm state,
//!   so a restart resumes monitoring without refitting.
//! * [`server`] — accept loop, sharded dispatch over `voltsense-parallel`,
//!   per-session panic quarantine, idle eviction, graceful vs crash stop.
//! * [`chaos`] / [`client`] — the seeded, replayable adversary: a client
//!   whose transport injects disconnects, corruption, truncation,
//!   duplication, reordering, and stalls, with backoff-with-jitter retry.
//!
//! The properties the chaos suite pins (see `tests/chaos_soak.rs`): no
//! chaos schedule crashes the server, reaches another tenant's session,
//! or de-asserts a latched alarm.
//!
//! [`EmergencyMonitor`]: voltsense_core::EmergencyMonitor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod client;
pub mod frame;
pub mod metrics;
pub mod server;
pub mod session;

pub use chaos::{ChaosConfig, ChaosStats, FaultyTransport};
pub use client::{ClientError, ClientStats, FleetClient, HelloStatus, RetryPolicy};
pub use frame::{Frame, FrameDecoder, FrameError};
pub use server::{FleetConfig, FleetServer, FleetStats, SessionFactory};
pub use session::{
    ChipMonitor, Drained, LadderConfig, PendingTrace, Session, SessionKey, SessionState,
    TraceDraft,
};
