//! Per-chip monitor sessions and the ingestion degradation ladder.
//!
//! A session owns one [`ChipMonitor`] (in production an
//! [`EmergencyMonitor`]) plus a bounded queue of readings awaiting
//! processing. Ingestion degrades in explicit, counted steps instead of
//! growing without bound:
//!
//! 1. **Accepting** — readings are queued; the shard drains them.
//! 2. **Shedding** — the queue is full: the *oldest* queued batch is
//!    dropped to admit the new one (`fleet.shed_total`). Newest-wins,
//!    because an emergency monitor cares about the current voltage, not
//!    history; decisions made after a shed carry the `DEGRADED` flag.
//! 3. **Rejecting** — sustained overload (a shed streak reaching the
//!    configured threshold): readings are refused outright with a
//!    [`Frame::Busy`] backoff hint (`fleet.rejected_total`) until the
//!    drain catches up to the low watermark (`fleet.recoveries_total`).
//! 4. **Quarantined** — the monitor panicked. The session is terminal,
//!    answers every frame with an error, and never touches its neighbors
//!    (`fleet.quarantined_total`); the panic payload went to
//!    `telemetry::incident`.
//!
//! Sessions are keyed by `(tenant, chip)`: two tenants naming the same
//! chip id get disjoint sessions by construction, which is the
//! cross-tenant isolation property the chaos suite pins.

use std::collections::VecDeque;
use std::time::Instant;

use voltsense_core::{CoreError, EmergencyMonitor, MonitorDecision};

use crate::frame::{decision_flags, Frame};

/// Session identity: tenant first, so tenant isolation is structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionKey {
    /// Owning tenant.
    pub tenant: u64,
    /// Chip within that tenant's fleet.
    pub chip: u64,
}

/// What a session needs from its monitor. `EmergencyMonitor` is the real
/// implementation; tests substitute panicking or recording monitors to
/// pin quarantine behavior without a real model.
pub trait ChipMonitor: Send {
    /// Feed one batch of sensor readings; returns the alarm decision.
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError>;
    /// Current latched-alarm state.
    fn is_alarmed(&self) -> bool;
    /// Serialized checkpoint document, or `None` when this monitor kind
    /// does not persist (a restarted server then starts it fresh).
    fn checkpoint_json(&self, key: SessionKey) -> Option<String>;
}

impl ChipMonitor for EmergencyMonitor {
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        EmergencyMonitor::observe(self, readings)
    }

    fn is_alarmed(&self) -> bool {
        EmergencyMonitor::is_alarmed(self)
    }

    fn checkpoint_json(&self, key: SessionKey) -> Option<String> {
        Some(crate::checkpoint::to_json(key, self))
    }
}

/// Ladder position. See the module docs for the transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Queueing normally.
    Accepting,
    /// Dropping oldest to admit newest.
    Shedding,
    /// Refusing readings with a backoff hint.
    Rejecting,
    /// Terminal: the monitor panicked.
    Quarantined,
}

/// Knobs for one session's queue and ladder.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Most readings batches queued before shedding starts.
    pub queue_capacity: usize,
    /// Consecutive sheds that escalate Shedding → Rejecting.
    pub shed_streak_threshold: usize,
    /// Backoff hint sent with [`Frame::Busy`] while Rejecting.
    pub busy_retry_ms: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self { queue_capacity: 64, shed_streak_threshold: 8, busy_retry_ms: 50 }
    }
}

/// Counters one session accumulates (also mirrored into global telemetry
/// by the server; these per-session copies feed tests and checkpoints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Readings batches accepted into the queue.
    pub accepted: u64,
    /// Batches dropped oldest-first under overload.
    pub shed: u64,
    /// Batches refused while Rejecting.
    pub rejected: u64,
    /// Rejecting → Accepting recoveries.
    pub recoveries: u64,
    /// Decisions produced by the monitor.
    pub decisions: u64,
}

/// How the session answered one offered readings batch.
#[derive(Debug, PartialEq)]
pub enum Offer {
    /// Queued; a decision will follow from the shard drain.
    Queued,
    /// Queued, but an older batch was dropped to make room.
    QueuedAfterShed,
    /// Refused; the caller should relay the contained `Busy` frame.
    Rejected(Frame),
    /// The session is quarantined; relay the contained error frame.
    Quarantined(Frame),
}

/// One `(tenant, chip)` monitor session.
pub struct Session {
    key: SessionKey,
    monitor: Box<dyn ChipMonitor>,
    queue: VecDeque<(u64, Vec<f64>)>,
    ladder: LadderConfig,
    state: SessionState,
    shed_streak: usize,
    /// Set when load was shed since the last decision; the next decision
    /// carries `DEGRADED` so the client knows its view has gaps.
    degraded: bool,
    counters: SessionCounters,
    last_activity: Instant,
    samples_since_checkpoint: usize,
    /// Set when the alarm edge or sample count makes a checkpoint due;
    /// cleared by the server once it persists.
    checkpoint_due: bool,
}

impl Session {
    /// New session around `monitor`.
    pub fn new(key: SessionKey, monitor: Box<dyn ChipMonitor>, ladder: LadderConfig) -> Self {
        Self {
            key,
            monitor,
            queue: VecDeque::new(),
            ladder,
            state: SessionState::Accepting,
            shed_streak: 0,
            degraded: false,
            counters: SessionCounters::default(),
            last_activity: Instant::now(),
            samples_since_checkpoint: 0,
            checkpoint_due: false,
        }
    }

    /// Session identity.
    pub fn key(&self) -> SessionKey {
        self.key
    }

    /// Current ladder position.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Per-session counters so far.
    pub fn counters(&self) -> SessionCounters {
        self.counters
    }

    /// Latched-alarm state of the underlying monitor.
    pub fn is_alarmed(&self) -> bool {
        self.monitor.is_alarmed()
    }

    /// Instant of the last offer or drain touching this session.
    pub fn last_activity(&self) -> Instant {
        self.last_activity
    }

    /// Whether the checkpoint policy wants this session persisted now.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_due
    }

    /// Serialized checkpoint, resetting the due flag and sample counter.
    pub fn take_checkpoint(&mut self) -> Option<String> {
        self.checkpoint_due = false;
        self.samples_since_checkpoint = 0;
        self.monitor.checkpoint_json(self.key)
    }

    /// Batches currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Offer one readings batch to the ladder.
    pub fn offer(&mut self, seq: u64, values: Vec<f64>) -> Offer {
        self.last_activity = Instant::now();
        match self.state {
            SessionState::Quarantined => Offer::Quarantined(self.quarantine_frame()),
            SessionState::Rejecting => {
                self.counters.rejected += 1;
                Offer::Rejected(Frame::Busy {
                    chip: self.key.chip,
                    retry_after_ms: self.ladder.busy_retry_ms,
                })
            }
            SessionState::Accepting | SessionState::Shedding => {
                if self.queue.len() < self.ladder.queue_capacity {
                    self.queue.push_back((seq, values));
                    self.counters.accepted += 1;
                    return Offer::Queued;
                }
                // Full: drop oldest, admit newest, count the shed.
                self.queue.pop_front();
                self.queue.push_back((seq, values));
                self.counters.accepted += 1;
                self.counters.shed += 1;
                self.shed_streak += 1;
                self.degraded = true;
                if self.shed_streak >= self.ladder.shed_streak_threshold {
                    self.state = SessionState::Rejecting;
                } else {
                    self.state = SessionState::Shedding;
                }
                Offer::QueuedAfterShed
            }
        }
    }

    /// Drain up to `budget` queued batches through the monitor, returning
    /// the response frames to relay (decisions, or one error frame if the
    /// monitor rejects its input).
    ///
    /// The *caller* is responsible for panic containment: run this inside
    /// `catch_unwind` and call [`quarantine`](Self::quarantine) if it
    /// unwinds. (The session cannot catch its own panic — the unwind
    /// leaves `self` mid-mutation, which is exactly what quarantine is
    /// for.)
    pub fn drain(&mut self, budget: usize, checkpoint_interval: usize) -> Vec<Frame> {
        let mut out = Vec::new();
        for _ in 0..budget {
            let Some((seq, values)) = self.queue.pop_front() else { break };
            self.last_activity = Instant::now();
            let was_alarmed = self.monitor.is_alarmed();
            match self.monitor.observe(&values) {
                Ok(decision) => {
                    self.counters.decisions += 1;
                    self.samples_since_checkpoint += 1;
                    let mut flags = 0u8;
                    if decision.alarm {
                        flags |= decision_flags::ALARM;
                    }
                    if decision.rising_edge {
                        flags |= decision_flags::RISING;
                    }
                    if self.degraded {
                        flags |= decision_flags::DEGRADED;
                        self.degraded = false;
                    }
                    // Alarm edges are the durability-critical moments: a
                    // kill -9 after this decision must not forget them.
                    if decision.alarm != was_alarmed
                        || decision.rising_edge
                        || self.samples_since_checkpoint >= checkpoint_interval
                    {
                        self.checkpoint_due = true;
                    }
                    out.push(Frame::Decision {
                        chip: self.key.chip,
                        seq,
                        flags,
                        predicted_min: decision.predicted_min,
                    });
                }
                Err(e) => {
                    out.push(Frame::Error {
                        code: crate::frame::error_code::REJECTED,
                        chip: self.key.chip,
                        message: e.to_string(),
                    });
                }
            }
        }
        // Draining below the low watermark de-escalates the ladder.
        if self.state != SessionState::Quarantined
            && self.queue.len() <= self.ladder.queue_capacity / 2
        {
            if self.state == SessionState::Rejecting {
                self.counters.recoveries += 1;
            }
            if self.state != SessionState::Accepting {
                self.state = SessionState::Accepting;
                self.shed_streak = 0;
            }
        }
        out
    }

    /// Mark the session terminally quarantined (the monitor panicked).
    pub fn quarantine(&mut self) {
        self.state = SessionState::Quarantined;
        self.queue.clear();
    }

    /// The error frame a quarantined session answers everything with.
    pub fn quarantine_frame(&self) -> Frame {
        Frame::Error {
            code: crate::frame::error_code::QUARANTINED,
            chip: self.key.chip,
            message: "session quarantined after a monitor panic".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Monitor double: records inputs, alarms when told, never panics.
    struct ScriptedMonitor {
        alarmed: bool,
        seen: usize,
    }

    impl ChipMonitor for ScriptedMonitor {
        fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
            self.seen += 1;
            if readings.first().copied().unwrap_or(1.0) < 0.8 {
                self.alarmed = true;
            }
            Ok(MonitorDecision {
                predicted_min: readings.first().copied().unwrap_or(1.0),
                worst_block: 0,
                alarm: self.alarmed,
                rising_edge: false,
                health: None,
            })
        }

        fn is_alarmed(&self) -> bool {
            self.alarmed
        }

        fn checkpoint_json(&self, _key: SessionKey) -> Option<String> {
            None
        }
    }

    fn session(capacity: usize, streak: usize) -> Session {
        Session::new(
            SessionKey { tenant: 1, chip: 1 },
            Box::new(ScriptedMonitor { alarmed: false, seen: 0 }),
            LadderConfig {
                queue_capacity: capacity,
                shed_streak_threshold: streak,
                busy_retry_ms: 25,
            },
        )
    }

    #[test]
    fn ladder_escalates_shed_then_reject_then_recovers() {
        let mut s = session(2, 3);
        assert_eq!(s.offer(0, vec![0.9]), Offer::Queued);
        assert_eq!(s.offer(1, vec![0.9]), Offer::Queued);
        // Queue full: three consecutive sheds escalate to Rejecting.
        assert_eq!(s.offer(2, vec![0.9]), Offer::QueuedAfterShed);
        assert_eq!(s.state(), SessionState::Shedding);
        assert_eq!(s.offer(3, vec![0.9]), Offer::QueuedAfterShed);
        assert_eq!(s.offer(4, vec![0.9]), Offer::QueuedAfterShed);
        assert_eq!(s.state(), SessionState::Rejecting);
        match s.offer(5, vec![0.9]) {
            Offer::Rejected(Frame::Busy { retry_after_ms, .. }) => assert_eq!(retry_after_ms, 25),
            other => panic!("unexpected: {other:?}"),
        }
        let c = s.counters();
        assert_eq!((c.shed, c.rejected), (3, 1));
        // Shed kept the *newest* batches: seqs 3 and 4.
        let frames = s.drain(16, usize::MAX);
        let seqs: Vec<u64> = frames
            .iter()
            .map(|f| match f {
                Frame::Decision { seq, flags, .. } => {
                    assert!(flags & decision_flags::DEGRADED != 0 || *seq == 4);
                    *seq
                }
                other => panic!("unexpected: {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4]);
        // Drained below the watermark: recovered, accepts again.
        assert_eq!(s.state(), SessionState::Accepting);
        assert_eq!(s.counters().recoveries, 1);
        assert_eq!(s.offer(6, vec![0.9]), Offer::Queued);
    }

    #[test]
    fn first_decision_after_a_shed_is_flagged_degraded() {
        let mut s = session(1, 10);
        s.offer(0, vec![0.9]);
        s.offer(1, vec![0.9]); // sheds seq 0
        let frames = s.drain(16, usize::MAX);
        match frames.as_slice() {
            [Frame::Decision { seq: 1, flags, .. }] => {
                assert_ne!(flags & decision_flags::DEGRADED, 0);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Degraded is edge-triggered, not sticky.
        s.offer(2, vec![0.9]);
        match s.drain(16, usize::MAX).as_slice() {
            [Frame::Decision { flags, .. }] => assert_eq!(flags & decision_flags::DEGRADED, 0),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn quarantined_session_is_terminal() {
        let mut s = session(4, 2);
        s.quarantine();
        assert_eq!(s.state(), SessionState::Quarantined);
        match s.offer(0, vec![0.9]) {
            Offer::Quarantined(Frame::Error { code, .. }) => {
                assert_eq!(code, crate::frame::error_code::QUARANTINED);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(s.drain(16, usize::MAX).is_empty());
    }

    #[test]
    fn checkpoint_due_on_sample_interval() {
        let mut s = session(8, 4);
        for seq in 0..3 {
            s.offer(seq, vec![0.9]);
        }
        s.drain(16, 3);
        assert!(s.checkpoint_due());
        s.take_checkpoint();
        assert!(!s.checkpoint_due());
    }
}
