//! Per-chip monitor sessions and the ingestion degradation ladder.
//!
//! A session owns one [`ChipMonitor`] (in production an
//! [`EmergencyMonitor`]) plus a bounded queue of readings awaiting
//! processing. Ingestion degrades in explicit, counted steps instead of
//! growing without bound:
//!
//! 1. **Accepting** — readings are queued; the shard drains them.
//! 2. **Shedding** — the queue is full: the *oldest* queued batch is
//!    dropped to admit the new one (`fleet.shed_total`). Newest-wins,
//!    because an emergency monitor cares about the current voltage, not
//!    history; decisions made after a shed carry the `DEGRADED` flag.
//! 3. **Rejecting** — sustained overload (a shed streak reaching the
//!    configured threshold): readings are refused outright with a
//!    [`Frame::Busy`] backoff hint (`fleet.rejected_total`) until the
//!    drain catches up to the low watermark (`fleet.recoveries_total`).
//! 4. **Quarantined** — the monitor panicked. The session is terminal,
//!    answers every frame with an error, and never touches its neighbors
//!    (`fleet.quarantined_total`); the panic payload went to
//!    `telemetry::incident`.
//!
//! Sessions are keyed by `(tenant, chip)`: two tenants naming the same
//! chip id get disjoint sessions by construction, which is the
//! cross-tenant isolation property the chaos suite pins.

use std::collections::VecDeque;
use std::time::Instant;

use voltsense_core::{CoreError, EmergencyMonitor, MonitorDecision};
use voltsense_telemetry::trace::TraceContext;

use crate::frame::{decision_flags, Frame};

/// Session identity: tenant first, so tenant isolation is structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionKey {
    /// Owning tenant.
    pub tenant: u64,
    /// Chip within that tenant's fleet.
    pub chip: u64,
}

/// What a session needs from its monitor. `EmergencyMonitor` is the real
/// implementation; tests substitute panicking or recording monitors to
/// pin quarantine behavior without a real model.
pub trait ChipMonitor: Send {
    /// Feed one batch of sensor readings; returns the alarm decision.
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError>;
    /// Current latched-alarm state.
    fn is_alarmed(&self) -> bool;
    /// Serialized checkpoint document, or `None` when this monitor kind
    /// does not persist (a restarted server then starts it fresh).
    fn checkpoint_json(&self, key: SessionKey) -> Option<String>;
}

impl ChipMonitor for EmergencyMonitor {
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        EmergencyMonitor::observe(self, readings)
    }

    fn is_alarmed(&self) -> bool {
        EmergencyMonitor::is_alarmed(self)
    }

    fn checkpoint_json(&self, key: SessionKey) -> Option<String> {
        Some(crate::checkpoint::to_json(key, self))
    }
}

/// Ladder position. See the module docs for the transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Queueing normally.
    Accepting,
    /// Dropping oldest to admit newest.
    Shedding,
    /// Refusing readings with a backoff hint.
    Rejecting,
    /// Terminal: the monitor panicked.
    Quarantined,
}

/// Knobs for one session's queue and ladder.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Most readings batches queued before shedding starts.
    pub queue_capacity: usize,
    /// Consecutive sheds that escalate Shedding → Rejecting.
    pub shed_streak_threshold: usize,
    /// Backoff hint sent with [`Frame::Busy`] while Rejecting.
    pub busy_retry_ms: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self { queue_capacity: 64, shed_streak_threshold: 8, busy_retry_ms: 50 }
    }
}

/// Counters one session accumulates (also mirrored into global telemetry
/// by the server; these per-session copies feed tests and checkpoints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Readings batches accepted into the queue.
    pub accepted: u64,
    /// Batches dropped oldest-first under overload.
    pub shed: u64,
    /// Batches refused while Rejecting.
    pub rejected: u64,
    /// Rejecting → Accepting recoveries.
    pub recoveries: u64,
    /// Decisions produced by the monitor.
    pub decisions: u64,
}

/// Trace state a reading carries from the moment it was decoded until the
/// shard drain picks it up: identity, the already-measured decode time,
/// and the enqueue instant (whose distance to the drain pass is the
/// `shard` stage — the queue wait).
#[derive(Debug, Clone, Copy)]
pub struct PendingTrace {
    /// Reading identity plus trace ID.
    pub ctx: TraceContext,
    /// Nanoseconds the server spent decoding the wire frame.
    pub decode_ns: u64,
    /// When the reading entered the session queue.
    pub enqueued: Instant,
}

/// Stage timings of one drained reading, short of the final `respond`
/// stage (only the caller writing the response frame can measure that;
/// it completes the record into the trace buffer).
#[derive(Debug, Clone, Copy)]
pub struct TraceDraft {
    /// Reading identity plus trace ID.
    pub ctx: TraceContext,
    /// Wire bytes → decoded frame.
    pub decode_ns: u64,
    /// Queue wait between enqueue and the drain pass.
    pub shard_ns: u64,
    /// Monitor observe (prediction) time.
    pub predict_ns: u64,
    /// Decision assembly time after the prediction.
    pub decide_ns: u64,
}

/// One response frame produced by [`Session::drain`], with the stage
/// timings of the reading that produced it when tracing is on.
#[derive(Debug)]
pub struct Drained {
    /// The frame to relay to the client.
    pub frame: Frame,
    /// Stage timings (decisions only; error frames carry `None`).
    pub trace: Option<TraceDraft>,
}

/// How the session answered one offered readings batch.
#[derive(Debug, PartialEq)]
pub enum Offer {
    /// Queued; a decision will follow from the shard drain.
    Queued,
    /// Queued, but an older batch was dropped to make room.
    QueuedAfterShed,
    /// Refused; the caller should relay the contained `Busy` frame.
    Rejected(Frame),
    /// The session is quarantined; relay the contained error frame.
    Quarantined(Frame),
}

/// One queued readings batch awaiting the shard drain.
struct QueuedBatch {
    seq: u64,
    values: Vec<f64>,
    trace: Option<PendingTrace>,
}

/// One `(tenant, chip)` monitor session.
pub struct Session {
    key: SessionKey,
    monitor: Box<dyn ChipMonitor>,
    queue: VecDeque<QueuedBatch>,
    ladder: LadderConfig,
    state: SessionState,
    shed_streak: usize,
    /// Set when load was shed since the last decision; the next decision
    /// carries `DEGRADED` so the client knows its view has gaps.
    degraded: bool,
    counters: SessionCounters,
    last_activity: Instant,
    samples_since_checkpoint: usize,
    /// Set when the alarm edge or sample count makes a checkpoint due;
    /// cleared by the server once it persists.
    checkpoint_due: bool,
    /// Readings buffers spent by [`drain_into`](Self::drain_into), held
    /// for the caller to reclaim ([`take_spare`](Self::take_spare)) and
    /// hand back to its [`crate::frame::FrameDecoder`] — the loop that
    /// keeps the per-reading path allocation-free.
    spare: Vec<Vec<f64>>,
}

/// Most spent readings buffers a session retains for recycling.
const MAX_SPARE_BUFFERS: usize = 8;

impl Session {
    /// New session around `monitor`.
    pub fn new(key: SessionKey, monitor: Box<dyn ChipMonitor>, ladder: LadderConfig) -> Self {
        Self {
            key,
            monitor,
            queue: VecDeque::new(),
            ladder,
            state: SessionState::Accepting,
            shed_streak: 0,
            degraded: false,
            counters: SessionCounters::default(),
            last_activity: Instant::now(),
            samples_since_checkpoint: 0,
            checkpoint_due: false,
            spare: Vec::new(),
        }
    }

    /// Reclaim one readings buffer spent by a previous drain, if any —
    /// recycle it into the connection's `FrameDecoder` to close the
    /// allocation-free loop.
    pub fn take_spare(&mut self) -> Option<Vec<f64>> {
        self.spare.pop()
    }

    /// Session identity.
    pub fn key(&self) -> SessionKey {
        self.key
    }

    /// Current ladder position.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Per-session counters so far.
    pub fn counters(&self) -> SessionCounters {
        self.counters
    }

    /// Latched-alarm state of the underlying monitor.
    pub fn is_alarmed(&self) -> bool {
        self.monitor.is_alarmed()
    }

    /// Instant of the last offer or drain touching this session.
    pub fn last_activity(&self) -> Instant {
        self.last_activity
    }

    /// Whether the checkpoint policy wants this session persisted now.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_due
    }

    /// Serialized checkpoint, resetting the due flag and sample counter.
    pub fn take_checkpoint(&mut self) -> Option<String> {
        self.checkpoint_due = false;
        self.samples_since_checkpoint = 0;
        self.monitor.checkpoint_json(self.key)
    }

    /// Batches currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Offer one readings batch to the ladder. `trace` rides along into
    /// the queue so the drain can attribute the queue wait to the reading.
    pub fn offer(&mut self, seq: u64, values: Vec<f64>, trace: Option<PendingTrace>) -> Offer {
        self.last_activity = Instant::now();
        match self.state {
            SessionState::Quarantined => Offer::Quarantined(self.quarantine_frame()),
            SessionState::Rejecting => {
                self.counters.rejected += 1;
                Offer::Rejected(Frame::Busy {
                    chip: self.key.chip,
                    retry_after_ms: self.ladder.busy_retry_ms,
                })
            }
            SessionState::Accepting | SessionState::Shedding => {
                if self.queue.len() < self.ladder.queue_capacity {
                    self.queue.push_back(QueuedBatch { seq, values, trace });
                    self.counters.accepted += 1;
                    return Offer::Queued;
                }
                // Full: drop oldest, admit newest, count the shed.
                self.queue.pop_front();
                self.queue.push_back(QueuedBatch { seq, values, trace });
                self.counters.accepted += 1;
                self.counters.shed += 1;
                self.shed_streak += 1;
                self.degraded = true;
                if self.shed_streak >= self.ladder.shed_streak_threshold {
                    self.state = SessionState::Rejecting;
                } else {
                    self.state = SessionState::Shedding;
                }
                Offer::QueuedAfterShed
            }
        }
    }

    /// Drain up to `budget` queued batches through the monitor, returning
    /// the response frames to relay (decisions, or one error frame if the
    /// monitor rejects its input), each paired with its stage timings
    /// when the batch carried a [`PendingTrace`].
    ///
    /// The *caller* is responsible for panic containment: run this inside
    /// `catch_unwind` and call [`quarantine`](Self::quarantine) if it
    /// unwinds. (The session cannot catch its own panic — the unwind
    /// leaves `self` mid-mutation, which is exactly what quarantine is
    /// for.)
    pub fn drain(&mut self, budget: usize, checkpoint_interval: usize) -> Vec<Drained> {
        let mut out = Vec::new();
        self.drain_into(&mut out, budget, checkpoint_interval);
        out
    }

    /// [`drain`](Self::drain) into a caller-reused output vector (which is
    /// *appended to*, not cleared). With a warm `out` and the spent
    /// readings buffers recycled back through
    /// [`take_spare`](Self::take_spare) → `FrameDecoder::recycle`, the
    /// per-reading decode→predict→decide path allocates nothing at steady
    /// state (pinned by the fleet `alloc_gate` test; error frames and
    /// checkpoint serialization still allocate, as befits cold paths).
    pub fn drain_into(&mut self, out: &mut Vec<Drained>, budget: usize, checkpoint_interval: usize) {
        for _ in 0..budget {
            let Some(QueuedBatch { seq, values, trace }) = self.queue.pop_front() else { break };
            let popped = Instant::now();
            self.last_activity = popped;
            let was_alarmed = self.monitor.is_alarmed();
            let observed = self.monitor.observe(&values);
            // Stage boundary: everything between `popped` and here is the
            // prediction; the decision assembly below is `decide`.
            let predicted_at = trace.as_ref().map(|_| Instant::now());
            match observed {
                Ok(decision) => {
                    self.counters.decisions += 1;
                    self.samples_since_checkpoint += 1;
                    let mut flags = 0u8;
                    if decision.alarm {
                        flags |= decision_flags::ALARM;
                    }
                    if decision.rising_edge {
                        flags |= decision_flags::RISING;
                    }
                    if self.degraded {
                        flags |= decision_flags::DEGRADED;
                        self.degraded = false;
                    }
                    // Alarm edges are the durability-critical moments: a
                    // kill -9 after this decision must not forget them.
                    if decision.alarm != was_alarmed
                        || decision.rising_edge
                        || self.samples_since_checkpoint >= checkpoint_interval
                    {
                        self.checkpoint_due = true;
                    }
                    let frame = Frame::Decision {
                        chip: self.key.chip,
                        seq,
                        flags,
                        predicted_min: decision.predicted_min,
                    };
                    let draft = trace.map(|p| {
                        let predicted_at = predicted_at.unwrap_or(popped);
                        TraceDraft {
                            ctx: p.ctx,
                            decode_ns: p.decode_ns,
                            shard_ns: popped.saturating_duration_since(p.enqueued).as_nanos()
                                as u64,
                            predict_ns: predicted_at.saturating_duration_since(popped).as_nanos()
                                as u64,
                            decide_ns: predicted_at.elapsed().as_nanos() as u64,
                        }
                    });
                    out.push(Drained { frame, trace: draft });
                }
                Err(e) => {
                    out.push(Drained {
                        frame: Frame::Error {
                            code: crate::frame::error_code::REJECTED,
                            chip: self.key.chip,
                            message: e.to_string(),
                        },
                        trace: None,
                    });
                }
            }
            if self.spare.len() < MAX_SPARE_BUFFERS {
                self.spare.push(values);
            }
        }
        // Draining below the low watermark de-escalates the ladder.
        if self.state != SessionState::Quarantined
            && self.queue.len() <= self.ladder.queue_capacity / 2
        {
            if self.state == SessionState::Rejecting {
                self.counters.recoveries += 1;
            }
            if self.state != SessionState::Accepting {
                self.state = SessionState::Accepting;
                self.shed_streak = 0;
            }
        }
    }

    /// Mark the session terminally quarantined (the monitor panicked).
    pub fn quarantine(&mut self) {
        self.state = SessionState::Quarantined;
        self.queue.clear();
    }

    /// The error frame a quarantined session answers everything with.
    pub fn quarantine_frame(&self) -> Frame {
        Frame::Error {
            code: crate::frame::error_code::QUARANTINED,
            chip: self.key.chip,
            message: "session quarantined after a monitor panic".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Monitor double: records inputs, alarms when told, never panics.
    struct ScriptedMonitor {
        alarmed: bool,
        seen: usize,
    }

    impl ChipMonitor for ScriptedMonitor {
        fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
            self.seen += 1;
            if readings.first().copied().unwrap_or(1.0) < 0.8 {
                self.alarmed = true;
            }
            Ok(MonitorDecision {
                predicted_min: readings.first().copied().unwrap_or(1.0),
                worst_block: 0,
                alarm: self.alarmed,
                rising_edge: false,
                health: None,
            })
        }

        fn is_alarmed(&self) -> bool {
            self.alarmed
        }

        fn checkpoint_json(&self, _key: SessionKey) -> Option<String> {
            None
        }
    }

    fn session(capacity: usize, streak: usize) -> Session {
        Session::new(
            SessionKey { tenant: 1, chip: 1 },
            Box::new(ScriptedMonitor { alarmed: false, seen: 0 }),
            LadderConfig {
                queue_capacity: capacity,
                shed_streak_threshold: streak,
                busy_retry_ms: 25,
            },
        )
    }

    #[test]
    fn ladder_escalates_shed_then_reject_then_recovers() {
        let mut s = session(2, 3);
        assert_eq!(s.offer(0, vec![0.9], None), Offer::Queued);
        assert_eq!(s.offer(1, vec![0.9], None), Offer::Queued);
        // Queue full: three consecutive sheds escalate to Rejecting.
        assert_eq!(s.offer(2, vec![0.9], None), Offer::QueuedAfterShed);
        assert_eq!(s.state(), SessionState::Shedding);
        assert_eq!(s.offer(3, vec![0.9], None), Offer::QueuedAfterShed);
        assert_eq!(s.offer(4, vec![0.9], None), Offer::QueuedAfterShed);
        assert_eq!(s.state(), SessionState::Rejecting);
        match s.offer(5, vec![0.9], None) {
            Offer::Rejected(Frame::Busy { retry_after_ms, .. }) => assert_eq!(retry_after_ms, 25),
            other => panic!("unexpected: {other:?}"),
        }
        let c = s.counters();
        assert_eq!((c.shed, c.rejected), (3, 1));
        // Shed kept the *newest* batches: seqs 3 and 4.
        let frames = s.drain(16, usize::MAX);
        let seqs: Vec<u64> = frames
            .iter()
            .map(|d| match &d.frame {
                Frame::Decision { seq, flags, .. } => {
                    assert!(flags & decision_flags::DEGRADED != 0 || *seq == 4);
                    *seq
                }
                other => panic!("unexpected: {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4]);
        // Drained below the watermark: recovered, accepts again.
        assert_eq!(s.state(), SessionState::Accepting);
        assert_eq!(s.counters().recoveries, 1);
        assert_eq!(s.offer(6, vec![0.9], None), Offer::Queued);
    }

    #[test]
    fn first_decision_after_a_shed_is_flagged_degraded() {
        let mut s = session(1, 10);
        s.offer(0, vec![0.9], None);
        s.offer(1, vec![0.9], None); // sheds seq 0
        let frames = s.drain(16, usize::MAX);
        match frames.as_slice() {
            [Drained { frame: Frame::Decision { seq: 1, flags, .. }, .. }] => {
                assert_ne!(flags & decision_flags::DEGRADED, 0);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Degraded is edge-triggered, not sticky.
        s.offer(2, vec![0.9], None);
        match s.drain(16, usize::MAX).as_slice() {
            [Drained { frame: Frame::Decision { flags, .. }, .. }] => {
                assert_eq!(flags & decision_flags::DEGRADED, 0)
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn quarantined_session_is_terminal() {
        let mut s = session(4, 2);
        s.quarantine();
        assert_eq!(s.state(), SessionState::Quarantined);
        match s.offer(0, vec![0.9], None) {
            Offer::Quarantined(Frame::Error { code, .. }) => {
                assert_eq!(code, crate::frame::error_code::QUARANTINED);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(s.drain(16, usize::MAX).is_empty());
    }

    #[test]
    fn checkpoint_due_on_sample_interval() {
        let mut s = session(8, 4);
        for seq in 0..3 {
            s.offer(seq, vec![0.9], None);
        }
        s.drain(16, 3);
        assert!(s.checkpoint_due());
        s.take_checkpoint();
        assert!(!s.checkpoint_due());
    }

    #[test]
    fn traced_batches_come_back_with_stage_timings() {
        let mut s = session(8, 4);
        let ctx = TraceContext::derive(1, 1, 7);
        let pending = PendingTrace { ctx, decode_ns: 1234, enqueued: Instant::now() };
        assert_eq!(s.offer(7, vec![0.9], Some(pending)), Offer::Queued);
        s.offer(8, vec![0.9], None);
        let drained = s.drain(16, usize::MAX);
        assert_eq!(drained.len(), 2);
        let draft = drained[0].trace.expect("traced batch has a draft");
        assert_eq!(draft.ctx, ctx);
        assert_eq!(draft.decode_ns, 1234);
        // Queue wait and prediction both happened after `enqueued`, so
        // the measured stages are self-consistent (non-negative by type;
        // shard includes the real wait between offer and drain).
        assert!(drained[1].trace.is_none());
        match (&drained[0].frame, &drained[1].frame) {
            (Frame::Decision { seq: 7, .. }, Frame::Decision { seq: 8, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
