//! Experiment scenarios: the glue that turns the substrate crates into the
//! paper's data-collection pipeline (its experiment steps 1–4).
//!
//! A [`Scenario`] owns a chip floorplan, a power-grid model and the
//! benchmark suite. [`Scenario::collect`] simulates benchmarks and
//! assembles the `(X, F)` training matrices; [`ScenarioData::split`]
//! produces deterministic train/test partitions; [`percore`] fits the
//! methodology independently per core (the granularity the paper reports).

mod data;
mod percore;

pub use data::{CollectOptions, ScenarioData, SensorSites};
pub use percore::{CorePartition, PerCoreFit, PerCoreModel};

use std::error::Error;
use std::fmt;

use voltsense_floorplan::{ChipConfig, ChipFloorplan, FloorplanError, NodeId};
use voltsense_parallel as parallel;
use voltsense_powergrid::{
    sample_benchmark, GridConfig, GridModel, PowerGridError, SampleConfig, SampledMaps,
};
use voltsense_workload::{parsec_like_suite, Benchmark, TraceConfig, WorkloadError, WorkloadTrace};

/// Error type for scenario assembly.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioError {
    /// Floorplan construction failed.
    Floorplan(FloorplanError),
    /// Trace generation failed.
    Workload(WorkloadError),
    /// Grid modelling or simulation failed.
    PowerGrid(PowerGridError),
    /// A benchmark index was out of range.
    UnknownBenchmark {
        /// The offending index.
        index: usize,
        /// Suite size.
        available: usize,
    },
    /// Collected datasets could not be combined.
    Inconsistent {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Floorplan(e) => write!(f, "floorplan failed: {e}"),
            ScenarioError::Workload(e) => write!(f, "workload failed: {e}"),
            ScenarioError::PowerGrid(e) => write!(f, "power grid failed: {e}"),
            ScenarioError::UnknownBenchmark { index, available } => {
                write!(f, "benchmark index {index} out of range ({available} available)")
            }
            ScenarioError::Inconsistent { what } => write!(f, "inconsistent data: {what}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Floorplan(e) => Some(e),
            ScenarioError::Workload(e) => Some(e),
            ScenarioError::PowerGrid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FloorplanError> for ScenarioError {
    fn from(e: FloorplanError) -> Self {
        ScenarioError::Floorplan(e)
    }
}

impl From<WorkloadError> for ScenarioError {
    fn from(e: WorkloadError) -> Self {
        ScenarioError::Workload(e)
    }
}

impl From<PowerGridError> for ScenarioError {
    fn from(e: PowerGridError) -> Self {
        ScenarioError::PowerGrid(e)
    }
}

/// A complete experiment setup: chip + grid + suite + sampling cadence.
#[derive(Debug, Clone)]
pub struct Scenario {
    chip: ChipFloorplan,
    grid: GridModel,
    suite: Vec<Benchmark>,
    trace_config: TraceConfig,
    sample_config: SampleConfig,
}

impl Scenario {
    /// Test-scale scenario: 2-core chip, short traces (~115 maps per
    /// benchmark). Runs in seconds even in debug builds.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none expected for the built-in
    /// configs).
    pub fn small() -> Result<Self, ScenarioError> {
        Scenario::with_configs(
            &ChipConfig::small_test(),
            &GridConfig::small_test(),
            TraceConfig {
                duration_ns: 1000.0,
                ..TraceConfig::default()
            },
            SampleConfig {
                warmup_steps: 200,
                sample_every: 7,
                max_samples: None,
            },
        )
    }

    /// Paper-scale scenario: the 8-core Xeon-E5-like chip; 19 benchmarks ×
    /// ~527 maps ≈ 10,000 voltage maps, matching the paper's experiment
    /// setup. Use release builds.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none expected for the built-in
    /// configs).
    pub fn paper_scale() -> Result<Self, ScenarioError> {
        Scenario::with_configs(
            &ChipConfig::xeon_e5_like(),
            &GridConfig::default(),
            TraceConfig {
                // warmup 200 + 527 samples * every 7 steps
                duration_ns: 200.0 + 527.0 * 7.0,
                ..TraceConfig::default()
            },
            SampleConfig {
                warmup_steps: 200,
                sample_every: 7,
                max_samples: Some(527),
            },
        )
    }

    /// Fully custom scenario.
    ///
    /// # Errors
    ///
    /// Propagates floorplan/grid construction failures.
    pub fn with_configs(
        chip_config: &ChipConfig,
        grid_config: &GridConfig,
        trace_config: TraceConfig,
        sample_config: SampleConfig,
    ) -> Result<Self, ScenarioError> {
        let chip = ChipFloorplan::new(chip_config)?;
        let grid = GridModel::build(&chip, grid_config)?;
        Ok(Scenario {
            chip,
            grid,
            suite: parsec_like_suite(),
            trace_config,
            sample_config,
        })
    }

    /// The chip floorplan.
    pub fn chip(&self) -> &ChipFloorplan {
        &self.chip
    }

    /// The power-grid model.
    pub fn grid(&self) -> &GridModel {
        &self.grid
    }

    /// The benchmark suite (19 PARSEC-like benchmarks).
    pub fn suite(&self) -> &[Benchmark] {
        &self.suite
    }

    /// Trace-generation configuration.
    pub fn trace_config(&self) -> &TraceConfig {
        &self.trace_config
    }

    /// Sampling configuration.
    pub fn sample_config(&self) -> &SampleConfig {
        &self.sample_config
    }

    /// Simulates one benchmark and returns its raw voltage maps.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownBenchmark`] for a bad index and
    /// propagates simulation failures.
    pub fn simulate(&self, benchmark: usize) -> Result<SampledMaps, ScenarioError> {
        let bm = self
            .suite
            .get(benchmark)
            .ok_or(ScenarioError::UnknownBenchmark {
                index: benchmark,
                available: self.suite.len(),
            })?;
        let trace = WorkloadTrace::generate(bm, self.chip.blocks(), &self.trace_config)?;
        Ok(sample_benchmark(&self.grid, &trace, &self.sample_config)?)
    }

    /// Simulates one benchmark *at every timestep* over a window — for
    /// voltage-trace figures (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::simulate`].
    pub fn simulate_trace_window(
        &self,
        benchmark: usize,
        window_steps: usize,
    ) -> Result<SampledMaps, ScenarioError> {
        let bm = self
            .suite
            .get(benchmark)
            .ok_or(ScenarioError::UnknownBenchmark {
                index: benchmark,
                available: self.suite.len(),
            })?;
        let trace = WorkloadTrace::generate(bm, self.chip.blocks(), &self.trace_config)?;
        let cfg = SampleConfig {
            warmup_steps: self.sample_config.warmup_steps,
            sample_every: 1,
            max_samples: Some(window_steps),
        };
        Ok(sample_benchmark(&self.grid, &trace, &cfg)?)
    }

    /// Simulates the given benchmarks (indices into [`Scenario::suite`])
    /// and assembles the combined `(X, F)` dataset. Critical nodes are
    /// chosen from the worst observed noise across *all* collected
    /// benchmarks, matching the paper's "worst noise during a sampling
    /// simulation period".
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; fails on an empty benchmark list.
    pub fn collect(&self, benchmarks: &[usize]) -> Result<ScenarioData, ScenarioError> {
        self.collect_with(benchmarks, &CollectOptions::default())
    }

    /// As [`Scenario::collect`] with explicit assembly options: multiple
    /// noise-critical representatives per block (a paper extension its
    /// Section 2.1 mentions) and/or function-area sensor sites (its
    /// Section 3.2 closing remark).
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::collect`].
    pub fn collect_with(
        &self,
        benchmarks: &[usize],
        options: &CollectOptions,
    ) -> Result<ScenarioData, ScenarioError> {
        // Each benchmark is an independent transient simulation, so the
        // collection fans out across threads; the ordered collect keeps
        // the benchmark order (and the first error) deterministic.
        let maps: Vec<(usize, SampledMaps)> =
            parallel::par_map(benchmarks, |&b| self.simulate(b).map(|m| (b, m)))
                .into_iter()
                .collect::<Result<_, _>>()?;
        ScenarioData::assemble_with(&self.chip, &maps, options)
    }

    /// All candidate node ids (blank-area sites), in `X`-row order.
    pub fn candidate_nodes(&self) -> &[NodeId] {
        self.chip.lattice().candidate_sites()
    }
}
