use voltsense_floorplan::{BlockId, ChipFloorplan, NodeId, NodeSite};
use voltsense_linalg::Matrix;
use voltsense_powergrid::SampledMaps;

use super::ScenarioError;

/// Where sensor candidates may live.
///
/// The paper restricts sensors to the blank area but notes "it is possible
/// for the designers to place the sensors inside the function area, to
/// further improve the prediction accuracy"; [`SensorSites::Anywhere`]
/// implements that extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SensorSites {
    /// Blank-area lattice nodes only (the paper's setting).
    #[default]
    BlankAreaOnly,
    /// Every lattice node, including function-area nodes.
    Anywhere,
}

/// Options for dataset assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectOptions {
    /// Noise-critical representatives chosen per block (worst-first). The
    /// paper uses one but notes the model trivially extends to more.
    pub representatives_per_block: usize,
    /// Candidate site policy.
    pub sensor_sites: SensorSites,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            representatives_per_block: 1,
            sensor_sites: SensorSites::BlankAreaOnly,
        }
    }
}

/// The assembled training/evaluation dataset of an experiment: the paper's
/// `X` (sensor-candidate voltages, `M x N`) and `F` (critical-node
/// voltages, `K x N`), plus bookkeeping.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// Candidate voltages, one row per candidate node (`M x N`).
    pub x: Matrix,
    /// Critical-node voltages (`K x N`; `K` = blocks × representatives).
    pub f: Matrix,
    /// The lattice node behind each candidate row of `x`.
    pub candidate_nodes: Vec<NodeId>,
    /// The chosen critical node behind each row of `f`.
    pub critical_nodes: Vec<NodeId>,
    /// The function block each row of `f` belongs to.
    pub row_blocks: Vec<BlockId>,
    /// Benchmark index each sample (column) came from.
    pub sample_benchmark: Vec<usize>,
}

impl ScenarioData {
    /// Assembles the dataset from per-benchmark voltage maps.
    ///
    /// Critical nodes are picked per block as the node with the lowest
    /// voltage observed across *all* maps, then `X`/`F` are extracted and
    /// concatenated benchmark by benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Inconsistent`] if `maps` is empty or the
    /// maps disagree on the node count.
    pub fn assemble(
        chip: &ChipFloorplan,
        maps: &[(usize, SampledMaps)],
    ) -> Result<Self, ScenarioError> {
        Self::assemble_with(chip, maps, &CollectOptions::default())
    }

    /// As [`ScenarioData::assemble`] with explicit options (multiple
    /// representatives per block and/or function-area sensor sites).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Inconsistent`] for empty input, mismatched
    /// grids, or zero representatives.
    pub fn assemble_with(
        chip: &ChipFloorplan,
        maps: &[(usize, SampledMaps)],
        options: &CollectOptions,
    ) -> Result<Self, ScenarioError> {
        if options.representatives_per_block == 0 {
            return Err(ScenarioError::Inconsistent {
                what: "representatives_per_block must be at least 1".into(),
            });
        }
        let (_, first) = maps.first().ok_or_else(|| ScenarioError::Inconsistent {
            what: "no benchmarks collected".into(),
        })?;
        let num_nodes = first.num_nodes();
        if maps.iter().any(|(_, m)| m.num_nodes() != num_nodes) {
            return Err(ScenarioError::Inconsistent {
                what: "benchmarks sampled on different grids".into(),
            });
        }

        // Global per-node minimum over all benchmarks → critical nodes.
        let lattice = chip.lattice();
        let blocks = chip.blocks();
        let mut node_min = vec![f64::INFINITY; num_nodes];
        for (_, m) in maps {
            for node in 0..num_nodes {
                for &v in m.maps().row(node) {
                    if v < node_min[node] {
                        node_min[node] = v;
                    }
                }
            }
        }
        let mut critical_nodes = Vec::new();
        let mut row_blocks = Vec::new();
        for b in blocks {
            let mut nodes: Vec<NodeId> = lattice.nodes_in_block(b.id()).to_vec();
            nodes.sort_by(|a, b| {
                node_min[a.0].total_cmp(&node_min[b.0])
            });
            // Worst-first; a block with fewer nodes than requested
            // representatives contributes what it has.
            for &n in nodes.iter().take(options.representatives_per_block) {
                critical_nodes.push(n);
                row_blocks.push(b.id());
            }
        }

        // Candidate set per the site policy.
        let candidate_nodes: Vec<NodeId> = match options.sensor_sites {
            SensorSites::BlankAreaOnly => lattice.candidate_sites().to_vec(),
            SensorSites::Anywhere => lattice.iter().map(|(id, _)| id).collect(),
        };

        // Concatenate X and F across benchmarks.
        let mut x: Option<Matrix> = None;
        let mut f: Option<Matrix> = None;
        let mut sample_benchmark = Vec::new();
        let candidate_rows: Vec<usize> = candidate_nodes.iter().map(|n| n.0).collect();
        for (bench, m) in maps {
            let xb = m.maps().select_rows(&candidate_rows);
            let fb = m.critical_matrix(&critical_nodes);
            sample_benchmark.extend(std::iter::repeat_n(*bench, m.num_samples()));
            x = Some(match x {
                None => xb,
                Some(acc) => acc.hstack(&xb).map_err(|e| ScenarioError::Inconsistent {
                    what: format!("cannot concatenate X: {e}"),
                })?,
            });
            f = Some(match f {
                None => fb,
                Some(acc) => acc.hstack(&fb).map_err(|e| ScenarioError::Inconsistent {
                    what: format!("cannot concatenate F: {e}"),
                })?,
            });
        }
        Ok(ScenarioData {
            x: x.expect("at least one benchmark"),
            f: f.expect("at least one benchmark"),
            candidate_nodes,
            critical_nodes,
            row_blocks,
            sample_benchmark,
        })
    }

    /// `true` if any candidate row sits inside the function area (only
    /// possible with [`SensorSites::Anywhere`]).
    pub fn has_fa_candidates(&self, chip: &ChipFloorplan) -> bool {
        self.candidate_nodes
            .iter()
            .any(|&n| matches!(chip.lattice().site(n), NodeSite::FunctionArea(_)))
    }

    /// Number of sensor candidates `M`.
    pub fn num_candidates(&self) -> usize {
        self.x.rows()
    }

    /// Number of critical nodes `K`.
    pub fn num_blocks(&self) -> usize {
        self.f.rows()
    }

    /// Number of samples `N`.
    pub fn num_samples(&self) -> usize {
        self.x.cols()
    }

    /// Deterministic train/test split: every `holdout`-th sample goes to
    /// the test set, the rest to training. `holdout = 3` gives a 2:1
    /// split.
    ///
    /// # Panics
    ///
    /// Panics if `holdout < 2`.
    pub fn split(&self, holdout: usize) -> (ScenarioData, ScenarioData) {
        assert!(holdout >= 2, "holdout must be at least 2");
        let test_idx: Vec<usize> = (0..self.num_samples()).step_by(holdout).collect();
        let train_idx: Vec<usize> = (0..self.num_samples())
            .filter(|i| i % holdout != 0)
            .collect();
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Extracts the given sample columns into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, sample_indices: &[usize]) -> ScenarioData {
        ScenarioData {
            x: self.x.select_cols(sample_indices),
            f: self.f.select_cols(sample_indices),
            candidate_nodes: self.candidate_nodes.clone(),
            critical_nodes: self.critical_nodes.clone(),
            row_blocks: self.row_blocks.clone(),
            sample_benchmark: sample_indices
                .iter()
                .map(|&i| self.sample_benchmark[i])
                .collect(),
        }
    }

    /// Extracts the samples belonging to one benchmark.
    pub fn benchmark_subset(&self, benchmark: usize) -> ScenarioData {
        let idx: Vec<usize> = self
            .sample_benchmark
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == benchmark)
            .map(|(i, _)| i)
            .collect();
        self.subset(&idx)
    }

    /// Restricts the dataset to subsets of candidates and blocks (used for
    /// per-core fitting). Indices are rows of `x`/`f` respectively.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn restrict(&self, candidate_rows: &[usize], block_rows: &[usize]) -> ScenarioData {
        ScenarioData {
            x: self.x.select_rows(candidate_rows),
            f: self.f.select_rows(block_rows),
            candidate_nodes: candidate_rows
                .iter()
                .map(|&c| self.candidate_nodes[c])
                .collect(),
            critical_nodes: block_rows
                .iter()
                .map(|&k| self.critical_nodes[k])
                .collect(),
            row_blocks: block_rows.iter().map(|&k| self.row_blocks[k]).collect(),
            sample_benchmark: self.sample_benchmark.clone(),
        }
    }
}
