use voltsense_core::{
    detection, metrics, CoreError, EvaluationReport, FittedMethodology, Methodology,
    MethodologyConfig, VoltageMapModel,
};
use voltsense_floorplan::{ChipFloorplan, CoreId};
use voltsense_linalg::Matrix;

use super::{ScenarioData, ScenarioError};

/// Assignment of candidate rows and block rows to cores.
///
/// The paper selects and reports sensors *per core*; candidates in the
/// shared channels/periphery are assigned to the nearest core centre.
#[derive(Debug, Clone)]
pub struct CorePartition {
    candidate_rows: Vec<Vec<usize>>,
    block_rows: Vec<Vec<usize>>,
}

impl CorePartition {
    /// Builds the partition from the chip floorplan, assuming the default
    /// dataset layout (blank-area candidates, one representative per
    /// block). For datasets collected with non-default
    /// [`super::CollectOptions`], use [`CorePartition::for_data`].
    pub fn from_chip(chip: &ChipFloorplan) -> Self {
        let lattice = chip.lattice();
        let cores = chip.cores();
        let mut candidate_rows = vec![Vec::new(); cores.len()];
        for (row, &node) in lattice.candidate_sites().iter().enumerate() {
            let p = lattice.position(node);
            let nearest = cores
                .iter()
                .min_by(|a, b| {
                    let da = a.rect.center().distance_to(p);
                    let db = b.rect.center().distance_to(p);
                    da.partial_cmp(&db).expect("distances are finite")
                })
                .expect("at least one core");
            candidate_rows[nearest.id.0].push(row);
        }
        let mut block_rows = vec![Vec::new(); cores.len()];
        for (row, block) in chip.blocks().iter().enumerate() {
            block_rows[block.core().0].push(row);
        }
        CorePartition {
            candidate_rows,
            block_rows,
        }
    }

    /// Builds the partition from a dataset's own bookkeeping — correct for
    /// any [`super::CollectOptions`] (function-area candidates, multiple
    /// representatives per block).
    pub fn for_data(chip: &ChipFloorplan, data: &super::ScenarioData) -> Self {
        let lattice = chip.lattice();
        let cores = chip.cores();
        let mut candidate_rows = vec![Vec::new(); cores.len()];
        for (row, &node) in data.candidate_nodes.iter().enumerate() {
            let p = lattice.position(node);
            let nearest = cores
                .iter()
                .min_by(|a, b| {
                    let da = a.rect.center().distance_to(p);
                    let db = b.rect.center().distance_to(p);
                    da.partial_cmp(&db).expect("distances are finite")
                })
                .expect("at least one core");
            candidate_rows[nearest.id.0].push(row);
        }
        let mut block_rows = vec![Vec::new(); cores.len()];
        for (row, &block) in data.row_blocks.iter().enumerate() {
            let core = chip.blocks()[block.0].core();
            block_rows[core.0].push(row);
        }
        CorePartition {
            candidate_rows,
            block_rows,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.candidate_rows.len()
    }

    /// Candidate rows (into `X`) assigned to a core.
    ///
    /// # Panics
    ///
    /// Panics if the core index is out of range.
    pub fn candidates_of(&self, core: CoreId) -> &[usize] {
        &self.candidate_rows[core.0]
    }

    /// Block rows (into `F`) of a core.
    ///
    /// # Panics
    ///
    /// Panics if the core index is out of range.
    pub fn blocks_of(&self, core: CoreId) -> &[usize] {
        &self.block_rows[core.0]
    }
}

/// One core's fitted methodology, with its global row maps.
#[derive(Debug, Clone)]
pub struct PerCoreFit {
    /// The core this fit belongs to.
    pub core: CoreId,
    /// The fitted pipeline over the core's candidates/blocks.
    pub fitted: FittedMethodology,
    /// Global candidate rows (into the whole-chip `X`) of this core's
    /// candidate subset, in the order the fit saw them.
    pub candidate_rows: Vec<usize>,
    /// Global block rows (into the whole-chip `F`).
    pub block_rows: Vec<usize>,
}

impl PerCoreFit {
    /// Sensors of this core as global candidate rows.
    pub fn sensors_global(&self) -> Vec<usize> {
        self.fitted
            .sensors()
            .iter()
            .map(|&local| self.candidate_rows[local])
            .collect()
    }
}

/// The paper's per-core deployment: sensors are *selected* independently
/// per core (the granularity its tables report), but the final prediction
/// model is the paper's Eq. 17 refit — one whole-chip OLS of **all**
/// critical nodes on **all** placed sensors, so every block benefits from
/// every sensor.
#[derive(Debug, Clone)]
pub struct PerCoreModel {
    fits: Vec<PerCoreFit>,
    global_model: VoltageMapModel,
    num_candidates: usize,
    emergency_threshold: f64,
}

impl PerCoreModel {
    /// Fits one methodology per core on the given dataset.
    ///
    /// # Errors
    ///
    /// Propagates per-core fit failures (wrapped in
    /// [`ScenarioError::Inconsistent`] with the failing core named).
    pub fn fit(
        data: &ScenarioData,
        partition: &CorePartition,
        config: &MethodologyConfig,
    ) -> Result<Self, ScenarioError> {
        let mut fits = Vec::with_capacity(partition.num_cores());
        for c in 0..partition.num_cores() {
            let core = CoreId(c);
            let candidate_rows = partition.candidates_of(core).to_vec();
            let block_rows = partition.blocks_of(core).to_vec();
            let sub = data.restrict(&candidate_rows, &block_rows);
            let fitted = Methodology::fit(&sub.x, &sub.f, config).map_err(|e| {
                ScenarioError::Inconsistent {
                    what: format!("fit failed for core {c}: {e}"),
                }
            })?;
            fits.push(PerCoreFit {
                core,
                fitted,
                candidate_rows,
                block_rows,
            });
        }
        let global_model = Self::global_refit(data, &fits)?;
        Ok(PerCoreModel {
            fits,
            global_model,
            num_candidates: data.num_candidates(),
            emergency_threshold: config.emergency_threshold,
        })
    }

    /// Fits one methodology per core with a *target sensor count per
    /// core* instead of a budget (the paper's "2 sensors per core" setup):
    /// each core's λ is bisected until the core selects `q_per_core`
    /// sensors (or the closest achievable count).
    ///
    /// # Errors
    ///
    /// Propagates per-core fit failures.
    pub fn fit_with_sensor_count(
        data: &ScenarioData,
        partition: &CorePartition,
        q_per_core: usize,
        config: &MethodologyConfig,
    ) -> Result<Self, ScenarioError> {
        let mut fits = Vec::with_capacity(partition.num_cores());
        for c in 0..partition.num_cores() {
            let core = CoreId(c);
            let candidate_rows = partition.candidates_of(core).to_vec();
            let block_rows = partition.blocks_of(core).to_vec();
            let sub = data.restrict(&candidate_rows, &block_rows);
            let fitted = Methodology::fit_with_sensor_count(&sub.x, &sub.f, q_per_core, config)
                .map_err(|e| ScenarioError::Inconsistent {
                    what: format!("fit failed for core {c}: {e}"),
                })?;
            fits.push(PerCoreFit {
                core,
                fitted,
                candidate_rows,
                block_rows,
            });
        }
        let global_model = Self::global_refit(data, &fits)?;
        Ok(PerCoreModel {
            fits,
            global_model,
            num_candidates: data.num_candidates(),
            emergency_threshold: config.emergency_threshold,
        })
    }

    /// Fits one model per budget in `lambdas` (the paper's Table 1 sweep)
    /// with **one** warm-started homotopy per core: each core reduces its
    /// covariance form once and chains every budget bisection through it,
    /// instead of refitting from cold per λ.
    ///
    /// Returns one [`PerCoreModel`] per budget, in the caller's order.
    ///
    /// # Errors
    ///
    /// Propagates per-core fit failures (with the failing core named) and
    /// rejects an empty `lambdas`.
    pub fn fit_sweep(
        data: &ScenarioData,
        partition: &CorePartition,
        lambdas: &[f64],
        config: &MethodologyConfig,
    ) -> Result<Vec<Self>, ScenarioError> {
        if lambdas.is_empty() {
            return Err(ScenarioError::Inconsistent {
                what: "fit_sweep needs at least one lambda".into(),
            });
        }
        // One warm chain per core, producing that core's whole λ column.
        let mut per_core: Vec<Vec<FittedMethodology>> =
            Vec::with_capacity(partition.num_cores());
        for c in 0..partition.num_cores() {
            let core = CoreId(c);
            let sub = data.restrict(partition.candidates_of(core), partition.blocks_of(core));
            let fitted =
                Methodology::fit_sweep(&sub.x, &sub.f, lambdas, config).map_err(|e| {
                    ScenarioError::Inconsistent {
                        what: format!("fit failed for core {c}: {e}"),
                    }
                })?;
            per_core.push(fitted);
        }
        Self::bucket_sweep(data, partition, config, per_core, lambdas.len())
    }

    /// Fits one model per target sensor count in `qs` ("2 sensors per
    /// core", "7 per core", …) with one warm-started homotopy per core.
    ///
    /// Returns one [`PerCoreModel`] per count, in the caller's order.
    ///
    /// # Errors
    ///
    /// Propagates per-core fit failures and rejects an empty `qs`.
    pub fn fit_with_sensor_count_sweep(
        data: &ScenarioData,
        partition: &CorePartition,
        qs: &[usize],
        config: &MethodologyConfig,
    ) -> Result<Vec<Self>, ScenarioError> {
        if qs.is_empty() {
            return Err(ScenarioError::Inconsistent {
                what: "fit_with_sensor_count_sweep needs at least one target count".into(),
            });
        }
        let mut per_core: Vec<Vec<FittedMethodology>> =
            Vec::with_capacity(partition.num_cores());
        for c in 0..partition.num_cores() {
            let core = CoreId(c);
            let sub = data.restrict(partition.candidates_of(core), partition.blocks_of(core));
            let fitted = Methodology::fit_with_sensor_count_sweep(&sub.x, &sub.f, qs, config)
                .map_err(|e| ScenarioError::Inconsistent {
                    what: format!("fit failed for core {c}: {e}"),
                })?;
            per_core.push(fitted);
        }
        Self::bucket_sweep(data, partition, config, per_core, qs.len())
    }

    /// Regroups per-core sweep columns (`per_core[core][point]`) into one
    /// [`PerCoreModel`] per sweep point, each with its Eq. 17 global refit.
    fn bucket_sweep(
        data: &ScenarioData,
        partition: &CorePartition,
        config: &MethodologyConfig,
        mut per_core: Vec<Vec<FittedMethodology>>,
        num_points: usize,
    ) -> Result<Vec<Self>, ScenarioError> {
        let mut models = Vec::with_capacity(num_points);
        // Drain back-to-front per core so each point's fits move out
        // without cloning the coefficient matrices.
        for point in (0..num_points).rev() {
            let mut fits = Vec::with_capacity(per_core.len());
            for (c, column) in per_core.iter_mut().enumerate() {
                let core = CoreId(c);
                fits.push(PerCoreFit {
                    core,
                    fitted: column.remove(point),
                    candidate_rows: partition.candidates_of(core).to_vec(),
                    block_rows: partition.blocks_of(core).to_vec(),
                });
            }
            let global_model = Self::global_refit(data, &fits)?;
            models.push(PerCoreModel {
                fits,
                global_model,
                num_candidates: data.num_candidates(),
                emergency_threshold: config.emergency_threshold,
            });
        }
        models.reverse();
        Ok(models)
    }

    /// The paper's Eq. 17: OLS of all critical nodes on the union of the
    /// placed sensors.
    fn global_refit(
        data: &ScenarioData,
        fits: &[PerCoreFit],
    ) -> Result<VoltageMapModel, ScenarioError> {
        let mut sensors: Vec<usize> = fits.iter().flat_map(|f| f.sensors_global()).collect();
        sensors.sort_unstable();
        sensors.dedup();
        VoltageMapModel::fit(&data.x, &data.f, &sensors).map_err(|e| {
            ScenarioError::Inconsistent {
                what: format!("global OLS refit failed: {e}"),
            }
        })
    }

    /// The whole-chip prediction model (Eq. 17 refit over all sensors).
    pub fn global_model(&self) -> &VoltageMapModel {
        &self.global_model
    }

    /// The per-core fits.
    pub fn fits(&self) -> &[PerCoreFit] {
        &self.fits
    }

    /// Total placed sensors across all cores.
    pub fn total_sensors(&self) -> usize {
        self.fits.iter().map(|f| f.fitted.sensors().len()).sum()
    }

    /// All placed sensors as global candidate rows, ascending.
    pub fn sensors_global(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .fits
            .iter()
            .flat_map(|f| f.sensors_global())
            .collect();
        all.sort_unstable();
        all
    }

    /// Predicts the whole-chip critical-voltage matrix (`K x N`, rows in
    /// global block order) from a whole-chip candidate matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `x` does not have the
    /// whole-chip candidate rows.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Matrix, CoreError> {
        if x.rows() != self.num_candidates {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "X has {} rows, model was fitted over {} candidates",
                    x.rows(),
                    self.num_candidates
                ),
            });
        }
        self.global_model.predict_matrix(x)
    }

    /// Emergency alarms per sample: any predicted critical voltage below
    /// the fitted emergency threshold.
    ///
    /// # Errors
    ///
    /// Same as [`PerCoreModel::predict_matrix`].
    pub fn detect_matrix(&self, x: &Matrix) -> Result<Vec<bool>, CoreError> {
        let pred = self.predict_matrix(x)?;
        Ok((0..pred.cols())
            .map(|s| (0..pred.rows()).any(|k| pred[(k, s)] < self.emergency_threshold))
            .collect())
    }

    /// Whole-chip evaluation on held-out data: aggregated relative error
    /// plus detection rates.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn evaluate(&self, test: &ScenarioData) -> Result<EvaluationReport, CoreError> {
        let predicted = self.predict_matrix(&test.x)?;
        let relative_error = metrics::relative_error(&predicted, &test.f)?;
        let rms_error = metrics::rms_error(&predicted, &test.f)?;
        let max_abs_error = metrics::max_abs_error(&predicted, &test.f)?;
        let truth = detection::ground_truth(&test.f, self.emergency_threshold);
        let alarms = self.detect_matrix(&test.x)?;
        let det = detection::evaluate(&truth, &alarms)?;
        Ok(EvaluationReport {
            relative_error,
            rms_error,
            max_abs_error,
            detection: det,
        })
    }

    /// The emergency threshold used for detection.
    pub fn emergency_threshold(&self) -> f64 {
        self.emergency_threshold
    }
}
