//! voltsense — statistical noise-sensor placement and full-chip voltage-map
//! generation.
//!
//! This umbrella crate re-exports the whole workspace and adds the
//! [`scenario`] module, which wires the substrates together into the
//! experiment pipeline of the reproduced DAC 2015 paper:
//!
//! ```text
//! floorplan ──► workload ──► powergrid ──► (X, F) data
//!                                             │
//!                          grouplasso ◄───────┤ normalize
//!                                │            │
//!                        sensor selection     │
//!                                │            │
//!                          OLS refit (core) ◄─┘
//!                                │
//!                   runtime voltage-map model + detection
//! ```
//!
//! # Quickstart
//!
//! ```no_run
//! use voltsense::scenario::Scenario;
//! use voltsense::core::{Methodology, MethodologyConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small chip, simulate two benchmarks, fit the methodology.
//! let scenario = Scenario::small()?;
//! let data = scenario.collect(&[0, 1])?;
//! let (train, test) = data.split(3);
//! let fitted = Methodology::fit(&train.x, &train.f, &MethodologyConfig::default())?;
//! let report = fitted.evaluate(&test.x, &test.f)?;
//! println!("sensors: {:?}, rel err: {:.2e}", fitted.sensors(), report.relative_error);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;

/// Dense linear algebra ([`voltsense_linalg`]).
pub use voltsense_linalg as linalg;

/// Sparse matrices and solvers ([`voltsense_sparse`]).
pub use voltsense_sparse as sparse;

/// Chip floorplan ([`voltsense_floorplan`]).
pub use voltsense_floorplan as floorplan;

/// Synthetic workloads ([`voltsense_workload`]).
pub use voltsense_workload as workload;

/// Power-grid simulation ([`voltsense_powergrid`]).
pub use voltsense_powergrid as powergrid;

/// Group-lasso solvers ([`voltsense_grouplasso`]).
pub use voltsense_grouplasso as grouplasso;

/// Eagle-Eye baseline ([`voltsense_eagleeye`]).
pub use voltsense_eagleeye as eagleeye;

/// The DAC'15 methodology ([`voltsense_core`]).
pub use voltsense_core as core;

/// Deterministic sensor fault injection ([`voltsense_faults`]).
pub use voltsense_faults as faults;

/// Observability: spans, metrics, convergence traces
/// ([`voltsense_telemetry`]).
pub use voltsense_telemetry as telemetry;

/// Data-parallel runtime: scoped thread pool with deterministic static
/// chunking ([`voltsense_parallel`]).
pub use voltsense_parallel as parallel;

/// Multi-tenant monitor serving: framing, degradation ladder,
/// checkpoint/restore, chaos harness ([`voltsense_fleet`]).
pub use voltsense_fleet as fleet;
