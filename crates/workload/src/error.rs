use std::error::Error;
use std::fmt;

/// Error type for workload-trace generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A trace-generation parameter was out of range.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        what: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { what } => {
                write!(f, "invalid workload configuration: {what}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkloadError>();
        let err = WorkloadError::InvalidConfig {
            what: "dt must be positive".into(),
        };
        assert!(err.to_string().contains("dt"));
    }
}
