//! Activity → supply-current conversion (the McPAT stand-in).

use voltsense_floorplan::FunctionBlock;

/// Converts block activity levels into supply currents.
///
/// The model is the standard decomposition used by architectural power
/// tools: `P = P_leak + activity · P_dyn`, with `P_dyn` derived from the
/// block's nominal full-activity power. Power gating scales the leakage by
/// a retention factor and removes the dynamic component.
///
/// # Example
///
/// ```
/// use voltsense_workload::PowerModel;
///
/// let model = PowerModel::new(1.0);
/// // A 1 W-nominal block at 50% activity, ungated:
/// let i = model.current_for(1.0, 0.5, 1.0);
/// assert!(i > 0.0);
/// // Fully gated: only retention leakage remains.
/// let gated = model.current_for(1.0, 0.5, 0.0);
/// assert!(gated < i * 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    vdd: f64,
    /// Fraction of nominal power that is leakage at nominal temperature.
    leakage_fraction: f64,
    /// Fraction of leakage that survives power gating (retention cells,
    /// sleep transistor leakage).
    gated_retention: f64,
}

impl PowerModel {
    /// Creates the model for a supply voltage `vdd` (volts) with default
    /// 22 nm-plausible leakage parameters (25% leakage, 8% retention).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn new(vdd: f64) -> Self {
        assert!(vdd > 0.0 && vdd.is_finite(), "vdd must be positive");
        PowerModel {
            vdd,
            leakage_fraction: 0.25,
            gated_retention: 0.08,
        }
    }

    /// Supply voltage (volts).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Leakage fraction of nominal power.
    pub fn leakage_fraction(&self) -> f64 {
        self.leakage_fraction
    }

    /// Supply current (amperes) for a block of `nominal_power` watts at
    /// `activity ∈ [0, 1]` with `gate ∈ [0, 1]` (0 = fully power-gated,
    /// 1 = on; intermediate values model gate slew).
    pub fn current_for(&self, nominal_power: f64, activity: f64, gate: f64) -> f64 {
        let activity = activity.clamp(0.0, 1.0);
        let gate = gate.clamp(0.0, 1.0);
        let p_leak = nominal_power * self.leakage_fraction;
        let p_dyn = nominal_power * (1.0 - self.leakage_fraction) * activity;
        // Gating interpolates between full power and retention leakage.
        let on = p_leak + p_dyn;
        let off = p_leak * self.gated_retention;
        (off + gate * (on - off)) / self.vdd
    }

    /// Current for a placed block (uses its nominal power).
    pub fn block_current(&self, block: &FunctionBlock, activity: f64, gate: f64) -> f64 {
        self.current_for(block.nominal_power(), activity, gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_activity_and_gate() {
        let m = PowerModel::new(1.0);
        assert!(m.current_for(2.0, 0.8, 1.0) > m.current_for(2.0, 0.2, 1.0));
        assert!(m.current_for(2.0, 0.5, 1.0) > m.current_for(2.0, 0.5, 0.3));
    }

    #[test]
    fn gated_current_is_small_but_nonzero() {
        let m = PowerModel::new(1.0);
        let off = m.current_for(1.0, 1.0, 0.0);
        assert!(off > 0.0);
        assert!(off < 0.05);
    }

    #[test]
    fn current_scales_inversely_with_vdd() {
        let a = PowerModel::new(1.0).current_for(1.0, 0.5, 1.0);
        let b = PowerModel::new(2.0).current_for(1.0, 0.5, 1.0);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn activity_clamped() {
        let m = PowerModel::new(1.0);
        assert_eq!(m.current_for(1.0, 2.0, 1.0), m.current_for(1.0, 1.0, 1.0));
        assert_eq!(m.current_for(1.0, -1.0, 1.0), m.current_for(1.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn zero_vdd_panics() {
        PowerModel::new(0.0);
    }

    #[test]
    fn zero_activity_is_leakage_only() {
        let m = PowerModel::new(1.0);
        let i = m.current_for(4.0, 0.0, 1.0);
        assert!((i - 4.0 * m.leakage_fraction()).abs() < 1e-12);
    }
}
