use std::fmt;

use voltsense_floorplan::UnitGroup;

/// Identifier of a benchmark within the suite (`0..19` for the PARSEC-like
/// suite; the paper's tables label them `BM1..BM19`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BenchmarkId(pub usize);

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BM{}", self.0 + 1)
    }
}

/// Statistical character of a benchmark's activity, the knobs the trace
/// generator consumes.
///
/// Values were chosen so the suite spans the behaviours that matter for
/// supply noise: sustained compute (high bias, low gating), bursty phases
/// (high gating rate), memory-bound (low execution bias, high memory bias)
/// and resonance-exciting periodic loads.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// RNG seed; every stochastic decision for this benchmark derives from
    /// it.
    pub seed: u64,
    /// Mean activity level per unit group
    /// `[frontend, execution, load-store, memory]`, each in `[0, 1]`.
    pub group_bias: [f64; 4],
    /// Mean program-phase length in nanoseconds.
    pub phase_period_ns: f64,
    /// Probability per control interval that a gateable block toggles its
    /// power-gate state.
    pub gating_rate: f64,
    /// Gate turn-on/off slew in nanoseconds.
    pub gate_slew_ns: f64,
    /// Amplitude (fraction of activity) of the periodic modulation that
    /// excites the grid's resonance.
    pub resonance_amp: f64,
    /// Period of that modulation in nanoseconds.
    pub resonance_period_ns: f64,
    /// Standard deviation of the Ornstein–Uhlenbeck activity noise.
    pub noise_sigma: f64,
}

impl WorkloadProfile {
    /// Mean activity bias for one unit group.
    pub fn bias_for(&self, group: UnitGroup) -> f64 {
        match group {
            UnitGroup::Frontend => self.group_bias[0],
            UnitGroup::Execution => self.group_bias[1],
            UnitGroup::LoadStore => self.group_bias[2],
            UnitGroup::Memory => self.group_bias[3],
        }
    }

    /// Checks every knob is in range.
    pub(crate) fn validate(&self) -> Result<(), crate::WorkloadError> {
        let ok = self.group_bias.iter().all(|b| (0.0..=1.0).contains(b))
            && self.phase_period_ns > 0.0
            && (0.0..=1.0).contains(&self.gating_rate)
            && self.gate_slew_ns >= 0.0
            && (0.0..=1.0).contains(&self.resonance_amp)
            && self.resonance_period_ns > 0.0
            && self.noise_sigma >= 0.0;
        if ok {
            Ok(())
        } else {
            Err(crate::WorkloadError::InvalidConfig {
                what: format!("workload profile out of range: {self:?}"),
            })
        }
    }
}

/// A named benchmark: an id, a PARSEC-inspired name and its workload
/// profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    id: BenchmarkId,
    name: &'static str,
    profile: WorkloadProfile,
}

impl Benchmark {
    /// Creates a benchmark. Prefer [`parsec_like_suite`] for the standard
    /// 19; this constructor exists for custom experiments.
    pub fn new(id: BenchmarkId, name: &'static str, profile: WorkloadProfile) -> Self {
        Benchmark { id, name, profile }
    }

    /// Benchmark id.
    pub fn id(&self) -> BenchmarkId {
        self.id
    }

    /// Benchmark name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Workload profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.name)
    }
}

/// Builds the 19-benchmark PARSEC-2.1-like suite used by all experiments.
///
/// Names follow the PARSEC programs; the profiles are synthetic but span
/// the same qualitative space (compute-bound, memory-bound, bursty,
/// pipelined streaming, …). Profiles are deterministic: calling this twice
/// yields identical suites.
pub fn parsec_like_suite() -> Vec<Benchmark> {
    // name, [fe, exec, ls, mem], phase_ns, gating, slew_ns, res_amp, res_ns, sigma
    let specs: [(&str, [f64; 4], f64, f64, f64, f64, f64, f64); 19] = [
        ("blackscholes", [0.45, 0.80, 0.40, 0.20], 900.0, 0.020, 3.0, 0.30, 18.0, 0.10),
        ("bodytrack",    [0.55, 0.70, 0.55, 0.35], 600.0, 0.050, 3.0, 0.25, 22.0, 0.14),
        ("canneal",      [0.35, 0.40, 0.70, 0.60], 1200.0, 0.015, 4.0, 0.15, 30.0, 0.12),
        ("dedup",        [0.50, 0.55, 0.75, 0.45], 500.0, 0.060, 2.5, 0.20, 25.0, 0.16),
        ("facesim",      [0.45, 0.85, 0.50, 0.30], 800.0, 0.030, 3.0, 0.35, 20.0, 0.11),
        ("ferret",       [0.55, 0.60, 0.60, 0.50], 700.0, 0.045, 3.5, 0.22, 24.0, 0.13),
        ("fluidanimate", [0.40, 0.90, 0.45, 0.25], 1000.0, 0.025, 3.0, 0.40, 16.0, 0.10),
        ("freqmine",     [0.60, 0.65, 0.55, 0.40], 650.0, 0.040, 3.0, 0.18, 28.0, 0.12),
        ("raytrace",     [0.50, 0.75, 0.50, 0.35], 850.0, 0.035, 3.0, 0.28, 19.0, 0.12),
        ("streamcluster",[0.35, 0.50, 0.80, 0.55], 1100.0, 0.020, 4.0, 0.16, 32.0, 0.13),
        ("swaptions",    [0.45, 0.85, 0.35, 0.20], 750.0, 0.055, 2.5, 0.38, 17.0, 0.15),
        ("vips",         [0.55, 0.65, 0.60, 0.40], 600.0, 0.050, 3.0, 0.24, 23.0, 0.14),
        ("x264",         [0.65, 0.75, 0.55, 0.35], 450.0, 0.080, 2.0, 0.32, 21.0, 0.18),
        ("barnes",       [0.40, 0.70, 0.55, 0.40], 950.0, 0.030, 3.5, 0.26, 26.0, 0.11),
        ("fmm",          [0.45, 0.80, 0.45, 0.30], 900.0, 0.025, 3.0, 0.30, 18.0, 0.10),
        ("ocean",        [0.35, 0.60, 0.75, 0.55], 1000.0, 0.020, 4.0, 0.20, 29.0, 0.12),
        ("radiosity",    [0.50, 0.75, 0.50, 0.35], 800.0, 0.040, 3.0, 0.27, 20.0, 0.13),
        ("volrend",      [0.55, 0.70, 0.55, 0.40], 700.0, 0.045, 3.0, 0.25, 22.0, 0.13),
        ("water",        [0.40, 0.85, 0.40, 0.25], 850.0, 0.035, 3.0, 0.34, 18.0, 0.11),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, &(name, bias, phase, gating, slew, amp, period, sigma))| {
            Benchmark::new(
                BenchmarkId(i),
                name,
                WorkloadProfile {
                    seed: 0x5EED_0000 + i as u64,
                    group_bias: bias,
                    phase_period_ns: phase,
                    gating_rate: gating,
                    gate_slew_ns: slew,
                    resonance_amp: amp,
                    resonance_period_ns: period,
                    noise_sigma: sigma,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_unique_benchmarks() {
        let suite = parsec_like_suite();
        assert_eq!(suite.len(), 19);
        for (i, b) in suite.iter().enumerate() {
            assert_eq!(b.id(), BenchmarkId(i));
        }
        let mut names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "duplicate benchmark names");
        let mut seeds: Vec<u64> = suite.iter().map(|b| b.profile().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 19, "duplicate seeds");
    }

    #[test]
    fn all_profiles_validate() {
        for b in parsec_like_suite() {
            b.profile().validate().unwrap();
        }
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(parsec_like_suite(), parsec_like_suite());
    }

    #[test]
    fn display_uses_one_based_label() {
        let suite = parsec_like_suite();
        assert_eq!(suite[0].id().to_string(), "BM1");
        assert!(suite[3].to_string().contains("BM4"));
        assert!(suite[3].to_string().contains("dedup"));
    }

    #[test]
    fn bias_for_maps_groups() {
        let b = &parsec_like_suite()[0];
        assert_eq!(b.profile().bias_for(UnitGroup::Execution), 0.80);
        assert_eq!(b.profile().bias_for(UnitGroup::Memory), 0.20);
    }

    #[test]
    fn invalid_profile_rejected() {
        let mut p = parsec_like_suite()[0].profile().clone();
        p.gating_rate = 1.5;
        assert!(p.validate().is_err());
        let mut p2 = parsec_like_suite()[0].profile().clone();
        p2.phase_period_ns = 0.0;
        assert!(p2.validate().is_err());
    }

    #[test]
    fn suite_spans_diverse_characters() {
        let suite = parsec_like_suite();
        // At least one compute-bound (execution bias >= 0.85) and one
        // memory-bound (memory bias >= 0.55) benchmark.
        assert!(suite.iter().any(|b| b.profile().group_bias[1] >= 0.85));
        assert!(suite.iter().any(|b| b.profile().group_bias[3] >= 0.55));
        // Gating rates span a 4x range.
        let min = suite.iter().map(|b| b.profile().gating_rate).fold(1.0, f64::min);
        let max = suite.iter().map(|b| b.profile().gating_rate).fold(0.0, f64::max);
        assert!(max / min >= 4.0);
    }
}
