//! Synthetic benchmark suite and per-block current-trace generation.
//!
//! The paper drives its power grid from gem5 runtime statistics of the 19
//! PARSEC 2.1 benchmarks converted to power by McPAT. Neither tool is
//! available here, so this crate generates the same *kind* of signal the
//! grid needs — a per-function-block supply-current waveform with:
//!
//! * **program phases** — piecewise activity levels per block that switch
//!   on a microsecond-ish timescale;
//! * **benchmark character** — each of the 19 [`Benchmark`]s biases
//!   activity differently across unit groups (integer-heavy, FP-heavy,
//!   memory-bound, bursty, …);
//! * **clock-level modulation** — bounded sinusoidal + Ornstein–Uhlenbeck
//!   components that excite the grid's RC response;
//! * **power gating** — gateable blocks toggle on/off with a finite slew,
//!   producing the large di/dt steps that cause voltage emergencies.
//!
//! Everything is deterministic given the benchmark's seed.
//!
//! # Example
//!
//! ```
//! use voltsense_workload::{parsec_like_suite, TraceConfig, WorkloadTrace};
//! use voltsense_floorplan::{ChipFloorplan, ChipConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chip = ChipFloorplan::new(&ChipConfig::small_test())?;
//! let suite = parsec_like_suite();
//! assert_eq!(suite.len(), 19);
//! let trace = WorkloadTrace::generate(&suite[0], chip.blocks(), &TraceConfig::default())?;
//! assert_eq!(trace.num_blocks(), chip.blocks().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod error;
mod power;
mod rng;
pub mod stats;
mod trace;

pub use benchmark::{parsec_like_suite, Benchmark, BenchmarkId, WorkloadProfile};
pub use error::WorkloadError;
pub use power::PowerModel;
pub use rng::GaussianRng;
pub use trace::{TraceConfig, WorkloadTrace};
