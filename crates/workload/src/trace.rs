use voltsense_floorplan::FunctionBlock;
use voltsense_linalg::Matrix;

use crate::benchmark::Benchmark;
use crate::power::PowerModel;
use crate::rng::GaussianRng;
use crate::WorkloadError;

/// Parameters of trace generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Simulated duration in nanoseconds.
    pub duration_ns: f64,
    /// Simulation timestep in nanoseconds (matches the power-grid
    /// transient step).
    pub dt_ns: f64,
    /// Activity control interval in nanoseconds: program phases, gating
    /// decisions and noise are updated at this granularity and interpolated
    /// in between.
    pub control_interval_ns: f64,
    /// Supply voltage for the power-to-current conversion.
    pub vdd: f64,
}

impl Default for TraceConfig {
    /// 4 µs at 1 ns steps, 10 ns control interval, 1.0 V — the scale used
    /// by the unit/integration tests. Experiments override the duration.
    fn default() -> Self {
        TraceConfig {
            duration_ns: 4000.0,
            dt_ns: 1.0,
            control_interval_ns: 10.0,
            vdd: 1.0,
        }
    }
}

impl TraceConfig {
    /// Number of simulation steps implied by this configuration.
    pub fn num_steps(&self) -> usize {
        (self.duration_ns / self.dt_ns).round() as usize
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        let ok = self.duration_ns > 0.0
            && self.dt_ns > 0.0
            && self.control_interval_ns >= self.dt_ns
            && self.vdd > 0.0
            && self.duration_ns.is_finite()
            && self.dt_ns.is_finite();
        if ok {
            Ok(())
        } else {
            Err(WorkloadError::InvalidConfig {
                what: format!("trace config out of range: {self:?}"),
            })
        }
    }
}

/// A generated per-block supply-current trace: the drop-in replacement for
/// the paper's gem5 → McPAT pipeline output.
///
/// Row `b` of the current matrix is block `b`'s current (amperes) at every
/// timestep; block order matches the `blocks` slice passed to
/// [`WorkloadTrace::generate`].
#[derive(Debug, Clone)]
pub struct WorkloadTrace {
    currents: Matrix,
    dt_ns: f64,
}

/// Time constant of the Ornstein–Uhlenbeck activity noise (ns).
const OU_TAU_NS: f64 = 30.0;

impl WorkloadTrace {
    /// Generates the current trace of `benchmark` over the given blocks.
    ///
    /// Deterministic: the same benchmark, block list and configuration
    /// always produce the same trace.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if the benchmark profile or
    /// the trace configuration is out of range, or if `blocks` is empty.
    pub fn generate(
        benchmark: &Benchmark,
        blocks: &[FunctionBlock],
        config: &TraceConfig,
    ) -> Result<Self, WorkloadError> {
        benchmark.profile().validate()?;
        config.validate()?;
        if blocks.is_empty() {
            return Err(WorkloadError::InvalidConfig {
                what: "trace needs at least one block".into(),
            });
        }
        let profile = benchmark.profile();
        let n_steps = config.num_steps();
        let steps_per_ctrl = (config.control_interval_ns / config.dt_ns).round().max(1.0) as usize;
        let n_ctrl = n_steps / steps_per_ctrl + 2;
        let power = PowerModel::new(config.vdd);

        let mut currents = Matrix::zeros(blocks.len(), n_steps);
        for (bi, block) in blocks.iter().enumerate() {
            // Independent, reproducible stream per (benchmark, block).
            let mut rng = GaussianRng::seed_from_u64(
                profile
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(block.id().0 as u64),
            );
            let bias = profile.bias_for(block.kind().unit_group());
            let res_phase = rng.uniform() * std::f64::consts::TAU;

            // --- control-interval signals -------------------------------
            // Program-phase base activity (piecewise constant).
            let switch_prob =
                (config.control_interval_ns / profile.phase_period_ns).min(1.0);
            let mut base = vec![0.0; n_ctrl];
            let mut cur_base = clamp01(bias + 0.20 * rng.sample());
            // OU noise (piecewise linear between control points).
            let theta = (-config.control_interval_ns / OU_TAU_NS).exp();
            let ou_scale = profile.noise_sigma * (1.0 - theta * theta).sqrt();
            let mut noise = vec![0.0; n_ctrl];
            let mut cur_noise = 0.0;
            // Power-gate target state (1 = on) with per-interval toggles.
            let gateable = block.kind().is_gateable();
            let mut gate_target = vec![1.0; n_ctrl];
            let mut cur_gate = if gateable && rng.uniform() < 0.3 { 0.0 } else { 1.0 };
            for k in 0..n_ctrl {
                if rng.uniform() < switch_prob {
                    cur_base = clamp01(bias + 0.25 * rng.sample());
                }
                base[k] = cur_base;
                cur_noise = theta * cur_noise + ou_scale * rng.sample();
                noise[k] = cur_noise;
                if gateable && rng.uniform() < profile.gating_rate {
                    cur_gate = 1.0 - cur_gate;
                }
                gate_target[k] = if gateable { cur_gate } else { 1.0 };
            }

            // --- per-step synthesis -------------------------------------
            let omega = std::f64::consts::TAU / profile.resonance_period_ns;
            let slew_steps = (profile.gate_slew_ns / config.dt_ns).max(1.0);
            let mut gate = gate_target[0];
            let row = currents.row_mut(bi);
            for (s, out) in row.iter_mut().enumerate() {
                let t_ns = s as f64 * config.dt_ns;
                let k = s / steps_per_ctrl;
                let frac = (s % steps_per_ctrl) as f64 / steps_per_ctrl as f64;
                let b0 = base[k];
                let n0 = noise[k] + (noise[k + 1] - noise[k]) * frac;
                let res = profile.resonance_amp * (omega * t_ns + res_phase).sin();
                let activity = clamp01(b0 * (1.0 + res) + n0);
                // Slew the gate towards its target.
                let target = gate_target[k];
                let step = 1.0 / slew_steps;
                if gate < target {
                    gate = (gate + step).min(target);
                } else if gate > target {
                    gate = (gate - step).max(target);
                }
                *out = power.block_current(block, activity, gate);
            }
        }
        Ok(WorkloadTrace {
            currents,
            dt_ns: config.dt_ns,
        })
    }

    /// Number of blocks (rows).
    pub fn num_blocks(&self) -> usize {
        self.currents.rows()
    }

    /// Number of timesteps (columns).
    pub fn num_steps(&self) -> usize {
        self.currents.cols()
    }

    /// Timestep in nanoseconds.
    pub fn dt_ns(&self) -> f64 {
        self.dt_ns
    }

    /// Current of block `block_index` at `step` (amperes).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn current(&self, block_index: usize, step: usize) -> f64 {
        self.currents[(block_index, step)]
    }

    /// One block's full current waveform.
    ///
    /// # Panics
    ///
    /// Panics if `block_index` is out of bounds.
    pub fn block_waveform(&self, block_index: usize) -> &[f64] {
        self.currents.row(block_index)
    }

    /// Total chip current at `step` (amperes).
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of bounds.
    pub fn total_current(&self, step: usize) -> f64 {
        (0..self.num_blocks()).map(|b| self.current(b, step)).sum()
    }

    /// The underlying `blocks x steps` current matrix.
    pub fn currents(&self) -> &Matrix {
        &self.currents
    }
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec_like_suite;
    use voltsense_floorplan::{ChipConfig, ChipFloorplan};

    fn chip() -> ChipFloorplan {
        ChipFloorplan::new(&ChipConfig::small_test()).unwrap()
    }

    fn short_config() -> TraceConfig {
        TraceConfig {
            duration_ns: 500.0,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn trace_shape_matches_config() {
        let chip = chip();
        let bm = &parsec_like_suite()[0];
        let trace = WorkloadTrace::generate(bm, chip.blocks(), &short_config()).unwrap();
        assert_eq!(trace.num_blocks(), 60);
        assert_eq!(trace.num_steps(), 500);
        assert_eq!(trace.dt_ns(), 1.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let chip = chip();
        let bm = &parsec_like_suite()[3];
        let a = WorkloadTrace::generate(bm, chip.blocks(), &short_config()).unwrap();
        let b = WorkloadTrace::generate(bm, chip.blocks(), &short_config()).unwrap();
        assert_eq!(a.currents(), b.currents());
    }

    #[test]
    fn different_benchmarks_differ() {
        let chip = chip();
        let suite = parsec_like_suite();
        let a = WorkloadTrace::generate(&suite[0], chip.blocks(), &short_config()).unwrap();
        let b = WorkloadTrace::generate(&suite[1], chip.blocks(), &short_config()).unwrap();
        assert_ne!(a.currents(), b.currents());
    }

    #[test]
    fn currents_are_positive_and_bounded() {
        let chip = chip();
        let bm = &parsec_like_suite()[6];
        let trace = WorkloadTrace::generate(bm, chip.blocks(), &short_config()).unwrap();
        for b in 0..trace.num_blocks() {
            let nominal = chip.blocks()[b].nominal_power();
            for s in 0..trace.num_steps() {
                let i = trace.current(b, s);
                assert!(i > 0.0, "current must include leakage");
                assert!(i <= nominal / 1.0 + 1e-12, "current exceeds nominal power");
            }
        }
    }

    #[test]
    fn gating_produces_large_swings() {
        // Over a long enough window, a gateable execution block should see
        // a large max/min current ratio (di/dt events).
        let chip = chip();
        let bm = &parsec_like_suite()[12]; // x264: highest gating rate
        let cfg = TraceConfig {
            duration_ns: 3000.0,
            ..TraceConfig::default()
        };
        let trace = WorkloadTrace::generate(bm, chip.blocks(), &cfg).unwrap();
        let gateable_idx = chip
            .blocks()
            .iter()
            .position(|b| b.kind().is_gateable())
            .unwrap();
        let wf = trace.block_waveform(gateable_idx);
        let max = wf.iter().copied().fold(0.0, f64::max);
        let min = wf.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "expected gating swings, got {min}..{max}");
    }

    #[test]
    fn total_current_sums_blocks() {
        let chip = chip();
        let bm = &parsec_like_suite()[0];
        let trace = WorkloadTrace::generate(bm, chip.blocks(), &short_config()).unwrap();
        let manual: f64 = (0..trace.num_blocks()).map(|b| trace.current(b, 10)).sum();
        assert!((trace.total_current(10) - manual).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        let chip = chip();
        let bm = &parsec_like_suite()[0];
        let mut cfg = TraceConfig::default();
        cfg.dt_ns = 0.0;
        assert!(WorkloadTrace::generate(bm, chip.blocks(), &cfg).is_err());
        let mut cfg = TraceConfig::default();
        cfg.control_interval_ns = 0.1; // smaller than dt
        assert!(WorkloadTrace::generate(bm, chip.blocks(), &cfg).is_err());
        assert!(WorkloadTrace::generate(bm, &[], &TraceConfig::default()).is_err());
    }

    #[test]
    fn waveforms_vary_over_time() {
        let chip = chip();
        let bm = &parsec_like_suite()[0];
        let trace = WorkloadTrace::generate(bm, chip.blocks(), &short_config()).unwrap();
        let wf = trace.block_waveform(0);
        let first = wf[0];
        assert!(
            wf.iter().any(|&v| (v - first).abs() > 1e-6),
            "waveform is flat"
        );
    }
}
