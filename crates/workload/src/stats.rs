//! Trace statistics: the quantities that make a current trace a credible
//! stand-in for gem5+McPAT output.
//!
//! The methodology's stress case is large di/dt (the paper's motivation:
//! power gating causes "large current swings over a relatively small time
//! scale"). [`TraceStats`] summarizes a generated trace so tests and
//! experiment logs can assert the workload actually exhibits those
//! dynamics.

use crate::WorkloadTrace;

/// Summary statistics of one benchmark's full-chip current trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Mean total chip current (A).
    pub mean_current: f64,
    /// Peak total chip current (A).
    pub peak_current: f64,
    /// Minimum total chip current (A).
    pub min_current: f64,
    /// Largest one-step change of the total current, |ΔI| (A) — the di/dt
    /// proxy at the trace's timestep.
    pub max_step_didt: f64,
    /// Root-mean-square one-step change (A).
    pub rms_step_didt: f64,
    /// Lag-1 autocorrelation of the total current: near 1 for the smooth,
    /// phase-structured traces real programs produce.
    pub lag1_autocorrelation: f64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than two timesteps.
    pub fn compute(trace: &WorkloadTrace) -> TraceStats {
        let n = trace.num_steps();
        assert!(n >= 2, "trace statistics need at least two timesteps");
        let totals: Vec<f64> = (0..n).map(|s| trace.total_current(s)).collect();
        let mean_current = totals.iter().sum::<f64>() / n as f64;
        let peak_current = totals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min_current = totals.iter().copied().fold(f64::INFINITY, f64::min);
        let mut max_step_didt = 0.0_f64;
        let mut sum_sq = 0.0_f64;
        for w in totals.windows(2) {
            let d = (w[1] - w[0]).abs();
            max_step_didt = max_step_didt.max(d);
            sum_sq += d * d;
        }
        let rms_step_didt = (sum_sq / (n - 1) as f64).sqrt();
        // Lag-1 autocorrelation.
        let var: f64 = totals
            .iter()
            .map(|t| (t - mean_current) * (t - mean_current))
            .sum::<f64>()
            / n as f64;
        let cov: f64 = totals
            .windows(2)
            .map(|w| (w[0] - mean_current) * (w[1] - mean_current))
            .sum::<f64>()
            / (n - 1) as f64;
        let lag1_autocorrelation = if var > 0.0 { cov / var } else { 0.0 };
        TraceStats {
            mean_current,
            peak_current,
            min_current,
            max_step_didt,
            rms_step_didt,
            lag1_autocorrelation,
        }
    }

    /// Peak-to-mean ratio — a standard burstiness figure.
    pub fn crest_factor(&self) -> f64 {
        if self.mean_current > 0.0 {
            self.peak_current / self.mean_current
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parsec_like_suite, TraceConfig, WorkloadTrace};
    use voltsense_floorplan::{ChipConfig, ChipFloorplan};

    fn trace(bench: usize) -> WorkloadTrace {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        WorkloadTrace::generate(
            &parsec_like_suite()[bench],
            chip.blocks(),
            &TraceConfig {
                duration_ns: 2000.0,
                ..TraceConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn statistics_are_internally_consistent() {
        let stats = TraceStats::compute(&trace(0));
        assert!(stats.min_current > 0.0, "leakage keeps current positive");
        assert!(stats.min_current <= stats.mean_current);
        assert!(stats.mean_current <= stats.peak_current);
        assert!(stats.max_step_didt >= stats.rms_step_didt);
        assert!(stats.crest_factor() >= 1.0);
    }

    #[test]
    fn traces_are_smooth_but_not_constant() {
        let stats = TraceStats::compute(&trace(0));
        // Phase-structured program behaviour: strongly autocorrelated...
        assert!(
            stats.lag1_autocorrelation > 0.9,
            "lag-1 autocorr {}",
            stats.lag1_autocorrelation
        );
        // ...but with real activity swings.
        assert!(stats.peak_current > 1.05 * stats.min_current);
    }

    #[test]
    fn gating_heavy_benchmark_has_larger_didt() {
        // x264 (index 12) has the suite's highest gating rate; its current
        // steps should out-swing blackscholes (index 0) in RMS terms.
        let calm = TraceStats::compute(&trace(0));
        let bursty = TraceStats::compute(&trace(12));
        assert!(
            bursty.rms_step_didt > calm.rms_step_didt,
            "bursty {} vs calm {}",
            bursty.rms_step_didt,
            calm.rms_step_didt
        );
    }

    #[test]
    fn deterministic() {
        let a = TraceStats::compute(&trace(3));
        let b = TraceStats::compute(&trace(3));
        assert_eq!(a, b);
    }
}
